//! The slice of MPI that NVMe-CR uses.
//!
//! The runtime "leverages the MPI runtime for coordination between multiple
//! instances as well as for identification purposes... coordination is only
//! necessary in the initialization routine" (§III-C). That means we need:
//! communicator identity (rank/size), `MPI_Comm_split` to build the per-SSD
//! `MPI_COMM_CR` communicators (§III-F, Figure 6), functional collectives
//! for the init-time exchange, and latency cost models so initialization
//! shows up in simulated time.

use simkit::SimTime;

use crate::topology::NodeId;

/// The world: ranks `0..size` placed on compute nodes.
#[derive(Debug, Clone)]
pub struct CommWorld {
    rank_nodes: Vec<NodeId>,
}

impl CommWorld {
    /// A world from the scheduler's rank→node placement.
    pub fn new(rank_nodes: Vec<NodeId>) -> Self {
        assert!(!rank_nodes.is_empty(), "world needs at least one rank");
        CommWorld { rank_nodes }
    }

    /// Number of ranks.
    pub fn size(&self) -> u32 {
        self.rank_nodes.len() as u32
    }

    /// The node hosting a rank.
    pub fn node_of(&self, rank: u32) -> NodeId {
        self.rank_nodes[rank as usize]
    }

    /// The world communicator.
    pub fn comm_world(&self) -> Comm {
        Comm {
            ranks: (0..self.size()).collect(),
        }
    }
}

/// A communicator: an ordered group of global ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comm {
    /// Global ranks, in communicator order (index = local rank).
    ranks: Vec<u32>,
}

impl Comm {
    /// Communicator size.
    pub fn size(&self) -> u32 {
        self.ranks.len() as u32
    }

    /// Global rank of communicator-local rank `local`.
    pub fn global_rank(&self, local: u32) -> u32 {
        self.ranks[local as usize]
    }

    /// Local rank of a global rank, if it belongs to this communicator.
    pub fn local_rank(&self, global: u32) -> Option<u32> {
        self.ranks
            .iter()
            .position(|&r| r == global)
            .map(|i| i as u32)
    }

    /// All member global ranks, in order.
    pub fn members(&self) -> &[u32] {
        &self.ranks
    }

    /// `MPI_Comm_split`: partition members by `color`, ordering each new
    /// communicator by `(key, old rank)`. Returns `(color, Comm)` pairs
    /// sorted by color. This is exactly how `MPI_COMM_CR` (one communicator
    /// per shared SSD) is built in §III-F.
    pub fn split(&self, color: impl Fn(u32) -> u64, key: impl Fn(u32) -> u64) -> Vec<(u64, Comm)> {
        let mut buckets: std::collections::BTreeMap<u64, Vec<(u64, u32)>> =
            std::collections::BTreeMap::new();
        for &g in &self.ranks {
            buckets.entry(color(g)).or_default().push((key(g), g));
        }
        buckets
            .into_iter()
            .map(|(c, mut members)| {
                members.sort_unstable();
                (
                    c,
                    Comm {
                        ranks: members.into_iter().map(|(_, g)| g).collect(),
                    },
                )
            })
            .collect()
    }

    /// Functional allgather: every member contributes one value; every
    /// member observes all of them in communicator order. `inputs` is
    /// indexed by local rank.
    pub fn allgather<T: Clone>(&self, inputs: &[T]) -> Vec<T> {
        assert_eq!(
            inputs.len(),
            self.ranks.len(),
            "one contribution per member required"
        );
        inputs.to_vec()
    }

    /// Functional broadcast from local rank `root`.
    pub fn bcast<T: Clone>(&self, root: u32, value: &T) -> Vec<T> {
        assert!(root < self.size());
        vec![value.clone(); self.ranks.len()]
    }

    /// Cost model: a barrier over `n` ranks completes in
    /// `ceil(log2 n)` message rounds.
    pub fn barrier_time(&self, per_message: SimTime) -> SimTime {
        per_message * log2_ceil(self.size()) as f64
    }

    /// Cost model: recursive-doubling allgather of `bytes` per rank.
    pub fn allgather_time(
        &self,
        bytes_per_rank: u64,
        per_message: SimTime,
        bw: simkit::Rate,
    ) -> SimTime {
        let rounds = log2_ceil(self.size());
        let mut t = SimTime::ZERO;
        let mut chunk = bytes_per_rank;
        for _ in 0..rounds {
            t += per_message + bw.time_for(chunk);
            chunk *= 2;
        }
        t
    }
}

fn log2_ceil(n: u32) -> u32 {
    if n <= 1 {
        0
    } else {
        32 - (n - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::Rate;

    fn world(n: u32) -> CommWorld {
        CommWorld::new((0..n).map(|i| NodeId(i / 28)).collect())
    }

    #[test]
    fn world_identity() {
        let w = world(56);
        assert_eq!(w.size(), 56);
        assert_eq!(w.node_of(0), NodeId(0));
        assert_eq!(w.node_of(28), NodeId(1));
        let c = w.comm_world();
        assert_eq!(c.size(), 56);
        assert_eq!(c.global_rank(10), 10);
        assert_eq!(c.local_rank(10), Some(10));
    }

    #[test]
    fn split_partitions_by_color_ordered_by_key() {
        let w = world(8);
        let comm = w.comm_world();
        // Color = parity; key = reverse order.
        let parts = comm.split(|g| u64::from(g % 2), |g| u64::from(100 - g));
        assert_eq!(parts.len(), 2);
        let (c0, even) = &parts[0];
        assert_eq!(*c0, 0);
        assert_eq!(even.members(), &[6, 4, 2, 0]); // descending by key order
        let (_, odd) = &parts[1];
        assert_eq!(odd.members(), &[7, 5, 3, 1]);
        assert_eq!(odd.local_rank(5), Some(1));
        assert_eq!(odd.local_rank(0), None);
    }

    #[test]
    fn split_covers_all_ranks_exactly_once() {
        let w = world(448);
        let comm = w.comm_world();
        // The paper's MPI_COMM_CR construction: color = assigned SSD.
        let parts = comm.split(|g| u64::from(g % 8), u64::from);
        let mut all: Vec<u32> = parts
            .iter()
            .flat_map(|(_, c)| c.members().to_vec())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..448).collect::<Vec<_>>());
        for (_, c) in &parts {
            assert_eq!(c.size(), 56);
        }
    }

    #[test]
    fn functional_collectives() {
        let w = world(4);
        let c = w.comm_world();
        assert_eq!(c.allgather(&[10, 20, 30, 40]), vec![10, 20, 30, 40]);
        assert_eq!(c.bcast(2, &"cfg"), vec!["cfg"; 4]);
    }

    #[test]
    fn barrier_cost_is_logarithmic() {
        let w = world(448);
        let c = w.comm_world();
        let t = c.barrier_time(SimTime::micros(2.0));
        assert!((t.as_micros() - 18.0).abs() < 1e-9); // ceil(log2 448) = 9
    }

    #[test]
    fn allgather_cost_grows_with_size() {
        let small = world(8).comm_world();
        let big = world(448).comm_world();
        let per_msg = SimTime::micros(2.0);
        let bw = Rate::gbit_per_sec(100.0);
        assert!(big.allgather_time(64, per_msg, bw) > small.allgather_time(64, per_msg, bw));
    }

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(448), 9);
        assert_eq!(log2_ceil(512), 9);
        assert_eq!(log2_ceil(513), 10);
    }
}
