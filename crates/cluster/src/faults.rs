//! MTBF-driven fault injection, including cascading (domain-wide) failures.
//!
//! Exascale motivation (§I): MTBF under 30 minutes at full scale. The
//! injector draws node failures from an exponential distribution scaled by
//! node count and, with a configurable probability, escalates a node
//! failure into a cascading failure of its whole domain — the scenario
//! multi-level checkpointing exists to survive (§III-F "Handling Cascading
//! Failures", §IV-I).

use rand::rngs::SmallRng;
use rand::RngExt;
use simkit::rng::{exponential, seeded};
use simkit::SimTime;

use crate::failure::{DomainId, FailureDomains};
use crate::topology::Topology;

/// What failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A single node crashed.
    Node(crate::topology::NodeId),
    /// A whole failure domain went down (PDU/rack loss) — takes the
    /// processes *and* any checkpoint data stored in the domain.
    Domain(DomainId),
}

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When it strikes.
    pub at: SimTime,
    /// What it takes down.
    pub kind: FaultKind,
}

/// Deterministic fault schedule generator.
pub struct FaultInjector {
    rng: SmallRng,
    /// Mean time between failures for a single node.
    node_mtbf: SimTime,
    /// Probability that a node failure cascades to its whole domain.
    cascade_prob: f64,
    n_nodes: u32,
}

impl FaultInjector {
    /// An injector for `topo` with per-node MTBF and cascade probability.
    pub fn new(topo: &Topology, seed: u64, node_mtbf: SimTime, cascade_prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&cascade_prob));
        FaultInjector {
            rng: seeded(seed),
            node_mtbf,
            cascade_prob,
            n_nodes: topo.node_count() as u32,
        }
    }

    /// System-level MTBF: node MTBF divided by node count.
    pub fn system_mtbf(&self) -> SimTime {
        self.node_mtbf / f64::from(self.n_nodes)
    }

    /// Generate the fault schedule for `[0, horizon)` on `topo`.
    pub fn schedule(&mut self, topo: &Topology, horizon: SimTime) -> Vec<FaultEvent> {
        let domains = FailureDomains::derive(topo);
        let mut out = Vec::new();
        let mut t = 0.0;
        let mean = self.system_mtbf().as_secs();
        loop {
            t += exponential(&mut self.rng, mean);
            if t >= horizon.as_secs() {
                break;
            }
            let victim = crate::topology::NodeId(self.rng.random_range(0..self.n_nodes));
            let cascade: f64 = self.rng.random_range(0.0..1.0);
            let kind = if cascade < self.cascade_prob {
                FaultKind::Domain(domains.domain_of(victim))
            } else {
                FaultKind::Node(victim)
            };
            out.push(FaultEvent {
                at: SimTime::secs(t),
                kind,
            });
        }
        out
    }
}

/// Lower a cluster-level fault schedule onto data-path injection sites.
///
/// This bridges the two fault layers: the MTBF-driven [`FaultInjector`]
/// produces *when/what* failures at cluster granularity (node, domain), and
/// the chaos runtime injects *how* they manifest on the byte path. Each
/// event's strike time is converted to a per-site operation index assuming a
/// steady `ops_per_sec` IO rate:
///
/// - `Node` failures become connection resets ([`chaos::FaultSite::ConnReset`]
///   / [`chaos::FaultAction::ResetConnection`]) — the initiator loses its
///   fabric session and must reconnect.
/// - `Domain` failures become a shard kill ([`chaos::FaultSite::ShardIo`] /
///   [`chaos::FaultAction::KillShard`]) at the lowered op index *plus* an
///   interrupted capacitor drain ([`chaos::FaultSite::CapacitorFlush`] /
///   [`chaos::FaultAction::PowerCut`]) — a PDU loss takes the stored data
///   with it, which is what forces multi-level rollback.
///
/// The lowering is a pure function of its inputs: the same `(events, seed,
/// ops_per_sec)` always produces the same [`chaos::FaultPlan`], so a
/// cluster schedule replayed through the data path is as deterministic as
/// the schedule itself.
pub fn lower_to_plan(events: &[FaultEvent], seed: u64, ops_per_sec: f64) -> chaos::FaultPlan {
    assert!(ops_per_sec > 0.0, "need a positive IO rate to lower times");
    let mut plan = chaos::FaultPlan::new(seed);
    for ev in events {
        let op = (ev.at.as_secs() * ops_per_sec) as u64;
        match ev.kind {
            FaultKind::Node(_) => {
                plan = plan.at_op(
                    chaos::FaultSite::ConnReset,
                    chaos::FaultAction::ResetConnection,
                    op,
                );
            }
            FaultKind::Domain(_) => {
                plan = plan
                    .at_op(chaos::FaultSite::ShardIo, chaos::FaultAction::KillShard, op)
                    .at_op(
                        chaos::FaultSite::CapacitorFlush,
                        chaos::FaultAction::PowerCut { drain_writes: 0 },
                        0,
                    );
            }
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let topo = Topology::paper_testbed();
        let mk = |seed| {
            FaultInjector::new(&topo, seed, SimTime::secs(50_000.0), 0.1)
                .schedule(&topo, SimTime::secs(100_000.0))
        };
        assert_eq!(mk(1), mk(1));
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn events_are_ordered_and_within_horizon() {
        let topo = Topology::paper_testbed();
        let mut inj = FaultInjector::new(&topo, 7, SimTime::secs(10_000.0), 0.2);
        let horizon = SimTime::secs(50_000.0);
        let ev = inj.schedule(&topo, horizon);
        assert!(!ev.is_empty(), "expected some failures in 120 system-MTBFs");
        for w in ev.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        assert!(ev.iter().all(|e| e.at < horizon));
    }

    #[test]
    fn cascade_probability_zero_means_node_faults_only() {
        let topo = Topology::paper_testbed();
        let mut inj = FaultInjector::new(&topo, 3, SimTime::secs(5_000.0), 0.0);
        let ev = inj.schedule(&topo, SimTime::secs(20_000.0));
        assert!(ev.iter().all(|e| matches!(e.kind, FaultKind::Node(_))));
    }

    #[test]
    fn cascade_probability_one_means_domain_faults_only() {
        let topo = Topology::paper_testbed();
        let mut inj = FaultInjector::new(&topo, 3, SimTime::secs(5_000.0), 1.0);
        let ev = inj.schedule(&topo, SimTime::secs(20_000.0));
        assert!(!ev.is_empty());
        assert!(ev.iter().all(|e| matches!(e.kind, FaultKind::Domain(_))));
    }

    #[test]
    fn lowered_plan_is_deterministic_and_covers_both_kinds() {
        let topo = Topology::paper_testbed();
        let schedule = FaultInjector::new(&topo, 11, SimTime::secs(2_000.0), 0.3)
            .schedule(&topo, SimTime::secs(20_000.0));
        assert!(schedule
            .iter()
            .any(|e| matches!(e.kind, FaultKind::Node(_))));
        assert!(schedule
            .iter()
            .any(|e| matches!(e.kind, FaultKind::Domain(_))));

        // Same schedule + seed + rate → identical plan, spec for spec.
        let p1 = lower_to_plan(&schedule, 99, 1000.0);
        let p2 = lower_to_plan(&schedule, 99, 1000.0);
        assert_eq!(p1, p2);

        // Node events lower to connection resets, domain events to a shard
        // kill plus a power cut on the capacitor drain.
        let resets = p1
            .specs
            .iter()
            .filter(|s| s.site == chaos::FaultSite::ConnReset)
            .count();
        let kills = p1
            .specs
            .iter()
            .filter(|s| s.site == chaos::FaultSite::ShardIo)
            .count();
        let cuts = p1
            .specs
            .iter()
            .filter(|s| s.site == chaos::FaultSite::CapacitorFlush)
            .count();
        let nodes = schedule
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::Node(_)))
            .count();
        let domains = schedule
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::Domain(_)))
            .count();
        assert_eq!(resets, nodes);
        assert_eq!(kills, domains);
        assert_eq!(cuts, domains);

        // Op indices scale with the assumed IO rate.
        let fast = lower_to_plan(&schedule, 99, 10_000.0);
        let slow_first = p1.specs[0].at_ops[0];
        let fast_first = fast.specs[0].at_ops[0];
        assert!(fast_first >= slow_first * 9, "10x rate ≈ 10x op index");

        // The lowered plan drives a real ChaosHandle: the same arm + decide
        // sequence replays identically.
        let t = telemetry::Telemetry::new();
        let h = chaos::ChaosHandle::new();
        let drive = |h: &chaos::ChaosHandle| {
            (0..64)
                .map(|_| h.decide(chaos::FaultSite::CapacitorFlush))
                .collect::<Vec<_>>()
        };
        h.arm(p1.clone(), &t);
        let a = drive(&h);
        h.arm(p1, &t);
        assert_eq!(a, drive(&h));
        assert!(a[0].is_some(), "domain power-cut fires at op 0");
    }

    #[test]
    fn system_mtbf_scales_with_node_count() {
        let small = Topology::synthetic(1, 1, 2, 28);
        let big = Topology::synthetic(10, 2, 16, 28);
        let mtbf = SimTime::secs(100_000.0);
        let i_small = FaultInjector::new(&small, 0, mtbf, 0.0);
        let i_big = FaultInjector::new(&big, 0, mtbf, 0.0);
        assert!(i_big.system_mtbf() < i_small.system_mtbf());
    }
}
