//! Wall-clock benchmarks of whole microfs operation paths: create storms,
//! checkpoint-style writes at different hugeblock sizes, snapshot, and
//! mount-time recovery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use microfs::{FsConfig, MemDevice, MicroFs};
use std::hint::black_box;

const DEV: u64 = 256 << 20;

fn bench_create_storm(c: &mut Criterion) {
    c.bench_function("microfs_create_100_files", |b| {
        b.iter(|| {
            let mut fs = MicroFs::format(MemDevice::new(DEV), FsConfig::default()).unwrap();
            for i in 0..100 {
                let fd = fs.create(&format!("/f{i}"), 0o644).unwrap();
                fs.close(fd).unwrap();
            }
            black_box(fs.stats().creates)
        })
    });
}

fn bench_checkpoint_write(c: &mut Criterion) {
    // The write path at 4 KiB vs 32 KiB hugeblocks: software overhead per
    // block is what Figure 7(a)'s left side measures.
    let mut g = c.benchmark_group("microfs_write_32MiB");
    g.sample_size(15);
    let payload = vec![0xA5u8; 1 << 20];
    for &bs in &[4u64 << 10, 32 << 10, 256 << 10] {
        g.bench_with_input(BenchmarkId::from_parameter(bs / 1024), &bs, |b, &bs| {
            b.iter(|| {
                let config = FsConfig {
                    block_size: bs,
                    ..FsConfig::default()
                };
                let mut fs = MicroFs::format(MemDevice::new(DEV), config).unwrap();
                let fd = fs.create("/ckpt", 0o644).unwrap();
                for _ in 0..32 {
                    fs.write(fd, &payload).unwrap();
                }
                fs.close(fd).unwrap();
                black_box(fs.stats().bytes_written)
            })
        });
    }
    g.finish();
}

fn bench_snapshot_and_recovery(c: &mut Criterion) {
    let build = || {
        let mut fs = MicroFs::format(MemDevice::new(DEV), FsConfig::default()).unwrap();
        for i in 0..50 {
            let fd = fs.create(&format!("/ckpt_{i}"), 0o644).unwrap();
            fs.write(fd, &vec![1u8; 256 << 10]).unwrap();
            fs.close(fd).unwrap();
        }
        fs
    };
    c.bench_function("microfs_snapshot_50_files", |b| {
        let mut fs = build();
        b.iter(|| {
            fs.snapshot_now().unwrap();
            black_box(fs.stats().snapshots)
        })
    });
    c.bench_function("microfs_mount_replay_50_files", |b| {
        let dev = build().into_device();
        b.iter(|| {
            let fs = MicroFs::mount(dev.clone(), FsConfig::default()).unwrap();
            black_box(fs.stats().replayed_records)
        })
    });
}

criterion_group!(
    benches,
    bench_create_storm,
    bench_checkpoint_write,
    bench_snapshot_and_recovery
);
criterion_main!(benches);
