//! Wall-clock benchmarks of the wire-format codecs: NVMf capsules and
//! CRC-32 — every functional IO crosses these paths.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fabric::Capsule;
use microfs::crc::crc32;
use std::hint::black_box;

fn bench_capsule(c: &mut Criterion) {
    let mut g = c.benchmark_group("capsule_roundtrip");
    for &size in &[4096usize, 32 << 10, 1 << 20] {
        g.throughput(Throughput::Bytes(size as u64));
        let payload = Bytes::from(vec![0xA5u8; size]);
        g.bench_with_input(BenchmarkId::from_parameter(size), &payload, |b, p| {
            b.iter(|| {
                let cap = Capsule::write(1, 1, 0, p.clone());
                let wire = cap.encode();
                black_box(Capsule::decode(wire).unwrap().len)
            })
        });
    }
    g.finish();
}

fn bench_crc(c: &mut Criterion) {
    let mut g = c.benchmark_group("crc32");
    for &size in &[64usize, 4096, 1 << 20] {
        g.throughput(Throughput::Bytes(size as u64));
        let data = vec![0x5Au8; size];
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| black_box(crc32(d)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_capsule, bench_crc);
criterion_main!(benches);
