//! Benchmarks the simulation engine itself: how fast the DES evaluates the
//! paper's largest experiment DAGs. Useful when extending the models — a
//! regression here makes `reproduce_all` painful.

use baselines::model::StorageModel;
use baselines::{GlusterFsModel, Scenario};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use workloads::NvmeCrModel;

fn bench_model_eval(c: &mut Criterion) {
    let mut g = c.benchmark_group("des_model_evaluation");
    g.sample_size(10);
    g.bench_function("nvmecr_weak_448", |b| {
        let m = NvmeCrModel::full();
        let s = Scenario::weak_scaling(448);
        b.iter(|| black_box(m.checkpoint_makespan(&s)))
    });
    g.bench_function("glusterfs_weak_448", |b| {
        let m = GlusterFsModel::new();
        let s = Scenario::weak_scaling(448);
        b.iter(|| black_box(m.checkpoint_makespan(&s)))
    });
    g.bench_function("create_storm_448x10", |b| {
        let m = NvmeCrModel::full();
        let s = Scenario::weak_scaling(448);
        b.iter(|| black_box(m.create_rate(&s, 10)))
    });
    g.finish();
}

criterion_group!(benches, bench_model_eval);
criterion_main!(benches);
