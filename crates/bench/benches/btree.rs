//! Wall-clock benchmarks of the DRAM B+Tree (§III-E): the control plane's
//! name-lookup structure. Compared against `std::collections::BTreeMap` to
//! show the custom tree is in the right performance class.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use microfs::btree::BTree;
use std::collections::BTreeMap;
use std::hint::black_box;

fn keys(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| format!("/comd/ckpt_007/rank_{i:06}.dat"))
        .collect()
}

fn bench_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("btree_insert");
    g.sample_size(20);
    for &n in &[1_000usize, 10_000] {
        let ks = keys(n);
        g.bench_with_input(BenchmarkId::new("microfs", n), &ks, |b, ks| {
            b.iter(|| {
                let mut t = BTree::new();
                for (i, k) in ks.iter().enumerate() {
                    t.insert(k, i as u64);
                }
                black_box(t.len())
            })
        });
        g.bench_with_input(BenchmarkId::new("std", n), &ks, |b, ks| {
            b.iter(|| {
                let mut t = BTreeMap::new();
                for (i, k) in ks.iter().enumerate() {
                    t.insert(k.clone(), i as u64);
                }
                black_box(t.len())
            })
        });
    }
    g.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let ks = keys(10_000);
    let mut tree = BTree::new();
    for (i, k) in ks.iter().enumerate() {
        tree.insert(k, i as u64);
    }
    c.bench_function("btree_lookup_10k", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for k in ks.iter().step_by(7) {
                if tree.get(black_box(k)).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
}

fn bench_snapshot_roundtrip(c: &mut Criterion) {
    let ks = keys(10_000);
    let mut tree = BTree::new();
    for (i, k) in ks.iter().enumerate() {
        tree.insert(k, i as u64);
    }
    c.bench_function("btree_encode_decode_10k", |b| {
        b.iter(|| {
            let bytes = tree.encode();
            let (t, _) = BTree::decode(black_box(&bytes)).unwrap();
            black_box(t.len())
        })
    });
}

criterion_group!(
    benches,
    bench_insert,
    bench_lookup,
    bench_snapshot_roundtrip
);
criterion_main!(benches);
