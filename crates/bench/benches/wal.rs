//! Wall-clock benchmarks of the operation log: append throughput with and
//! without record coalescing (the §III-E ablation), and recovery-scan
//! speed.

use criterion::{criterion_group, criterion_main, Criterion};
use microfs::block::MemDevice;
use microfs::wal::{LogRecord, Wal};
use std::hint::black_box;

fn bench_append(c: &mut Criterion) {
    let mut g = c.benchmark_group("wal_append_1000_sequential_writes");
    g.sample_size(30);
    for (name, coalescing) in [("coalescing", true), ("raw", false)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut dev = MemDevice::new(4 << 20);
                let mut wal = Wal::new(0, 2 << 20, coalescing);
                for i in 0..1000u64 {
                    wal.append(
                        &mut dev,
                        &LogRecord::Write {
                            ino: 1,
                            offset: i * 4096,
                            len: 4096,
                        },
                    )
                    .unwrap();
                }
                black_box(wal.stats().appended)
            })
        });
    }
    g.finish();
}

fn bench_scan(c: &mut Criterion) {
    // Recovery replay length: coalesced logs scan near-instantly.
    let build = |coalescing: bool| {
        let mut dev = MemDevice::new(4 << 20);
        let mut wal = Wal::new(0, 2 << 20, coalescing);
        for f in 0..10u64 {
            for i in 0..100u64 {
                wal.append(
                    &mut dev,
                    &LogRecord::Write {
                        ino: f,
                        offset: i * 4096,
                        len: 4096,
                    },
                )
                .unwrap();
            }
        }
        dev
    };
    let mut g = c.benchmark_group("wal_recovery_scan");
    g.sample_size(30);
    let mut dev_c = build(true);
    g.bench_function("coalesced", |b| {
        b.iter(|| black_box(Wal::scan(&mut dev_c, 0, 2 << 20, 0).unwrap().0.len()))
    });
    let mut dev_r = build(false);
    g.bench_function("raw", |b| {
        b.iter(|| black_box(Wal::scan(&mut dev_r, 0, 2 << 20, 0).unwrap().0.len()))
    });
    g.finish();
}

fn bench_record_codec(c: &mut Criterion) {
    let rec = LogRecord::Create {
        path: "/comd/ckpt_003/rank_00042.dat".into(),
        mode: 0o644,
        uid: 1000,
    };
    c.bench_function("wal_record_encode", |b| {
        b.iter(|| black_box(rec.encode(black_box(3))).len())
    });
}

criterion_group!(benches, bench_append, bench_scan, bench_record_codec);
criterion_main!(benches);
