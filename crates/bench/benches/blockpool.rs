//! Wall-clock benchmarks of the circular hugeblock pool: the paper claims
//! O(1) allocation (§III-E); these benches verify the constant is small and
//! size-independent.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use microfs::block::BlockPool;
use std::hint::black_box;

fn bench_alloc_free_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("blockpool_alloc_free");
    g.sample_size(30);
    // O(1): the per-op cost must not grow with pool size.
    for &total in &[1_000u64, 100_000, 1_000_000] {
        g.bench_with_input(BenchmarkId::from_parameter(total), &total, |b, &total| {
            let mut pool = BlockPool::new(total);
            b.iter(|| {
                let blk = pool.alloc().unwrap();
                pool.free(black_box(blk));
            })
        });
    }
    g.finish();
}

fn bench_checkpoint_file_allocation(c: &mut Criterion) {
    // A 512 MB file at 32 KiB hugeblocks = 16384 allocations.
    c.bench_function("blockpool_alloc_512MB_file", |b| {
        let mut pool = BlockPool::new(1 << 20);
        b.iter(|| {
            let blocks = pool.alloc_many(black_box(16_384)).unwrap();
            pool.free_many(&blocks);
            black_box(blocks.len())
        })
    });
}

fn bench_snapshot_encode(c: &mut Criterion) {
    let mut pool = BlockPool::new(100_000);
    let held = pool.alloc_many(30_000).unwrap();
    pool.free_many(&held[..10_000]);
    c.bench_function("blockpool_encode_100k", |b| {
        b.iter(|| black_box(pool.encode()).len())
    });
}

criterion_group!(
    benches,
    bench_alloc_free_cycle,
    bench_checkpoint_file_allocation,
    bench_snapshot_encode
);
criterion_main!(benches);
