//! End-to-end acceptance: the seeded shard-kill scenario must leave a
//! flight dump from which the doctor reconstructs the faulted command's
//! causal story — submit, the retry leg, failover, rollback — with a
//! verdict naming the injected site.

use nvmecr_bench::{doctor, scenario};
use telemetry::FlightKind;

#[test]
fn seeded_kill_dump_yields_shard_io_verdict() {
    let path = std::env::temp_dir().join(format!("flight_seeded_{}.jsonl", std::process::id()));
    let outcome = scenario::run_seeded(&path).expect("seeded scenario");
    assert_eq!(outcome.rollback_epoch, 2, "rolled back past a clean epoch");
    assert!(outcome.trips >= 2, "injection and recovery must both trip");

    let text = std::fs::read_to_string(&path).expect("dump written");
    std::fs::remove_file(&path).ok();
    let dump = doctor::parse_dump(&text).expect("dump parses");

    // The full causal chain is present: submission traffic, the
    // reliability layer absorbing a transient (timeout -> retry), the
    // injected kill, and the recovery (failover -> rollback).
    for kind in [
        FlightKind::Submit,
        FlightKind::Timeout,
        FlightKind::Retry,
        FlightKind::FaultInjected,
        FlightKind::ShardKill,
        FlightKind::Failover,
        FlightKind::RollbackRestore,
    ] {
        assert!(
            dump.events.iter().any(|e| e.kind == Some(kind)),
            "dump lacks {} events",
            kind.name()
        );
    }
    // Causal order: the kill precedes failover precedes rollback.
    let ts_of = |k: FlightKind| {
        dump.events
            .iter()
            .find(|e| e.kind == Some(k))
            .map(|e| (e.ts_ns, e.seq))
            .unwrap()
    };
    assert!(ts_of(FlightKind::ShardKill) < ts_of(FlightKind::Failover));
    assert!(ts_of(FlightKind::Failover) < ts_of(FlightKind::RollbackRestore));

    let report = doctor::analyze(&dump);
    let verdict = report.verdict.expect("anomalies present");
    assert_eq!(verdict.site.as_deref(), Some("shard_io"));

    // The faulted rank's commands are reconstructable as timelines, and
    // the killed command shows up as one that never completed.
    let faulted = u64::from(outcome.faulted_rank);
    assert!(
        report
            .timelines
            .iter()
            .any(|t| t.rank == Some(faulted) && !t.events.is_empty()),
        "no timeline for the faulted rank"
    );
    assert!(
        report
            .timelines
            .iter()
            .any(|t| t.rank == Some(faulted) && !t.completed),
        "the killed command should never complete"
    );
    assert_eq!(report.replication.rollbacks, 1);
    assert_eq!(report.replication.rollback_epoch, Some(2));
}
