//! Post-mortem analysis of flight-recorder dumps (`nvmecr-doctor`).
//!
//! A dump is the JSONL file the [`telemetry::FlightRecorder`] writes when
//! it trips: one header line, one line per ring event, and one line per
//! metric of the owning registry. The doctor reconstructs what the rings
//! witnessed — per-command causal timelines keyed by (rank, CID), stalled
//! commands, the replication picture — and renders a verdict naming the
//! first anomalous event, with the injected chaos site decoded when the
//! anomaly was an injection.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use telemetry::json::{self, Value};
use telemetry::FlightKind;

/// One event line of a dump, decoded.
#[derive(Clone, Debug)]
pub struct DumpEvent {
    /// Decoded kind (dumps from newer builds may carry kinds this doctor
    /// does not know; those lines are kept by name only).
    pub kind: Option<FlightKind>,
    /// Kind name as written in the dump.
    pub name: String,
    /// Per-shard publication sequence.
    pub seq: u64,
    /// Nanoseconds since recorder creation.
    pub ts_ns: u64,
    /// Rank context, when the event was recorded under one.
    pub rank: Option<u64>,
    /// Epoch context, when the event was recorded under one.
    pub epoch: Option<u64>,
    /// Fabric command id (0 for non-command events).
    pub cid: u64,
    /// Retry generation.
    pub gen: u64,
    /// First kind-specific argument.
    pub a: u64,
    /// Second kind-specific argument.
    pub b: u64,
}

/// Histogram stats embedded in a dump.
#[derive(Clone, Copy, Debug, Default)]
pub struct HistLine {
    /// Samples recorded.
    pub count: u64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
    /// Largest sample.
    pub max: u64,
}

/// A parsed flight-recorder dump.
#[derive(Debug, Default)]
pub struct Dump {
    /// Trip cause named in the header.
    pub cause: String,
    /// Trips counted up to the dump.
    pub trips: u64,
    /// Ring events, oldest first.
    pub events: Vec<DumpEvent>,
    /// Counter totals embedded from the owning registry.
    pub counters: BTreeMap<String, u64>,
    /// Gauge `(value, peak)` pairs.
    pub gauges: BTreeMap<String, (i64, i64)>,
    /// Histogram stats.
    pub histograms: BTreeMap<String, HistLine>,
}

/// Parse a JSONL dump produced by `FlightRecorder::dump_jsonl`.
pub fn parse_dump(text: &str) -> Result<Dump, String> {
    let mut dump = Dump::default();
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or("empty dump")?;
    let header = json::parse(header).map_err(|e| format!("header: {e}"))?;
    match header.get("schema").and_then(Value::as_str) {
        Some(s) if s.starts_with("nvmecr-flight-") => {}
        other => return Err(format!("not a flight dump (schema {other:?})")),
    }
    dump.cause = header
        .get("cause")
        .and_then(Value::as_str)
        .unwrap_or("unknown")
        .to_string();
    dump.trips = header.get("trips").and_then(Value::as_num).unwrap_or(0.0) as u64;
    for (i, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let num = |k: &str| v.get(k).and_then(Value::as_num).map(|n| n as u64);
        if let Some(name) = v.get("ev").and_then(Value::as_str) {
            let kind = (1..=22u64)
                .filter_map(FlightKind::from_code)
                .find(|k| k.name() == name);
            dump.events.push(DumpEvent {
                kind,
                name: name.to_string(),
                seq: num("seq").unwrap_or(0),
                ts_ns: num("ts_ns").unwrap_or(0),
                rank: num("rank"),
                epoch: num("epoch"),
                cid: num("cid").unwrap_or(0),
                gen: num("gen").unwrap_or(0),
                a: num("a").unwrap_or(0),
                b: num("b").unwrap_or(0),
            });
        } else if let Some(name) = v.get("counter").and_then(Value::as_str) {
            dump.counters
                .insert(name.to_string(), num("value").unwrap_or(0));
        } else if let Some(name) = v.get("gauge").and_then(Value::as_str) {
            let g = |k: &str| v.get(k).and_then(Value::as_num).unwrap_or(0.0) as i64;
            dump.gauges
                .insert(name.to_string(), (g("value"), g("peak")));
        } else if let Some(name) = v.get("histogram").and_then(Value::as_str) {
            dump.histograms.insert(
                name.to_string(),
                HistLine {
                    count: num("count").unwrap_or(0),
                    p50: num("p50").unwrap_or(0),
                    p99: num("p99").unwrap_or(0),
                    max: num("max").unwrap_or(0),
                },
            );
        } else {
            return Err(format!("line {}: unrecognized dump line", i + 1));
        }
    }
    dump.events.sort_by_key(|e| (e.ts_ns, e.seq));
    Ok(dump)
}

/// The causal lifecycle of one fabric command, keyed by (rank, CID).
#[derive(Clone, Debug)]
pub struct CommandTimeline {
    /// Rank that drove the command (`None` outside rank context).
    pub rank: Option<u64>,
    /// The command id.
    pub cid: u64,
    /// Lifecycle events, oldest first.
    pub events: Vec<DumpEvent>,
    /// Did a completion retire it?
    pub completed: bool,
    /// Highest retry generation observed.
    pub max_gen: u64,
    /// First event timestamp.
    pub first_ts: u64,
    /// Last event timestamp.
    pub last_ts: u64,
}

impl CommandTimeline {
    /// One-line rendering: `rank 3 cid 17: submit(g0 4096B) → timeout →
    /// retry(g1) → submit(g1) → complete(g1 1.2ms)`.
    pub fn render(&self) -> String {
        let mut out = match self.rank {
            Some(r) => format!("rank {r} cid {}: ", self.cid),
            None => format!("cid {}: ", self.cid),
        };
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(" -> ");
            }
            match e.kind {
                Some(FlightKind::Submit) => {
                    let _ = write!(out, "submit(g{} {}B@{})", e.gen, e.a, e.b);
                }
                Some(FlightKind::Complete) => {
                    let _ = write!(out, "complete(g{} {:.1}us)", e.gen, e.a as f64 / 1e3);
                }
                Some(FlightKind::Retry) => {
                    let _ = write!(out, "retry(g{} backoff {}ns)", e.gen, e.a);
                }
                Some(FlightKind::Timeout) => {
                    let what = if e.a == 0 { "tx" } else { "rx" };
                    let _ = write!(out, "timeout({what} g{})", e.gen);
                }
                Some(FlightKind::CrcError) => {
                    let _ = write!(out, "crc_error");
                }
                Some(FlightKind::RetryExhausted) => {
                    let _ = write!(out, "EXHAUSTED(after {} attempts)", e.gen);
                }
                _ => out.push_str(&e.name),
            }
        }
        if !self.completed {
            out.push_str("  [never completed]");
        }
        out
    }
}

/// Kinds that participate in a per-command timeline.
fn is_command_kind(k: FlightKind) -> bool {
    matches!(
        k,
        FlightKind::Submit
            | FlightKind::Complete
            | FlightKind::Retry
            | FlightKind::Timeout
            | FlightKind::CrcError
            | FlightKind::RetryExhausted
    )
}

/// Anomaly severity for the verdict. Ordinary lifecycle events
/// (submit/complete/retry/WAL/commit/mirror-write) score 0; `Trip` too,
/// since it merely echoes another event. Transients the reliability
/// layer is built to absorb (an injection, a timeout) rank below
/// integrity losses (CRC, degraded mirror), which rank below terminal
/// events (dead shards, exhausted budgets, failover, rollback). The
/// verdict names the *first* event of the *worst* class present, so an
/// absorbed transient early in the window does not outrank the fault
/// that actually took the system down.
fn anomaly_severity(k: FlightKind) -> u8 {
    match k {
        FlightKind::ShardKill
        | FlightKind::ShardDead
        | FlightKind::RetryExhausted
        | FlightKind::Failover
        | FlightKind::RollbackRestore
        | FlightKind::CrashPoint
        | FlightKind::RecoveryCrashPoint
        | FlightKind::RecoveryQuarantine => 3,
        FlightKind::CrcError | FlightKind::MirrorDegraded | FlightKind::DegradedServe => 2,
        FlightKind::FaultInjected | FlightKind::Timeout => 1,
        _ => 0,
    }
}

/// Aggregated replication picture of a dump.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplicationSummary {
    /// Mirrored write batches that landed on both copies.
    pub mirror_writes: u64,
    /// Mirror degradations.
    pub degraded: u64,
    /// Epoch commits witnessed.
    pub epoch_commits: u64,
    /// Newest committed epoch seen.
    pub last_epoch: Option<u64>,
    /// Rollback restores witnessed.
    pub rollbacks: u64,
    /// Epoch the last rollback restored to.
    pub rollback_epoch: Option<u64>,
    /// Epochs of history the last rollback lost.
    pub lag_epochs: Option<u64>,
    /// `cow.chain_len` gauge (value, peak) when the dump carried it.
    pub chain: Option<(i64, i64)>,
}

/// The doctor's conclusion: the first anomalous event and what it names.
#[derive(Clone, Debug)]
pub struct Verdict {
    /// Kind name of the first anomaly (e.g. `fault_injected`).
    pub kind: String,
    /// Decoded site for injections (e.g. `shard_io`); for other anomalies
    /// the most specific locus available (a CID or namespace).
    pub site: Option<String>,
    /// When it happened.
    pub ts_ns: u64,
    /// Human sentence.
    pub description: String,
}

/// A full post-mortem report.
#[derive(Debug)]
pub struct Report {
    /// Trip cause from the dump header.
    pub cause: String,
    /// Trip count from the dump header.
    pub trips: u64,
    /// Total events analyzed.
    pub event_count: u64,
    /// Per-command timelines, most eventful first.
    pub timelines: Vec<CommandTimeline>,
    /// Commands stuck in the pending table beyond the stall threshold.
    pub stalled: Vec<CommandTimeline>,
    /// The stall threshold used (ns).
    pub stall_threshold_ns: u64,
    /// Replication summary.
    pub replication: ReplicationSummary,
    /// The verdict, when any anomaly was found.
    pub verdict: Option<Verdict>,
}

/// Analyze a parsed dump.
pub fn analyze(dump: &Dump) -> Report {
    let mut groups: BTreeMap<(u64, u64), CommandTimeline> = BTreeMap::new();
    let end_ts = dump.events.last().map_or(0, |e| e.ts_ns);
    for e in &dump.events {
        let Some(kind) = e.kind else { continue };
        if !is_command_kind(kind) {
            continue;
        }
        let key = (e.rank.unwrap_or(u64::MAX), e.cid);
        let t = groups.entry(key).or_insert_with(|| CommandTimeline {
            rank: e.rank,
            cid: e.cid,
            events: Vec::new(),
            completed: false,
            max_gen: 0,
            first_ts: e.ts_ns,
            last_ts: e.ts_ns,
        });
        t.completed |= kind == FlightKind::Complete;
        t.max_gen = t.max_gen.max(e.gen);
        t.first_ts = t.first_ts.min(e.ts_ns);
        t.last_ts = t.last_ts.max(e.ts_ns);
        t.events.push(e.clone());
    }
    let mut timelines: Vec<CommandTimeline> = groups.into_values().collect();
    timelines.sort_by_key(|t| (std::cmp::Reverse(t.events.len()), t.first_ts));

    // Stall detection: a command that never completed and whose pending
    // age (dump end minus first submit) exceeds the p99 command latency
    // is stuck, not merely slow. Without a histogram in the dump any
    // incomplete command counts.
    let stall_threshold_ns = dump.histograms.get("fabric.submit_ns").map_or(0, |h| h.p99);
    let stalled: Vec<CommandTimeline> = timelines
        .iter()
        .filter(|t| !t.completed && end_ts.saturating_sub(t.first_ts) > stall_threshold_ns)
        .cloned()
        .collect();

    let mut rep = ReplicationSummary {
        chain: dump.gauges.get("cow.chain_len").copied(),
        ..ReplicationSummary::default()
    };
    for e in &dump.events {
        match e.kind {
            Some(FlightKind::MirrorWrite) => rep.mirror_writes += 1,
            Some(FlightKind::MirrorDegraded) => rep.degraded += 1,
            Some(FlightKind::EpochCommit) => {
                rep.epoch_commits += 1;
                rep.last_epoch = Some(rep.last_epoch.map_or(e.a, |p: u64| p.max(e.a)));
            }
            Some(FlightKind::RollbackRestore) => {
                rep.rollbacks += 1;
                rep.rollback_epoch = Some(e.a);
                rep.lag_epochs = Some(e.b);
            }
            _ => {}
        }
    }

    let worst = dump
        .events
        .iter()
        .filter_map(|e| e.kind.map(anomaly_severity))
        .max()
        .unwrap_or(0);
    // When the nested plane fired, the thing that actually died was
    // recovery itself: the recovery crash point is the verdict's subject
    // and outranks every other terminal event — including the outer
    // crash point it is nested under, which becomes the root-cause
    // context rather than the headline.
    let nested = dump
        .events
        .iter()
        .find(|e| e.kind == Some(FlightKind::RecoveryCrashPoint));
    let verdict = nested
        .or_else(|| {
            (worst > 0)
                .then(|| {
                    dump.events
                        .iter()
                        .find(|e| e.kind.is_some_and(|k| anomaly_severity(k) == worst))
                })
                .flatten()
        })
        .map(|e| {
            let kind = e.kind.expect("filtered on Some");
            let decode_site = |code: u64| match chaos::FaultSite::from_code(code) {
                Some(s) => s.name().to_string(),
                None => format!("unknown site {code}"),
            };
            let decode_crash_op = |code: u64| match chaos::CrashOp::from_code(code) {
                Some(op) => op.name().to_string(),
                None => format!("unknown op kind {code}"),
            };
            let decode_recovery_op = |code: u64| match chaos::RecoveryOp::from_code(code) {
                Some(op) => op.name().to_string(),
                None => format!("unknown recovery op kind {code}"),
            };
            // Attribute the anomaly to its root cause: the nearest fault
            // injection or crash-universe kill at or before it, when one
            // is in the window.
            let injection = dump.events.iter().rfind(|i| {
                matches!(
                    i.kind,
                    Some(FlightKind::FaultInjected) | Some(FlightKind::CrashPoint)
                ) && (i.ts_ns, i.seq) <= (e.ts_ns, e.seq)
            });
            let site = match (kind, injection) {
                (FlightKind::FaultInjected, _) => Some(decode_site(e.a)),
                (FlightKind::CrashPoint, _) => {
                    Some(format!("{} op #{}", decode_crash_op(e.a), e.b))
                }
                (FlightKind::RecoveryCrashPoint, _) => {
                    Some(format!("{} recovery op #{}", decode_recovery_op(e.a), e.b))
                }
                (FlightKind::RecoveryQuarantine, None) => {
                    Some(format!("rank {} after {} failed attempts", e.a, e.b))
                }
                (FlightKind::DegradedServe, None) => {
                    Some(format!("rank {} from epoch {}", e.a, e.b))
                }
                (_, Some(c)) if c.kind == Some(FlightKind::CrashPoint) => {
                    Some(format!("crash_at_op({})", c.b))
                }
                (_, Some(inj)) => Some(decode_site(inj.a)),
                (FlightKind::ShardKill | FlightKind::ShardDead, None) => {
                    Some(format!("ns {}", e.a))
                }
                (FlightKind::CrcError | FlightKind::RetryExhausted | FlightKind::Timeout, None) => {
                    Some(format!("cid {}", e.cid.max(e.a)))
                }
                (FlightKind::Failover, None) => Some(format!("rank {}", e.a)),
                _ => None,
            };
            let ctx = match (e.rank, e.epoch) {
                (Some(r), Some(ep)) => format!(" (rank {r}, epoch {ep})"),
                (Some(r), None) => format!(" (rank {r})"),
                (None, Some(ep)) => format!(" (epoch {ep})"),
                (None, None) => String::new(),
            };
            let root = match (kind, injection) {
                // Both planes fired: name both indices — the outer op the
                // universe killed, and the recovery op the nested kill
                // took down — so a replay command can be reconstructed.
                (FlightKind::RecoveryCrashPoint, Some(c))
                    if c.kind == Some(FlightKind::CrashPoint) =>
                {
                    format!(
                        "; root cause: crash_in_recovery({}) killed the first recovery \
                         attempt after crash_at_op({}) died on a {} op (t={:.3}ms)",
                        e.b,
                        c.b,
                        decode_crash_op(c.a),
                        c.ts_ns as f64 / 1e6
                    )
                }
                (FlightKind::FaultInjected | FlightKind::CrashPoint, _) | (_, None) => {
                    String::new()
                }
                (_, Some(c)) if c.kind == Some(FlightKind::CrashPoint) => format!(
                    "; root cause: crash_at_op({}) killed a {} op (t={:.3}ms)",
                    c.b,
                    decode_crash_op(c.a),
                    c.ts_ns as f64 / 1e6
                ),
                (_, Some(inj)) => format!(
                    "; root cause: injected fault at {} (t={:.3}ms)",
                    decode_site(inj.a),
                    inj.ts_ns as f64 / 1e6
                ),
            };
            let description = format!(
                "first {} anomaly at t={:.3}ms: {}{}{}{}",
                match worst {
                    3 => "terminal",
                    2 => "integrity",
                    _ => "transient",
                },
                e.ts_ns as f64 / 1e6,
                kind.name(),
                site.as_deref()
                    .filter(|_| {
                        matches!(
                            kind,
                            FlightKind::FaultInjected
                                | FlightKind::CrashPoint
                                | FlightKind::RecoveryCrashPoint
                                | FlightKind::RecoveryQuarantine
                                | FlightKind::DegradedServe
                        )
                    })
                    .map(|s| format!(" at {s}"))
                    .unwrap_or_default(),
                ctx,
                root
            );
            Verdict {
                kind: kind.name().to_string(),
                site,
                ts_ns: e.ts_ns,
                description,
            }
        });

    Report {
        cause: dump.cause.clone(),
        trips: dump.trips,
        event_count: dump.events.len() as u64,
        timelines,
        stalled,
        stall_threshold_ns,
        replication: rep,
        verdict,
    }
}

impl Report {
    /// Render the full human-readable post-mortem.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== nvmecr-doctor post-mortem ==");
        let _ = writeln!(
            out,
            "cause: {}   trips: {}   events: {}",
            self.cause, self.trips, self.event_count
        );
        match &self.verdict {
            Some(v) => {
                let _ = writeln!(out, "verdict: {}", v.description);
            }
            None => {
                let _ = writeln!(out, "verdict: no anomalous events in the recorded window");
            }
        }
        let _ = writeln!(out, "\n-- command timelines (most eventful first) --");
        for t in self.timelines.iter().take(12) {
            let _ = writeln!(out, "{}", t.render());
        }
        if self.timelines.len() > 12 {
            let _ = writeln!(out, "... {} more commands", self.timelines.len() - 12);
        }
        let _ = writeln!(
            out,
            "\n-- stalls (pending > p99 submit latency of {}ns) --",
            self.stall_threshold_ns
        );
        if self.stalled.is_empty() {
            let _ = writeln!(out, "none");
        }
        for t in self.stalled.iter().take(8) {
            let _ = writeln!(out, "{}", t.render());
        }
        let r = &self.replication;
        let _ = writeln!(out, "\n-- replication --");
        let _ = writeln!(
            out,
            "mirror writes: {}   degradations: {}   epoch commits: {}{}",
            r.mirror_writes,
            r.degraded,
            r.epoch_commits,
            r.last_epoch
                .map(|e| format!(" (newest epoch {e})"))
                .unwrap_or_default()
        );
        let _ = writeln!(
            out,
            "rollbacks: {}{}{}",
            r.rollbacks,
            r.rollback_epoch
                .map(|e| format!(" (restored to epoch {e})"))
                .unwrap_or_default(),
            r.lag_epochs
                .map(|l| format!(", {l} epoch(s) of history lost"))
                .unwrap_or_default()
        );
        if let Some((len, peak)) = r.chain {
            let _ = writeln!(out, "delta chain depth: {len} (peak {peak})");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::FlightRecorder;

    fn fault_dump() -> Dump {
        let r = FlightRecorder::with_capacity(64);
        r.record(FlightKind::Submit, 5, 0, 4096, 0);
        r.record(FlightKind::FaultInjected, 0, 0, 0x04, 7);
        r.record(FlightKind::Timeout, 5, 0, 0, 0);
        r.record(FlightKind::Retry, 5, 1, 10_000, 0);
        r.record(FlightKind::Submit, 5, 1, 4096, 0);
        r.record(FlightKind::Complete, 5, 1, 900_000, 0);
        r.record(FlightKind::EpochCommit, 0, 0, 3, 1);
        r.trip(FlightKind::FaultInjected, 0x04);
        parse_dump(&r.dump_jsonl(FlightKind::FaultInjected)).unwrap()
    }

    #[test]
    fn parses_and_groups_timelines() {
        let d = fault_dump();
        assert_eq!(d.cause, "fault_injected");
        let report = analyze(&d);
        let t = report
            .timelines
            .iter()
            .find(|t| t.cid == 5)
            .expect("cid 5 timeline");
        assert!(t.completed);
        assert_eq!(t.max_gen, 1);
        let line = t.render();
        assert!(line.contains("submit"), "{line}");
        assert!(line.contains("retry"), "{line}");
        assert!(line.contains("complete"), "{line}");
    }

    #[test]
    fn verdict_names_injected_site() {
        let report = analyze(&fault_dump());
        let v = report.verdict.expect("anomaly present");
        assert_eq!(v.kind, "fault_injected");
        assert_eq!(v.site.as_deref(), Some("shard_io"));
    }

    #[test]
    fn verdict_attributes_crash_universe_kill() {
        let r = FlightRecorder::with_capacity(64);
        r.record(FlightKind::Submit, 3, 0, 4096, 0);
        // crash_at_op(42) fired on a commit-record write (op code 5).
        r.record(FlightKind::CrashPoint, 0, 0, 5, 42);
        r.trip(FlightKind::CrashPoint, 5);
        let d = parse_dump(&r.dump_jsonl(FlightKind::CrashPoint)).unwrap();
        let v = analyze(&d).verdict.expect("crash point is terminal");
        assert_eq!(v.kind, "crash_point");
        let s = v.site.expect("site decoded");
        assert!(s.contains("commit_record") && s.contains("42"), "{s}");
        assert!(v.description.contains("commit_record"), "{}", v.description);
    }

    #[test]
    fn crash_point_is_root_cause_of_later_anomalies() {
        let r = FlightRecorder::with_capacity(64);
        r.record(FlightKind::CrashPoint, 0, 0, 3, 17);
        r.record(FlightKind::RetryExhausted, 8, 4, 0, 0);
        r.trip(FlightKind::RetryExhausted, 8);
        let d = parse_dump(&r.dump_jsonl(FlightKind::RetryExhausted)).unwrap();
        let v = analyze(&d).verdict.expect("terminal anomaly present");
        // Both events are terminal; the crash point is first and wins.
        assert_eq!(v.kind, "crash_point");
        assert!(v.site.as_deref().unwrap_or("").contains("mirror_write"));
    }

    #[test]
    fn nested_crash_point_outranks_outer_in_verdict() {
        let r = FlightRecorder::with_capacity(64);
        // crash_at_op(42) fired on a commit-record write (op code 5)...
        r.record(FlightKind::CrashPoint, 0, 0, 5, 42);
        // ...then crash_in_recovery(7) killed the first recovery attempt
        // on a mirror rescan chunk (recovery op code 5), and the fabric
        // saw the fallout.
        r.record(FlightKind::RecoveryCrashPoint, 0, 0, 5, 7);
        r.record(FlightKind::RetryExhausted, 8, 4, 0, 0);
        r.trip(FlightKind::RecoveryCrashPoint, 5);
        let d = parse_dump(&r.dump_jsonl(FlightKind::RecoveryCrashPoint)).unwrap();
        let v = analyze(&d).verdict.expect("nested crash is terminal");
        // Both planes fired: the nested point is the verdict's subject,
        // the outer point only its root-cause context.
        assert_eq!(v.kind, "recovery_crash_point");
        let s = v.site.expect("site decoded");
        assert!(s.contains("rescan_chunk") && s.contains("#7"), "{s}");
        assert!(
            v.description.contains("crash_in_recovery(7)")
                && v.description.contains("crash_at_op(42)")
                && v.description.contains("commit_record"),
            "{}",
            v.description
        );
    }

    #[test]
    fn quarantine_and_degraded_serve_verdicts_name_the_rank() {
        let r = FlightRecorder::with_capacity(64);
        r.record(FlightKind::RecoveryQuarantine, 0, 0, 3, 2);
        r.trip(FlightKind::RecoveryQuarantine, 3);
        let d = parse_dump(&r.dump_jsonl(FlightKind::RecoveryQuarantine)).unwrap();
        let v = analyze(&d).verdict.expect("quarantine is terminal");
        assert_eq!(v.kind, "recovery_quarantine");
        assert!(
            v.site.as_deref().unwrap_or("").contains("rank 3"),
            "{:?}",
            v.site
        );

        let r = FlightRecorder::with_capacity(64);
        r.record(FlightKind::DegradedServe, 0, 0, 5, 9);
        let d = parse_dump(&r.dump_jsonl(FlightKind::DegradedServe)).unwrap();
        let v = analyze(&d).verdict.expect("degraded serve is an anomaly");
        assert_eq!(v.kind, "degraded_serve");
        let s = v.site.expect("site decoded");
        assert!(s.contains("rank 5") && s.contains("epoch 9"), "{s}");
    }

    #[test]
    fn replication_summary_tracks_epochs_and_rollbacks() {
        let r = FlightRecorder::with_capacity(64);
        r.record(FlightKind::MirrorWrite, 0, 0, 1 << 20, 8);
        r.record(FlightKind::EpochCommit, 0, 0, 4, 0);
        r.record(FlightKind::RollbackRestore, 0, 0, 3, 1);
        let d = parse_dump(&r.dump_jsonl(FlightKind::RollbackRestore)).unwrap();
        let rep = analyze(&d).replication;
        assert_eq!(rep.mirror_writes, 1);
        assert_eq!(rep.epoch_commits, 1);
        assert_eq!(rep.last_epoch, Some(4));
        assert_eq!(rep.rollbacks, 1);
        assert_eq!(rep.rollback_epoch, Some(3));
        assert_eq!(rep.lag_epochs, Some(1));
    }

    #[test]
    fn stall_detection_flags_incomplete_commands() {
        let r = FlightRecorder::with_capacity(64);
        r.record(FlightKind::Submit, 9, 0, 512, 0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        r.record(FlightKind::Submit, 10, 0, 512, 0);
        r.record(FlightKind::Complete, 10, 0, 100, 0);
        let d = parse_dump(&r.dump_jsonl(FlightKind::Timeout)).unwrap();
        let report = analyze(&d);
        assert!(
            report.stalled.iter().any(|t| t.cid == 9),
            "cid 9 never completed and aged past the (absent) threshold"
        );
        assert!(report.stalled.iter().all(|t| t.cid != 10));
    }

    #[test]
    fn rejects_non_dump_input() {
        assert!(parse_dump("{\"bench\":\"chaos\"}\n").is_err());
        assert!(parse_dump("").is_err());
    }
}
