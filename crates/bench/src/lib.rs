//! # nvmecr-bench — the reproduction harness
//!
//! One computation function per paper figure/table (in [`figures`]), each
//! returning a [`report::FigureReport`] that prints as an aligned text
//! table. The `src/bin/` binaries are thin wrappers (`fig1`, `fig7a` ...
//! `table2`), and `reproduce_all` runs everything — its output is the
//! source for EXPERIMENTS.md.
//!
//! Criterion microbenchmarks of the *functional* code (B+Tree, block pool,
//! WAL coalescing, microfs op paths) live in `benches/`.

pub mod doctor;
pub mod figures;
pub mod report;
pub mod scenario;
pub mod stamp;

pub use report::{FigureReport, Series, TableReport};
