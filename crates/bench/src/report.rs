//! Figure/table report structure and text rendering.

use std::fmt;

/// One line series of a figure.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Build from label and points.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }

    /// The y value at a given x, if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (px - x).abs() < 1e-9)
            .map(|&(_, y)| y)
    }
}

/// A reproduced figure or table.
#[derive(Debug, Clone)]
pub struct FigureReport {
    /// Identifier, e.g. "Figure 7(a)".
    pub id: String,
    /// Title line.
    pub title: String,
    /// X-axis meaning.
    pub x_label: String,
    /// Y-axis meaning.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
    /// Free-form notes (paper-vs-measured commentary).
    pub notes: Vec<String>,
}

impl FigureReport {
    /// Start an empty report.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        FigureReport {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Add a series.
    pub fn push(&mut self, s: Series) {
        self.series.push(s);
    }

    /// Add a note.
    pub fn note(&mut self, n: impl Into<String>) {
        self.notes.push(n.into());
    }

    /// Find a series by label.
    pub fn series_named(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// All distinct x values, sorted.
    fn xs(&self) -> Vec<f64> {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        xs
    }
}

fn fmt_num(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1e6 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

impl fmt::Display for FigureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {}: {} ==", self.id, self.title)?;
        writeln!(f, "   y = {}", self.y_label)?;
        // Header.
        let xs = self.xs();
        let mut widths: Vec<usize> = Vec::new();
        let label_w = self
            .series
            .iter()
            .map(|s| s.label.len())
            .max()
            .unwrap_or(4)
            .max(self.x_label.len());
        let mut header = format!("{:label_w$}", self.x_label);
        for &x in &xs {
            let cell = fmt_num(x);
            let w = cell.len().max(9);
            header.push_str(&format!(" | {cell:>w$}"));
            widths.push(w);
        }
        writeln!(f, "{header}")?;
        writeln!(f, "{}", "-".repeat(header.len()))?;
        for s in &self.series {
            let mut row = format!("{:label_w$}", s.label);
            for (i, &x) in xs.iter().enumerate() {
                let w = widths[i];
                match s.y_at(x) {
                    Some(y) => row.push_str(&format!(" | {:>w$}", fmt_num(y))),
                    None => row.push_str(&format!(" | {:>w$}", "-")),
                }
            }
            writeln!(f, "{row}")?;
        }
        for n in &self.notes {
            writeln!(f, "   note: {n}")?;
        }
        Ok(())
    }
}

/// A reproduced table (Table I / Table II): named rows × named columns.
#[derive(Debug, Clone)]
pub struct TableReport {
    /// Identifier, e.g. "Table II".
    pub id: String,
    /// Title line.
    pub title: String,
    /// Column headings.
    pub columns: Vec<String>,
    /// `(row label, values)` — one value per column.
    pub rows: Vec<(String, Vec<f64>)>,
    /// Free-form notes.
    pub notes: Vec<String>,
}

impl TableReport {
    /// Start an empty table.
    pub fn new(id: impl Into<String>, title: impl Into<String>, columns: &[&str]) -> Self {
        TableReport {
            id: id.into(),
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Add a row (must match the column count).
    pub fn row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row/column mismatch");
        self.rows.push((label.into(), values));
    }

    /// Add a note.
    pub fn note(&mut self, n: impl Into<String>) {
        self.notes.push(n.into());
    }

    /// Look up a cell by row label and column heading.
    pub fn cell(&self, row: &str, column: &str) -> Option<f64> {
        let c = self.columns.iter().position(|x| x == column)?;
        self.rows
            .iter()
            .find(|(l, _)| l == row)
            .map(|(_, vals)| vals[c])
    }
}

impl fmt::Display for TableReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {}: {} ==", self.id, self.title)?;
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .max()
            .unwrap_or(6)
            .max(6);
        let widths: Vec<usize> = self.columns.iter().map(|c| c.len().max(10)).collect();
        let mut header = format!("{:label_w$}", "system");
        for (c, w) in self.columns.iter().zip(&widths) {
            header.push_str(&format!(" | {c:>w$}"));
        }
        writeln!(f, "{header}")?;
        writeln!(f, "{}", "-".repeat(header.len()))?;
        for (label, vals) in &self.rows {
            let mut row = format!("{label:label_w$}");
            for (v, w) in vals.iter().zip(&widths) {
                row.push_str(&format!(" | {:>w$}", fmt_num(*v)));
            }
            writeln!(f, "{row}")?;
        }
        for n in &self.notes {
            writeln!(f, "   note: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_render_and_cell() {
        let mut t = TableReport::new("Table II", "multilevel", &["ckpt (s)", "progress"]);
        t.row("NVMe-CR", vec![39.5, 0.423]);
        t.row("OrangeFS", vec![85.9, 0.252]);
        assert_eq!(t.cell("NVMe-CR", "progress"), Some(0.423));
        assert_eq!(t.cell("NVMe-CR", "nope"), None);
        assert_eq!(t.cell("XFS", "progress"), None);
        let s = t.to_string();
        assert!(s.contains("Table II") && s.contains("85.9"));
    }

    #[test]
    #[should_panic(expected = "row/column mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = TableReport::new("T", "x", &["a", "b"]);
        t.row("bad", vec![1.0]);
    }

    #[test]
    fn renders_aligned_table() {
        let mut r = FigureReport::new("Figure X", "demo", "procs", "efficiency");
        r.push(Series::new("NVMe-CR", vec![(56.0, 0.95), (448.0, 0.96)]));
        r.push(Series::new("OrangeFS", vec![(56.0, 0.41)]));
        r.note("shape check only");
        let text = r.to_string();
        assert!(text.contains("Figure X"));
        assert!(text.contains("NVMe-CR"));
        assert!(text.contains("0.960"));
        assert!(text.contains('-'), "missing-point dash");
        assert!(text.contains("note: shape check only"));
    }

    #[test]
    fn y_at_lookup() {
        let s = Series::new("a", vec![(1.0, 2.0), (3.0, 4.0)]);
        assert_eq!(s.y_at(3.0), Some(4.0));
        assert_eq!(s.y_at(2.0), None);
    }

    #[test]
    fn series_named() {
        let mut r = FigureReport::new("F", "t", "x", "y");
        r.push(Series::new("alpha", vec![]));
        assert!(r.series_named("alpha").is_some());
        assert!(r.series_named("beta").is_none());
    }
}
