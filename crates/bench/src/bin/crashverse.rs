//! Crash-universe smoke: enumerate every durability op in the standard
//! incremental-checkpoint workload, crash at each index, and verify the
//! recovery invariants (`BENCH_crashverse.json`).
//!
//! Four modes:
//!
//! * **explore** (default / `--smoke`): size the universe with a clean
//!   counting run, execute every crash point (`--smoke` caps the scan at
//!   2000 points and dumps `FLIGHT_crashverse_*.jsonl` counterexamples
//!   into the working directory), and gate on *zero* invariant
//!   violations across a universe of at least 500 ops.
//! * **replay** (`--crash-at K`): re-execute exactly one crash point —
//!   the command line a failing explore prints, pinning `(seed, op
//!   index, config fingerprint)`.
//! * **nested explore** (`--nested [--smoke]`): sample a `(k, j)` grid —
//!   outer crash at durability op `k`, then a second kill at recovery op
//!   `j` inside the *first* recovery attempt — and require the
//!   supervisor's second attempt to restore every invariant at every
//!   point (`BENCH_crashverse_nested.json`). Also forces one full
//!   quarantine → degraded-serve → rejoin cycle and gates on it.
//! * **nested replay** (`--nested --crash-at K --crash-in-recovery J`):
//!   one pinned nested point, full verdict on stdout.
//!
//! Every verdict is deterministic: same seed and workload shape, same
//! universe size, same per-point outcome.

use std::fmt::Write as _;
use std::path::PathBuf;

use crashverse::{explore, quarantine_cycle, run_nested_point, run_point, UniverseConfig};
use nvmecr_bench::stamp;
use telemetry::Telemetry;

/// Explore must cover at least this many crash points (acceptance
/// criterion: the default workload's universe is well past it).
const MIN_UNIVERSE: u64 = 500;
/// `--smoke` bound on executed points.
const SMOKE_MAX_POINTS: u64 = 2000;
/// Nested explore must execute at least this many `(k, j)` grid points.
const NESTED_MIN_POINTS: u64 = 200;
/// Outer crash indices sampled into the nested grid.
const NESTED_OUTER_POINTS: u64 = 25;
/// Nested recovery indices sampled per outer index.
const NESTED_PER_OUTER: u64 = 10;

fn parse_u64(flag: &str, v: Option<String>) -> Result<u64, String> {
    v.ok_or_else(|| format!("{flag} needs a value"))?
        .parse()
        .map_err(|e| format!("{flag}: {e}"))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = UniverseConfig::default();
    let mut crash_at: Option<u64> = None;
    let mut crash_in_recovery: Option<u64> = None;
    let mut nested = false;
    let mut smoke = false;
    let mut outer_points = NESTED_OUTER_POINTS;
    let mut nested_per_outer = NESTED_PER_OUTER;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--nested" => nested = true,
            "--seed" => cfg.seed = parse_u64("--seed", args.next())?,
            "--ranks" => cfg.ranks = parse_u64("--ranks", args.next())? as u32,
            "--epochs" => cfg.epochs = parse_u64("--epochs", args.next())? as u32,
            "--files" => cfg.files_per_epoch = parse_u64("--files", args.next())? as u32,
            "--write-kib" => cfg.write_kib = parse_u64("--write-kib", args.next())?,
            "--max-points" => cfg.max_points = Some(parse_u64("--max-points", args.next())?),
            "--crash-at" => crash_at = Some(parse_u64("--crash-at", args.next())?),
            "--crash-in-recovery" => {
                crash_in_recovery = Some(parse_u64("--crash-in-recovery", args.next())?);
            }
            "--outer-points" => outer_points = parse_u64("--outer-points", args.next())?,
            "--nested-per-outer" => {
                nested_per_outer = parse_u64("--nested-per-outer", args.next())?;
            }
            "--dump-dir" => {
                cfg.dump_dir = Some(PathBuf::from(
                    args.next().ok_or("--dump-dir needs a value")?,
                ));
            }
            other => return Err(format!("unknown argument {other}").into()),
        }
    }
    if smoke {
        cfg.max_points.get_or_insert(SMOKE_MAX_POINTS);
        cfg.dump_dir.get_or_insert_with(|| PathBuf::from("."));
    }

    if nested {
        return run_nested(
            &cfg,
            crash_at,
            crash_in_recovery,
            outer_points,
            nested_per_outer,
        );
    }

    if let Some(k) = crash_at {
        // Replay mode: one pinned crash point, full verdict on stdout.
        let v = run_point(&cfg, k);
        println!(
            "crash-at {k}: fired={:?} kind={} passed={}",
            v.fired,
            v.fired_kind.unwrap_or("-"),
            v.passed
        );
        if let Some(why) = &v.violation {
            println!("violation: {why}");
            if let Some(d) = &v.dump {
                println!("counterexample: {}", d.display());
            }
            println!("replay: {}", cfg.replay_command(k));
            return Err(format!("crash point {k} violated invariants").into());
        }
        return Ok(());
    }

    let telemetry = Telemetry::new();
    let report = explore(&cfg, &telemetry)?;

    println!(
        "universe: {} ops ({} points run, {} shrink steps), fingerprint {:#018x}",
        report.total_ops, report.points_run, report.shrink_steps, report.fingerprint
    );
    println!("{:>15}  {:>8}", "op kind", "ops");
    for (i, op) in chaos::CrashOp::ALL.iter().enumerate() {
        println!("{:>15}  {:>8}", op.name(), report.per_kind[i]);
    }
    for f in &report.failures {
        println!(
            "FAIL op {} ({}): {}",
            f.op_index,
            f.fired_kind.unwrap_or("-"),
            f.violation
        );
        if let Some(d) = &f.dump {
            println!("  counterexample: {}", d.display());
        }
        println!("  replay: {}", f.replay);
    }

    let snap = telemetry.snapshot();
    let mut json = String::new();
    let _ = writeln!(json, "{{\n  \"bench\": \"crashverse\",");
    json.push_str(&stamp::meta_line(&stamp::Fingerprint {
        queue_depth: 32,
        ranks: cfg.ranks,
        replication_factor: 2,
        delta_chain_max: 4,
        mode: "rayon",
        reactors: 0,
    }));
    let _ = writeln!(json, "  \"seed\": {},", cfg.seed);
    let _ = writeln!(
        json,
        "  \"config_fingerprint\": \"{:#018x}\",",
        report.fingerprint
    );
    let _ = writeln!(json, "  \"total_ops\": {},", report.total_ops);
    let _ = writeln!(json, "  \"points\": {},", snap.counter("crashverse.points"));
    let _ = writeln!(
        json,
        "  \"failures\": {},",
        snap.counter("crashverse.failures")
    );
    let _ = writeln!(
        json,
        "  \"shrink_steps\": {},",
        snap.counter("crashverse.shrink_steps")
    );
    let mut per_kind = String::new();
    for (i, op) in chaos::CrashOp::ALL.iter().enumerate() {
        if i > 0 {
            per_kind.push_str(", ");
        }
        let _ = write!(per_kind, "\"{}\": {}", op.name(), report.per_kind[i]);
    }
    let _ = writeln!(json, "  \"per_kind\": {{{per_kind}}},");
    let _ = writeln!(
        json,
        "  \"gate\": {{\"min_universe\": {MIN_UNIVERSE}, \"all_points_pass\": true}}\n}}"
    );
    std::fs::write("BENCH_crashverse.json", &json)?;
    println!("wrote BENCH_crashverse.json");

    // Self-validation gates.
    if report.total_ops < MIN_UNIVERSE {
        return Err(format!(
            "crash universe has only {} ops (< {MIN_UNIVERSE}); workload too small",
            report.total_ops
        )
        .into());
    }
    if !report.failures.is_empty() {
        return Err(format!(
            "{} crash point(s) violated recovery invariants",
            report.failures.len()
        )
        .into());
    }
    Ok(())
}

/// Nested modes: one pinned `(k, j)` replay, or the sampled grid plus
/// the forced quarantine cycle (`BENCH_crashverse_nested.json`).
fn run_nested(
    cfg: &UniverseConfig,
    crash_at: Option<u64>,
    crash_in_recovery: Option<u64>,
    outer_points: u64,
    nested_per_outer: u64,
) -> Result<(), Box<dyn std::error::Error>> {
    if let (Some(k), Some(j)) = (crash_at, crash_in_recovery) {
        let v = run_nested_point(cfg, k, j);
        println!(
            "crash-at {k} crash-in-recovery {j}: outer_fired={:?} nested_fired={:?} \
             kind={} restarts={} passed={}",
            v.outer_fired,
            v.nested_fired,
            v.nested_kind.unwrap_or("-"),
            v.restarts,
            v.passed
        );
        if let Some(why) = &v.violation {
            println!("violation: {why}");
            if let Some(d) = &v.dump {
                println!("counterexample: {}", d.display());
            }
            println!("replay: {}", cfg.replay_nested_command(k, j));
            return Err(format!("nested crash point ({k}, {j}) violated invariants").into());
        }
        return Ok(());
    }
    if crash_at.is_some() != crash_in_recovery.is_some() {
        return Err("nested replay needs both --crash-at and --crash-in-recovery".into());
    }

    let telemetry = Telemetry::new();
    let report = crashverse::explore_nested(cfg, outer_points, nested_per_outer, &telemetry)?;
    println!(
        "nested grid: {} outer points over {} ops, {} (k, j) points run \
         ({} double-fired, {} supervisor restarts), fingerprint {:#018x}",
        report.outer_points,
        report.outer_total,
        report.points_run,
        report.double_fired,
        report.restarts,
        report.fingerprint
    );
    println!("{:>18}  {:>8}", "recovery op kind", "ops");
    for (i, op) in chaos::RecoveryOp::ALL.iter().enumerate() {
        println!("{:>18}  {:>8}", op.name(), report.per_kind[i]);
    }
    for f in &report.failures {
        println!(
            "FAIL ({}, {}) ({}): {}",
            f.outer,
            f.nested,
            f.nested_kind.unwrap_or("-"),
            f.violation
        );
        if let Some(d) = &f.dump {
            println!("  counterexample: {}", d.display());
        }
        println!("  replay: {}", f.replay);
    }

    let cycle = quarantine_cycle(cfg).map_err(|e| format!("quarantine cycle: {e}"))?;
    println!(
        "quarantine cycle: {} rank(s) parked, {} degraded reads served, {} rejoined",
        cycle.quarantined, cycle.degraded_reads, cycle.rejoined
    );

    let snap = telemetry.snapshot();
    let mut json = String::new();
    let _ = writeln!(json, "{{\n  \"bench\": \"crashverse_nested\",");
    json.push_str(&stamp::meta_line(&stamp::Fingerprint {
        queue_depth: 32,
        ranks: cfg.ranks,
        replication_factor: 2,
        delta_chain_max: 4,
        mode: "rayon",
        reactors: 0,
    }));
    let _ = writeln!(json, "  \"seed\": {},", cfg.seed);
    let _ = writeln!(
        json,
        "  \"config_fingerprint\": \"{:#018x}\",",
        report.fingerprint
    );
    let _ = writeln!(json, "  \"outer_total\": {},", report.outer_total);
    let _ = writeln!(json, "  \"outer_points\": {},", report.outer_points);
    let _ = writeln!(
        json,
        "  \"points\": {},",
        snap.counter("crashverse.nested_points")
    );
    let _ = writeln!(json, "  \"double_fired\": {},", report.double_fired);
    let _ = writeln!(
        json,
        "  \"failures\": {},",
        snap.counter("crashverse.nested_failures")
    );
    let _ = writeln!(
        json,
        "  \"restarts\": {},",
        snap.counter("crashverse.nested_restarts")
    );
    let mut per_kind = String::new();
    for (i, op) in chaos::RecoveryOp::ALL.iter().enumerate() {
        if i > 0 {
            per_kind.push_str(", ");
        }
        let _ = write!(per_kind, "\"{}\": {}", op.name(), report.per_kind[i]);
    }
    let _ = writeln!(json, "  \"per_kind\": {{{per_kind}}},");
    let _ = writeln!(
        json,
        "  \"quarantine_cycle\": {{\"quarantined\": {}, \"degraded_reads\": {}, \
         \"rejoined\": {}}},",
        cycle.quarantined, cycle.degraded_reads, cycle.rejoined
    );
    let _ = writeln!(
        json,
        "  \"gate\": {{\"min_points\": {NESTED_MIN_POINTS}, \"all_points_pass\": true}}\n}}"
    );
    std::fs::write("BENCH_crashverse_nested.json", &json)?;
    println!("wrote BENCH_crashverse_nested.json");

    // Self-validation gates.
    if report.points_run < NESTED_MIN_POINTS {
        return Err(format!(
            "nested grid ran only {} points (< {NESTED_MIN_POINTS}); widen the sample",
            report.points_run
        )
        .into());
    }
    if report.double_fired < NESTED_MIN_POINTS {
        return Err(format!(
            "only {} grid points fired both crashes (< {NESTED_MIN_POINTS})",
            report.double_fired
        )
        .into());
    }
    if !report.failures.is_empty() {
        return Err(format!(
            "{} nested crash point(s) violated recovery invariants",
            report.failures.len()
        )
        .into());
    }
    if cycle.quarantined == 0 || cycle.rejoined != cycle.quarantined {
        return Err(format!(
            "quarantine cycle incomplete: {} parked, {} rejoined",
            cycle.quarantined, cycle.rejoined
        )
        .into());
    }
    Ok(())
}
