//! Incremental checkpointing bench: what extent-level copy-on-write delta
//! epochs buy over full-image rewrites (`BENCH_incremental.json`).
//!
//! Three identical runs (28 ranks, QD=32, one in-place image file per
//! rank, 10% of the image dirtied per round, real bytes through microfs →
//! NVMf → SSD shards, `replication_factor=2` with an epoch sealed every
//! round) differing only in how each rank decides what to write:
//!
//! * **full_rewrite** — the N-N baseline: the whole image, every round,
//!   full manifests (`delta_chain_max=0`);
//! * **hash_scan** — libhashckpt-style (§II-B): hash the whole image in
//!   64 KiB chunks, write only changed chunks, full manifests;
//! * **cow_tracked** — the application tracks its dirty chunks as it
//!   mutates them (no scan) and writes exactly those, while the mirror
//!   seals sparse `parent_epoch`-linked delta manifests and compacts
//!   every `delta_chain_max` epochs.
//!
//! The reported number is steady-state device write bytes (rounds 1..,
//! measured at the SSDs so WAL, manifest, and mirror traffic all count).
//! Self-validation gates: **cow_tracked reduces device write bytes ≥5x**
//! versus full_rewrite at 10% dirty (≥3x under `--smoke`), every run's
//! final image verifies byte-identical, and the cow run additionally
//! kills rank 0's primary shard after the last round and byte-verifies
//! the restore materialized through a ≥3-epoch delta chain.

use std::fmt::Write as _;

use nvmecr_bench::stamp;

use workloads::{
    run_incremental_checkpoints, FunctionalTuning, IncrementalRunReport, IncrementalSpec,
    IncrementalStrategy,
};

const ROUNDS: u32 = 5;
const RANKS: u32 = 28;
const QD: usize = 32;
const BLOCK: u64 = 4 << 10;
const BYTES_PER_RANK: u64 = 4 << 20;
const DIRTY_PERMILLE: u32 = 100;
const DELTA_CHAIN_MAX: u32 = 4;
const SMOKE_RANKS: u32 = 8;
const SMOKE_BYTES_PER_RANK: u64 = 1 << 20;

struct StrategyRun {
    strategy: IncrementalStrategy,
    report: IncrementalRunReport,
}

fn run_strategy(
    strategy: IncrementalStrategy,
    ranks: u32,
    bytes_per_rank: u64,
    namespace_bytes: u64,
) -> Result<StrategyRun, Box<dyn std::error::Error>> {
    // Only the cow run chains deltas (and proves failover through them);
    // the baselines measure the app-side savings alone on the standard
    // full-manifest path.
    let cow = strategy == IncrementalStrategy::CowTracked;
    let spec = IncrementalSpec {
        strategy,
        procs: ranks,
        rounds: ROUNDS,
        bytes_per_rank,
        dirty_permille: DIRTY_PERMILLE,
        namespace_bytes,
        tuning: FunctionalTuning {
            block_size: BLOCK,
            queue_depth: QD,
            replication_factor: 2,
            delta_chain_max: if cow { DELTA_CHAIN_MAX } else { 0 },
            ..FunctionalTuning::default()
        },
        fail_over: cow,
    };
    let report = run_incremental_checkpoints(&spec)?;
    Ok(StrategyRun { strategy, report })
}

fn strategy_json(run: &StrategyRun) -> String {
    let r = &run.report;
    let snap = &r.telemetry;
    let ckpt = snap.histogram("driver.incremental_ckpt_ns");
    let (p50, p99) = ckpt
        .map(|h| (h.percentile(50.0), h.percentile(99.0)))
        .unwrap_or_default();
    format!(
        "{{\"first_round_device_bytes\": {}, \"steady_device_bytes\": {}, \
         \"steady_app_bytes\": {}, \"bytes_verified\": {}, \"failover_verified\": {}, \
         \"ckpt_ns\": {{\"p50\": {p50}, \"p99\": {p99}}}, \
         \"cow\": {{\"delta_extents\": {}, \"copy_up_bytes\": {}, \"chain_len_peak\": {}, \
         \"compactions\": {}}}, \
         \"incremental\": {{\"chunks\": {}, \"chunks_written\": {}, \"bytes_skipped\": {}}}}}",
        r.first_round_device_bytes,
        r.steady_device_bytes,
        r.steady_app_bytes,
        r.bytes_verified,
        r.failover_verified,
        snap.counter("cow.delta_extents"),
        snap.counter("cow.copy_up_bytes"),
        snap.gauge("cow.chain_len").peak,
        snap.histogram("cow.compaction_ns")
            .map(|h| h.count)
            .unwrap_or(0),
        snap.counter("incremental.chunks"),
        snap.counter("incremental.chunks_written"),
        snap.counter("incremental.bytes_skipped"),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut smoke = false;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--smoke" => smoke = true,
            other => return Err(format!("unknown argument {other}").into()),
        }
    }
    let (ranks, bytes_per_rank, namespace_bytes) = if smoke {
        (SMOKE_RANKS, SMOKE_BYTES_PER_RANK, 256u64 << 20)
    } else {
        (RANKS, BYTES_PER_RANK, 2u64 << 30)
    };
    let gate = if smoke { 3.0 } else { 5.0 };

    let runs: Vec<StrategyRun> = [
        IncrementalStrategy::FullRewrite,
        IncrementalStrategy::HashScan,
        IncrementalStrategy::CowTracked,
    ]
    .into_iter()
    .map(|s| run_strategy(s, ranks, bytes_per_rank, namespace_bytes))
    .collect::<Result<_, _>>()?;
    let full = &runs[0].report;

    println!(
        "{:>13}  {:>16}  {:>15}  {:>9}  {:>8}",
        "strategy", "steady dev bytes", "steady app bytes", "reduction", "failover"
    );
    for run in &runs {
        let r = &run.report;
        println!(
            "{:>13}  {:>16}  {:>15}  {:>8.2}x  {:>8}",
            run.strategy.label(),
            r.steady_device_bytes,
            r.steady_app_bytes,
            full.steady_device_bytes as f64 / r.steady_device_bytes as f64,
            if r.failover_verified { "ok" } else { "-" },
        );
    }

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"incremental\",\n");
    json.push_str(&stamp::meta_line(&stamp::Fingerprint {
        queue_depth: QD,
        ranks,
        replication_factor: 2,
        delta_chain_max: DELTA_CHAIN_MAX,
        mode: "rayon",
        reactors: 0,
    }));
    json.push_str(
        "  \"unit\": \"device write bytes (steady-state rounds, measured at the SSDs)\",\n",
    );
    let _ = writeln!(
        json,
        "  \"config\": {{\"ranks\": {ranks}, \"qd\": {QD}, \"block_size\": {BLOCK}, \
         \"bytes_per_rank\": {bytes_per_rank}, \"rounds\": {ROUNDS}, \
         \"dirty_permille\": {DIRTY_PERMILLE}, \"replication_factor\": 2, \
         \"delta_chain_max\": {DELTA_CHAIN_MAX}}},"
    );
    for run in &runs {
        let _ = writeln!(
            json,
            "  \"{}\": {},",
            run.strategy.label(),
            strategy_json(run)
        );
    }
    let cow = &runs[2].report;
    let reduction = full.steady_device_bytes as f64 / cow.steady_device_bytes as f64;
    let _ = writeln!(
        json,
        "  \"reduction\": {{\"cow_vs_full\": {:.3}, \"hash_vs_full\": {:.3}, \"gate\": {gate}}}\n}}",
        reduction,
        full.steady_device_bytes as f64 / runs[1].report.steady_device_bytes as f64,
    );
    std::fs::write("BENCH_incremental.json", &json)?;
    println!("wrote BENCH_incremental.json");

    // Self-validation gates.
    if reduction < gate {
        return Err(format!(
            "cow_tracked reduced steady write bytes only {reduction:.2}x (< {gate}x) at 10% dirty"
        )
        .into());
    }
    for run in &runs {
        if run.report.bytes_verified != u64::from(ranks) * bytes_per_rank {
            return Err(format!("{} verified too few bytes", run.strategy.label()).into());
        }
    }
    if !cow.failover_verified {
        return Err("cow run did not verify the post-failover restore".into());
    }
    if cow.telemetry.gauge("cow.chain_len").peak < i64::from(DELTA_CHAIN_MAX.min(ROUNDS - 1)) {
        return Err(format!(
            "restore chain never grew to {} epochs (peak {})",
            DELTA_CHAIN_MAX.min(ROUNDS - 1),
            cow.telemetry.gauge("cow.chain_len").peak
        )
        .into());
    }
    if cow.telemetry.counter("cow.delta_extents") == 0 {
        return Err("cow run sealed no delta manifests".into());
    }
    if cow.telemetry.counter("replication.degraded_restores") != 1 {
        return Err("expected exactly one degraded (manifest-chain) restore".into());
    }
    Ok(())
}
