//! Regenerates the paper's Figure 7a.
fn main() {
    println!("{}", nvmecr_bench::figures::fig7a());
}
