//! Regenerates the paper's Figure 1.
fn main() {
    println!("{}", nvmecr_bench::figures::fig1());
}
