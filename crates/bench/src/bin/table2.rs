//! Regenerates the paper's Table II.
fn main() {
    println!("{}", nvmecr_bench::figures::table2());
}
