//! Regenerates the paper's Figure 9 (a-d). Pass `--strong`, `--weak`, or
//! nothing for both.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let want_strong = args.iter().any(|a| a == "--strong") || args.len() == 1;
    let want_weak = args.iter().any(|a| a == "--weak") || args.len() == 1;
    if want_strong {
        let (a, b) = nvmecr_bench::figures::fig9(true);
        println!("{a}\n{b}");
    }
    if want_weak {
        let (c, d) = nvmecr_bench::figures::fig9(false);
        println!("{c}\n{d}");
    }
}
