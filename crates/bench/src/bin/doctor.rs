//! `nvmecr-doctor` — post-mortem analysis of a flight-recorder dump.
//!
//! Usage: `nvmecr-doctor <dump.jsonl> [--expect-site NAME]`
//!
//! Loads the JSONL dump a tripped [`telemetry::FlightRecorder`] wrote
//! (plus the metric snapshot embedded in it), reconstructs per-command
//! causal timelines, flags stalls, summarizes replication health, and
//! prints a verdict naming the first anomalous event. With
//! `--expect-site` the exit status becomes a CI assertion: nonzero
//! unless the verdict names that site (e.g. `shard_io` for an injected
//! shard fault).

use nvmecr_bench::doctor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dump_path: Option<String> = None;
    let mut expect_site: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--expect-site" => {
                expect_site = Some(it.next().ok_or("--expect-site needs a value")?);
            }
            "--help" | "-h" => {
                println!("usage: nvmecr-doctor <dump.jsonl> [--expect-site NAME]");
                return Ok(());
            }
            _ if dump_path.is_none() => dump_path = Some(a),
            other => return Err(format!("unexpected argument {other}").into()),
        }
    }
    let dump_path = dump_path.ok_or("usage: nvmecr-doctor <dump.jsonl> [--expect-site NAME]")?;
    let text = std::fs::read_to_string(&dump_path).map_err(|e| format!("{dump_path}: {e}"))?;
    let dump = doctor::parse_dump(&text).map_err(|e| format!("{dump_path}: {e}"))?;
    let report = doctor::analyze(&dump);
    print!("{}", report.render());

    if let Some(want) = expect_site {
        let got = report.verdict.as_ref().and_then(|v| v.site.as_deref());
        match got {
            Some(site) if site == want => {
                println!("\nexpect-site: verdict names '{want}' as expected");
            }
            _ => {
                return Err(format!(
                    "expect-site: wanted '{want}', verdict names {:?} (kind {:?})",
                    got,
                    report.verdict.as_ref().map(|v| v.kind.as_str())
                )
                .into());
            }
        }
    }
    Ok(())
}
