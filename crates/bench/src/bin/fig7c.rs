//! Regenerates the paper's Figure 7c.
fn main() {
    println!("{}", nvmecr_bench::figures::fig7c());
}
