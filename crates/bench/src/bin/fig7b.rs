//! Regenerates the paper's Figure 7b.
fn main() {
    println!("{}", nvmecr_bench::figures::fig7b());
}
