//! Data-plane scaling bench: serial vs parallel rank driving, plus the
//! pipelined-window QD sweep.
//!
//! **Rank sweep** (`BENCH_dataplane.json`): sweeps 1→28 ranks over the
//! paper testbed, drives one real (bytes on functional devices)
//! checkpoint+verify round per point through the sharded NVMf data plane,
//! and reports the device-time makespan of that IO stream under the two
//! [`workloads::DriveMode`]s:
//!
//! * **serial** — ranks issue one at a time, so every command and every
//!   byte of every rank is serialized through a single outstanding queue.
//! * **parallel** — ranks issue concurrently; each namespace shard
//!   preserves its per-queue FIFO, shards on the same SSD share that
//!   SSD's channel array and command processor, and distinct SSDs run
//!   concurrently. The makespan is the busiest SSD's serialized work.
//!
//! **QD sweep** (`BENCH_pipeline.json`): drives 28 ranks at a 4 KiB block
//! size — so each checkpoint issues thousands of commands — at submission
//! window depths 1→32, and reports the write makespan of the measured
//! command stream. At QD=1 each 4 KiB command pays its full round-trip
//! latency before the next is posted (the lock-step exchange this PR
//! replaced); at depth the round trips overlap until the command
//! processor or the channel array becomes the bottleneck. The per-command
//! `fabric.submit_ns` histogram of each point is *measured* from the real
//! run.
//!
//! The IO volumes (ops and bytes per rank) are *measured* from the block
//! device counters after really driving the run; only the device service
//! time is modeled, using the calibrated [`SsdConfig`] geometry — the
//! same calibration every figure harness uses. (Wall-clock is not used:
//! this host may be a single pinned core, where thread-level speedup is
//! unobservable by construction.)
//!
//! `--smoke --qd N` runs a reduced QD sweep (`{1, N}` at 1 MiB/rank) for
//! CI; the ≥3× QD=32-vs-QD=1 self-validation still applies.

use std::collections::HashMap;
use std::fmt::Write as _;

use cluster::{JobRequest, Scheduler, Topology};
use fabric::{KernelCosts, NetConfig};
use microfs::block::{BlockDevice, IoCounters};
use nvmecr::runtime::{NvmeCrRuntime, StorageRack};
use nvmecr::RuntimeConfig;
use nvmecr_bench::stamp;
use ssd::SsdConfig;
use telemetry::Telemetry;
use workloads::CoMD;

const CKPTS: u32 = 2;
const BYTES_PER_RANK: u64 = 4 << 20;
const SWEEP: [u32; 7] = [1, 2, 4, 8, 14, 21, 28];

/// QD sweep settings: full subscription, 4 KiB commands so the window
/// depth — not payload striping — is what engages the device.
const QD_SWEEP: [usize; 5] = [1, 4, 8, 16, 32];
const QD_RANKS: u32 = 28;
const QD_BLOCK: u64 = 4 << 10;
const SMOKE_BYTES_PER_RANK: u64 = 1 << 20;

/// Per-rank IO measured off the data plane, tagged with the SSD that
/// serviced it.
struct RankIo {
    ssd: (u32, u32),
    counters: IoCounters,
}

/// Device service time in seconds for one rank's measured IO stream:
/// per-command controller overhead plus bytes over the channel array.
fn service_secs(cfg: &SsdConfig, c: &IoCounters) -> f64 {
    let cmd = cfg.cmd_overhead.as_secs();
    (c.writes + c.reads) as f64 * cmd
        + c.bytes_written as f64 / cfg.write_bw().as_bytes_per_sec()
        + c.bytes_read as f64 / cfg.read_bw().as_bytes_per_sec()
}

struct Point {
    ranks: u32,
    serial_secs: f64,
    parallel_secs: f64,
    shards: usize,
    bytes_copied: u64,
    lock_wait_ns: u64,
}

/// Really drive `ranks` ranks through one checkpoint+verify round at the
/// given block size and window depth, and measure the per-rank IO. The
/// returned snapshot covers exactly this run (`fabric.submit_ns` etc.).
fn run_point(
    ranks: u32,
    ssd_config: &SsdConfig,
    block_size: u64,
    queue_depth: usize,
    bytes_per_rank: u64,
    recorder_on: bool,
) -> Result<(Vec<RankIo>, telemetry::MetricsSnapshot), Box<dyn std::error::Error>> {
    let topo = Topology::paper_testbed();
    // Per-point registry: the copy/lock-wait/submit-latency numbers below
    // must cover exactly this point's traffic.
    let telemetry = Telemetry::new();
    telemetry.recorder().set_enabled(recorder_on);
    let rack = StorageRack::build_with_telemetry(&topo, ssd_config, telemetry.clone());
    let mut sched = Scheduler::new(topo.clone(), 8);
    // Spread the job over the full storage rack (up to one namespace per
    // SSD) so the shard map actually has independent shards to exploit —
    // the paper's process:SSD ratio is for capacity planning at scale, not
    // a cap on rack usage.
    let req = JobRequest {
        procs: ranks,
        procs_per_node: 28,
        storage_devices: ranks.min(8),
    };
    let alloc = sched.submit(&req)?;
    let mut config = RuntimeConfig {
        namespace_bytes: 1 << 30,
        telemetry: telemetry.clone(),
        block_size,
        ..RuntimeConfig::default()
    };
    config.fabric.queue_depth = queue_depth;
    let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config)?;
    let comd = CoMD::weak_scaling();

    for ckpt in 0..CKPTS {
        rt.for_each_rank_par(|rank, fs| {
            if ckpt == 0 {
                fs.mkdir("/comd", 0o755).ok();
            }
            fs.mkdir(&format!("/comd/ckpt_{ckpt:03}"), 0o755)?;
            let payload = comd.checkpoint_payload(rank, ckpt, bytes_per_rank as usize);
            let fd = fs.create(&CoMD::checkpoint_path(rank, ckpt), 0o644)?;
            for chunk in payload.chunks(1 << 20) {
                fs.write(fd, chunk)?;
            }
            fs.fsync(fd)?;
            fs.close(fd)?;
            Ok(())
        })?;
    }
    let last = CKPTS - 1;
    let ok = rt.map_ranks_par(|rank, fs| {
        let expect = comd.checkpoint_payload(rank, last, bytes_per_rank as usize);
        let fd = fs.open(
            &CoMD::checkpoint_path(rank, last),
            microfs::OpenFlags::RDONLY,
            0,
        )?;
        let mut buf = vec![0u8; expect.len()];
        let mut got = 0;
        while got < buf.len() {
            let n = fs.read(fd, &mut buf[got..])?;
            if n == 0 {
                break;
            }
            got += n;
        }
        fs.close(fd)?;
        Ok(buf == expect)
    })?;
    if !ok.iter().all(|&v| v) {
        return Err("payload verification failed".into());
    }

    // Measure what each rank actually pushed through its device, and which
    // SSD serviced it.
    let per_rank = rt.placement().per_rank.clone();
    let counters = rt.map_ranks_par(|_, fs| Ok(fs.device().counters()))?;
    let io: Vec<RankIo> = per_rank
        .iter()
        .zip(&counters)
        .map(|(p, &c)| {
            let g = alloc.storage[p.grant];
            RankIo {
                ssd: (g.node.0, g.ssd),
                counters: c,
            }
        })
        .collect();
    let snap = telemetry.snapshot();
    rt.finalize()?;
    Ok((io, snap))
}

/// Fold one rank-sweep point's measured IO into the serial/parallel
/// device-time makespans.
fn rank_point(ranks: u32, ssd_config: &SsdConfig) -> Result<Point, Box<dyn std::error::Error>> {
    let (io, snap) = run_point(
        ranks,
        ssd_config,
        RuntimeConfig::default().block_size,
        RuntimeConfig::default().fabric.queue_depth,
        BYTES_PER_RANK,
        true,
    )?;
    let serial_secs: f64 = io
        .iter()
        .map(|r| service_secs(ssd_config, &r.counters))
        .sum();
    let mut per_ssd: HashMap<(u32, u32), f64> = HashMap::new();
    for r in &io {
        *per_ssd.entry(r.ssd).or_default() += service_secs(ssd_config, &r.counters);
    }
    let parallel_secs = per_ssd.values().cloned().fold(0.0f64, f64::max);
    let bytes_copied = snap.counter("fabric.bytes_copied") + snap.counter("ssd.bytes_copied");
    let lock_wait_ns = snap.counter("ssd.lock_wait_ns");
    Ok(Point {
        ranks,
        serial_secs,
        parallel_secs,
        shards: per_ssd.len(),
        bytes_copied,
        lock_wait_ns,
    })
}

/// Round-trip latency of one write command of `bytes` at QD=1: polled
/// userspace submit, request + response messages over two hops, command
/// fetch/decode, and the media transfer.
///
/// The transfer term is hw-block-granular: the controller stripes a
/// command one hardware block per channel, so its observed latency is the
/// largest per-channel share — one block's transfer time for any command
/// up to `channels × hw_block`. Striping buys a single command bandwidth,
/// not latency; that flat ~26 µs floor is exactly what a deep submission
/// window overlaps. (`write_rate_for` models the divisible aggregate rate
/// and is the right tool for makespans, not per-command latency.)
fn cmd_latency_secs(cfg: &SsdConfig, net: &NetConfig, kern: &KernelCosts, bytes: u64) -> f64 {
    let blocks = bytes.div_ceil(cfg.hw_block).max(1);
    let lanes = blocks.min(u64::from(cfg.channels));
    let lane_bytes = blocks.div_ceil(lanes) * cfg.hw_block;
    kern.spdk_submit.as_secs()
        + 2.0 * (net.per_message_cpu.as_secs() + net.latency(2).as_secs())
        + cfg.cmd_overhead.as_secs()
        + lane_bytes as f64 / cfg.channel_write_bw.as_bytes_per_sec()
}

/// Makespan of one SSD's measured write stream at window depth `qd`: the
/// slowest of three serialization points.
///
/// * **latency** — each rank's commands complete `qd` per round trip, so
///   a rank is bound by `writes × L1 / qd`; ranks overlap, so the SSD
///   sees the slowest rank. This is the term the submission window
///   attacks, and the only QD=1 bottleneck for small commands.
/// * **command processor** — the controller fetches/decodes commands one
///   at a time regardless of queue depth.
/// * **media drain** — writes land in the power-loss-protected device RAM
///   at ingest speed (§III-D) and drain to flash concurrently; only the
///   backlog beyond the RAM budget waits on the channel array. In-flight
///   commands (capped at the hardware queue count) stripe the drain over
///   the channels; a 4 KiB command engages one channel, so depth is what
///   fills the array on streams that do outrun the buffer.
fn write_makespan_secs(
    cfg: &SsdConfig,
    net: &NetConfig,
    kern: &KernelCosts,
    ranks: &[&IoCounters],
    qd: usize,
) -> f64 {
    let writes: u64 = ranks.iter().map(|c| c.writes).sum();
    let bytes: u64 = ranks.iter().map(|c| c.bytes_written).sum();
    if writes == 0 {
        return 0.0;
    }
    let avg_cmd = (bytes / writes).max(1);
    let inflight = (ranks.len() * qd).min(cfg.hw_queues as usize);
    let conc_channels = (inflight as u32 * cfg.channels_for(avg_cmd)).min(cfg.channels);
    let bw = cfg.channel_write_bw.as_bytes_per_sec() * f64::from(conc_channels);
    let bw_term = bytes.saturating_sub(cfg.device_ram) as f64 / bw;
    let cmd_term = writes as f64 * cfg.cmd_overhead.as_secs();
    let l1 = cmd_latency_secs(cfg, net, kern, avg_cmd);
    let lat_term = ranks
        .iter()
        .map(|c| c.writes as f64 * l1 / qd as f64)
        .fold(0.0f64, f64::max);
    bw_term.max(cmd_term).max(lat_term)
}

struct QdPoint {
    qd: usize,
    write_makespan_secs: f64,
    write_gib_s: f64,
    write_cmds: u64,
    submit_count: u64,
    submit_p50_ns: u64,
    submit_p99_ns: u64,
}

/// Drive the 28-rank testbed at window depth `qd` with 4 KiB commands and
/// fold the busiest SSD's measured write stream into the pipeline
/// makespan.
fn qd_point(
    qd: usize,
    ssd_config: &SsdConfig,
    bytes_per_rank: u64,
) -> Result<QdPoint, Box<dyn std::error::Error>> {
    let (io, snap) = run_point(QD_RANKS, ssd_config, QD_BLOCK, qd, bytes_per_rank, true)?;
    let net = NetConfig::default();
    let kern = KernelCosts::default();
    let mut per_ssd: HashMap<(u32, u32), Vec<&IoCounters>> = HashMap::new();
    for r in &io {
        per_ssd.entry(r.ssd).or_default().push(&r.counters);
    }
    let write_makespan = per_ssd
        .values()
        .map(|ranks| write_makespan_secs(ssd_config, &net, &kern, ranks, qd))
        .fold(0.0f64, f64::max);
    let total_bytes: u64 = io.iter().map(|r| r.counters.bytes_written).sum();
    let write_cmds: u64 = io.iter().map(|r| r.counters.writes).sum();
    let submits = snap
        .histogram("fabric.submit_ns")
        .ok_or("no fabric.submit_ns histogram in run telemetry")?;
    Ok(QdPoint {
        qd,
        write_makespan_secs: write_makespan,
        write_gib_s: total_bytes as f64 / write_makespan / (1u64 << 30) as f64,
        write_cmds,
        submit_count: submits.count,
        submit_p50_ns: submits.percentile(50.0),
        submit_p99_ns: submits.percentile(99.0),
    })
}

/// Real time the fabric spent in command submission paths over one run —
/// the sum of the measured `fabric.submit_ns` histogram. The flight
/// recorder's `record()` calls sit on exactly these paths, so the
/// enabled-vs-disabled delta of this sum is the recorder's dataplane
/// overhead.
fn submit_ns_sum(
    qd: usize,
    ssd_config: &SsdConfig,
    bytes_per_rank: u64,
    recorder_on: bool,
) -> Result<u64, Box<dyn std::error::Error>> {
    let (_, snap) = run_point(
        QD_RANKS,
        ssd_config,
        QD_BLOCK,
        qd,
        bytes_per_rank,
        recorder_on,
    )?;
    Ok(snap
        .histogram("fabric.submit_ns")
        .ok_or("no fabric.submit_ns histogram in run telemetry")?
        .sum)
}

/// Disarmed-path recorder overhead at window depth `qd`: interleaved
/// min-of-7 submit-time sums with the recorder enabled vs disabled
/// (min, not mean, to shed scheduler noise — on a single pinned core a
/// stray timer tick inflates one arm by several percent, and the min of
/// enough trials converges both arms to their true floor). A discarded
/// warmup pair keeps allocator and page-cache state out of the first
/// measured trial. Negative deltas clamp to zero — the recorder cannot
/// make submission faster.
fn recorder_overhead_pct(
    qd: usize,
    ssd_config: &SsdConfig,
    bytes_per_rank: u64,
) -> Result<f64, Box<dyn std::error::Error>> {
    submit_ns_sum(qd, ssd_config, bytes_per_rank, true)?;
    submit_ns_sum(qd, ssd_config, bytes_per_rank, false)?;
    let mut on = u64::MAX;
    let mut off = u64::MAX;
    for _ in 0..7 {
        on = on.min(submit_ns_sum(qd, ssd_config, bytes_per_rank, true)?);
        off = off.min(submit_ns_sum(qd, ssd_config, bytes_per_rank, false)?);
    }
    if off == 0 {
        return Err("recorder-off run recorded zero submit time".into());
    }
    Ok((on.saturating_sub(off) as f64 / off as f64) * 100.0)
}

fn write_dataplane_json(points: &[Point]) -> Result<(), Box<dyn std::error::Error>> {
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"dataplane\",\n");
    json.push_str(&stamp::meta_line(&stamp::Fingerprint {
        queue_depth: RuntimeConfig::default().fabric.queue_depth,
        ranks: SWEEP[SWEEP.len() - 1],
        replication_factor: 1,
        delta_chain_max: 0,
    }));
    json.push_str(
        "  \"unit\": \"seconds (device-time makespan, calibrated P4800X model over measured IO)\",\n",
    );
    let _ = writeln!(
        json,
        "  \"config\": {{\"ckpts\": {CKPTS}, \"bytes_per_rank\": {BYTES_PER_RANK}}},"
    );
    json.push_str("  \"series\": [\n");
    for (label, pick) in [
        ("serial", (|p: &Point| p.serial_secs) as fn(&Point) -> f64),
        ("parallel", |p: &Point| p.parallel_secs),
    ] {
        let _ = write!(json, "    {{\"label\": \"{label}\", \"points\": [");
        for (i, p) in points.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(json, "{sep}[{}, {:.6}]", p.ranks, pick(p));
        }
        let end = if label == "serial" { "]}," } else { "]}" };
        let _ = writeln!(json, "{end}");
    }
    json.push_str("  ],\n  \"speedup\": [");
    for (i, p) in points.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(
            json,
            "{sep}[{}, {:.3}]",
            p.ranks,
            p.serial_secs / p.parallel_secs
        );
    }
    json.push_str("],\n  \"measured\": [");
    for (i, p) in points.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(
            json,
            "{sep}{{\"ranks\": {}, \"shards\": {}, \"bytes_copied\": {}, \"lock_wait_ns\": {}}}",
            p.ranks, p.shards, p.bytes_copied, p.lock_wait_ns
        );
    }
    json.push_str("]\n}\n");
    std::fs::write("BENCH_dataplane.json", &json)?;
    println!("wrote BENCH_dataplane.json");
    Ok(())
}

fn write_pipeline_json(
    points: &[QdPoint],
    bytes_per_rank: u64,
    recorder_overhead_pct: f64,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"pipeline\",\n");
    json.push_str(&stamp::meta_line(&stamp::Fingerprint {
        queue_depth: points.last().map_or(1, |p| p.qd),
        ranks: QD_RANKS,
        replication_factor: 1,
        delta_chain_max: 0,
    }));
    json.push_str(
        "  \"unit\": \"GiB/s (write throughput over modeled makespan of measured IO per window depth)\",\n",
    );
    let _ = writeln!(
        json,
        "  \"config\": {{\"ranks\": {QD_RANKS}, \"block_size\": {QD_BLOCK}, \
         \"bytes_per_rank\": {bytes_per_rank}, \"ckpts\": {CKPTS}}},"
    );
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 == points.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"qd\": {}, \"write_makespan_ms\": {:.3}, \"write_gib_s\": {:.3}, \
             \"write_cmds\": {}, \"submit_ns\": {{\"count\": {}, \"p50\": {}, \"p99\": {}}}}}{sep}",
            p.qd,
            p.write_makespan_secs * 1e3,
            p.write_gib_s,
            p.write_cmds,
            p.submit_count,
            p.submit_p50_ns,
            p.submit_p99_ns,
        );
    }
    let first = points.first().expect("sweep is non-empty");
    let last = points.last().expect("sweep is non-empty");
    let _ = writeln!(
        json,
        "  ],\n  \"speedup_deepest_vs_qd1\": {:.3},\n  \"recorder_overhead_pct\": {:.3}\n}}",
        last.write_gib_s / first.write_gib_s,
        recorder_overhead_pct
    );
    std::fs::write("BENCH_pipeline.json", &json)?;
    println!("wrote BENCH_pipeline.json");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut smoke = false;
    let mut qd_arg = 32usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--qd" => {
                qd_arg = args
                    .next()
                    .ok_or("--qd needs a value")?
                    .parse()
                    .map_err(|e| format!("--qd: {e}"))?;
                if qd_arg == 0 {
                    return Err("--qd must be >= 1".into());
                }
            }
            other => return Err(format!("unknown argument {other}").into()),
        }
    }

    let ssd_config = SsdConfig {
        capacity: 16 << 30,
        ..SsdConfig::default()
    };

    if !smoke {
        let mut points = Vec::new();
        for &ranks in &SWEEP {
            let p = rank_point(ranks, &ssd_config)?;
            println!(
                "ranks={:2}  shards={}  serial={:.4}s  parallel={:.4}s  speedup={:.2}x  \
                 copied={}B  lock_wait={}ns",
                p.ranks,
                p.shards,
                p.serial_secs,
                p.parallel_secs,
                p.serial_secs / p.parallel_secs,
                p.bytes_copied,
                p.lock_wait_ns,
            );
            points.push(p);
        }
        write_dataplane_json(&points)?;
        let last = points.last().expect("sweep is non-empty");
        let speedup = last.serial_secs / last.parallel_secs;
        if speedup < 2.0 {
            return Err(format!("28-rank parallel speedup {speedup:.2}x below 2x").into());
        }
    }

    // QD sweep: full mode covers the ladder; smoke covers {1, --qd} at a
    // reduced per-rank volume so CI stays fast.
    let (qds, bytes_per_rank): (Vec<usize>, u64) = if smoke {
        let mut qds = vec![1];
        if qd_arg > 1 {
            qds.push(qd_arg);
        }
        (qds, SMOKE_BYTES_PER_RANK)
    } else {
        (QD_SWEEP.to_vec(), BYTES_PER_RANK)
    };
    let mut qd_points = Vec::new();
    for &qd in &qds {
        let p = qd_point(qd, &ssd_config, bytes_per_rank)?;
        println!(
            "qd={:2}  write_makespan={:.3}ms  write={:.3}GiB/s  cmds={}  \
             submit_ns[n={} p50={} p99={}]",
            p.qd,
            p.write_makespan_secs * 1e3,
            p.write_gib_s,
            p.write_cmds,
            p.submit_count,
            p.submit_p50_ns,
            p.submit_p99_ns,
        );
        qd_points.push(p);
    }

    // Disarmed-path flight-recorder overhead at the deepest window depth:
    // the always-on rings must cost <= 2% of real submit time.
    let deepest = *qds.last().expect("sweep is non-empty");
    let overhead_pct = recorder_overhead_pct(deepest, &ssd_config, bytes_per_rank)?;
    println!("recorder overhead at qd={deepest}: {overhead_pct:.3}% of submit time");
    write_pipeline_json(&qd_points, bytes_per_rank, overhead_pct)?;
    if overhead_pct > 2.0 {
        return Err(format!(
            "flight recorder costs {overhead_pct:.3}% of submit time at qd={deepest}, above 2%"
        )
        .into());
    }

    let first = qd_points.first().expect("sweep is non-empty");
    let last = qd_points.last().expect("sweep is non-empty");
    let speedup = last.write_gib_s / first.write_gib_s;
    if last.qd >= 32 && speedup < 3.0 {
        return Err(format!(
            "QD={} write throughput {speedup:.2}x over QD=1, below 3x",
            last.qd
        )
        .into());
    }
    for p in &qd_points {
        if p.submit_count == 0 {
            return Err(format!("qd={} recorded no fabric.submit_ns samples", p.qd).into());
        }
    }
    Ok(())
}
