//! Data-plane scaling bench: serial vs parallel rank driving.
//!
//! Sweeps 1→28 ranks over the paper testbed, drives one real (bytes on
//! functional devices) checkpoint+verify round per point through the
//! sharded NVMf data plane, and reports the device-time makespan of that
//! IO stream under the two [`workloads::DriveMode`]s:
//!
//! * **serial** — ranks issue one at a time, so every command and every
//!   byte of every rank is serialized through a single outstanding queue.
//! * **parallel** — ranks issue concurrently; each namespace shard
//!   preserves its per-queue FIFO, shards on the same SSD share that
//!   SSD's channel array and command processor, and distinct SSDs run
//!   concurrently. The makespan is the busiest SSD's serialized work.
//!
//! The IO volumes (ops and bytes per rank) are *measured* from the block
//! device counters after really driving the run; only the device service
//! time is modeled, using the calibrated [`SsdConfig`] geometry — the
//! same calibration every figure harness uses. (Wall-clock is not used:
//! this host may be a single pinned core, where thread-level speedup is
//! unobservable by construction.)
//!
//! Emits `BENCH_dataplane.json` in the working directory.

use std::collections::HashMap;
use std::fmt::Write as _;

use cluster::{JobRequest, Scheduler, Topology};
use microfs::block::{BlockDevice, IoCounters};
use nvmecr::runtime::{NvmeCrRuntime, StorageRack};
use nvmecr::RuntimeConfig;
use ssd::SsdConfig;
use telemetry::Telemetry;
use workloads::CoMD;

const CKPTS: u32 = 2;
const BYTES_PER_RANK: u64 = 4 << 20;
const SWEEP: [u32; 7] = [1, 2, 4, 8, 14, 21, 28];

/// Per-rank IO measured off the data plane, tagged with the SSD that
/// serviced it.
struct RankIo {
    ssd: (u32, u32),
    counters: IoCounters,
}

/// Device service time in seconds for one rank's measured IO stream:
/// per-command controller overhead plus bytes over the channel array.
fn service_secs(cfg: &SsdConfig, c: &IoCounters) -> f64 {
    let cmd = cfg.cmd_overhead.as_secs();
    (c.writes + c.reads) as f64 * cmd
        + c.bytes_written as f64 / cfg.write_bw().as_bytes_per_sec()
        + c.bytes_read as f64 / cfg.read_bw().as_bytes_per_sec()
}

struct Point {
    ranks: u32,
    serial_secs: f64,
    parallel_secs: f64,
    shards: usize,
    bytes_copied: u64,
    lock_wait_ns: u64,
}

/// Really drive `ranks` ranks through one checkpoint+verify round and
/// measure the per-rank IO, then fold it into the two makespans.
fn run_point(ranks: u32, ssd_config: &SsdConfig) -> Result<Point, Box<dyn std::error::Error>> {
    let topo = Topology::paper_testbed();
    // Per-point registry: the copy/lock-wait numbers below must cover
    // exactly this point's traffic.
    let telemetry = Telemetry::new();
    let rack = StorageRack::build_with_telemetry(&topo, ssd_config, telemetry.clone());
    let mut sched = Scheduler::new(topo.clone(), 8);
    // Spread the job over the full storage rack (up to one namespace per
    // SSD) so the shard map actually has independent shards to exploit —
    // the paper's process:SSD ratio is for capacity planning at scale, not
    // a cap on rack usage.
    let req = JobRequest {
        procs: ranks,
        procs_per_node: 28,
        storage_devices: ranks.min(8),
    };
    let alloc = sched.submit(&req)?;
    let config = RuntimeConfig {
        namespace_bytes: 1 << 30,
        telemetry: telemetry.clone(),
        ..RuntimeConfig::default()
    };
    let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config)?;
    let comd = CoMD::weak_scaling();

    for ckpt in 0..CKPTS {
        rt.for_each_rank_par(|rank, fs| {
            if ckpt == 0 {
                fs.mkdir("/comd", 0o755).ok();
            }
            fs.mkdir(&format!("/comd/ckpt_{ckpt:03}"), 0o755)?;
            let payload = comd.checkpoint_payload(rank, ckpt, BYTES_PER_RANK as usize);
            let fd = fs.create(&CoMD::checkpoint_path(rank, ckpt), 0o644)?;
            for chunk in payload.chunks(1 << 20) {
                fs.write(fd, chunk)?;
            }
            fs.fsync(fd)?;
            fs.close(fd)?;
            Ok(())
        })?;
    }
    let last = CKPTS - 1;
    let ok = rt.map_ranks_par(|rank, fs| {
        let expect = comd.checkpoint_payload(rank, last, BYTES_PER_RANK as usize);
        let fd = fs.open(
            &CoMD::checkpoint_path(rank, last),
            microfs::OpenFlags::RDONLY,
            0,
        )?;
        let mut buf = vec![0u8; expect.len()];
        let mut got = 0;
        while got < buf.len() {
            let n = fs.read(fd, &mut buf[got..])?;
            if n == 0 {
                break;
            }
            got += n;
        }
        fs.close(fd)?;
        Ok(buf == expect)
    })?;
    if !ok.iter().all(|&v| v) {
        return Err("payload verification failed".into());
    }

    // Measure what each rank actually pushed through its device, and which
    // SSD serviced it.
    let per_rank = rt.placement().per_rank.clone();
    let counters = rt.map_ranks_par(|_, fs| Ok(fs.device().counters()))?;
    let io: Vec<RankIo> = per_rank
        .iter()
        .zip(&counters)
        .map(|(p, &c)| {
            let g = alloc.storage[p.grant];
            RankIo {
                ssd: (g.node.0, g.ssd),
                counters: c,
            }
        })
        .collect();

    let serial_secs: f64 = io
        .iter()
        .map(|r| service_secs(ssd_config, &r.counters))
        .sum();
    let mut per_ssd: HashMap<(u32, u32), f64> = HashMap::new();
    for r in &io {
        *per_ssd.entry(r.ssd).or_default() += service_secs(ssd_config, &r.counters);
    }
    let parallel_secs = per_ssd.values().cloned().fold(0.0f64, f64::max);

    let snap = telemetry.snapshot();
    let bytes_copied = snap.counter("fabric.bytes_copied") + snap.counter("ssd.bytes_copied");
    let lock_wait_ns = snap.counter("ssd.lock_wait_ns");
    let shards = per_ssd.len();
    rt.finalize()?;
    Ok(Point {
        ranks,
        serial_secs,
        parallel_secs,
        shards,
        bytes_copied,
        lock_wait_ns,
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ssd_config = SsdConfig {
        capacity: 16 << 30,
        ..SsdConfig::default()
    };
    let mut points = Vec::new();
    for &ranks in &SWEEP {
        let p = run_point(ranks, &ssd_config)?;
        println!(
            "ranks={:2}  shards={}  serial={:.4}s  parallel={:.4}s  speedup={:.2}x  \
             copied={}B  lock_wait={}ns",
            p.ranks,
            p.shards,
            p.serial_secs,
            p.parallel_secs,
            p.serial_secs / p.parallel_secs,
            p.bytes_copied,
            p.lock_wait_ns,
        );
        points.push(p);
    }

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"dataplane\",\n");
    json.push_str("  \"unit\": \"seconds (device-time makespan, calibrated P4800X model over measured IO)\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"ckpts\": {CKPTS}, \"bytes_per_rank\": {BYTES_PER_RANK}}},"
    );
    json.push_str("  \"series\": [\n");
    for (label, pick) in [
        ("serial", (|p: &Point| p.serial_secs) as fn(&Point) -> f64),
        ("parallel", |p: &Point| p.parallel_secs),
    ] {
        let _ = write!(json, "    {{\"label\": \"{label}\", \"points\": [");
        for (i, p) in points.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(json, "{sep}[{}, {:.6}]", p.ranks, pick(p));
        }
        let end = if label == "serial" { "]}," } else { "]}" };
        let _ = writeln!(json, "{end}");
    }
    json.push_str("  ],\n  \"speedup\": [");
    for (i, p) in points.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(
            json,
            "{sep}[{}, {:.3}]",
            p.ranks,
            p.serial_secs / p.parallel_secs
        );
    }
    json.push_str("],\n  \"measured\": [");
    for (i, p) in points.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(
            json,
            "{sep}{{\"ranks\": {}, \"shards\": {}, \"bytes_copied\": {}, \"lock_wait_ns\": {}}}",
            p.ranks, p.shards, p.bytes_copied, p.lock_wait_ns
        );
    }
    json.push_str("]\n}\n");
    std::fs::write("BENCH_dataplane.json", &json)?;
    println!("wrote BENCH_dataplane.json");

    let last = points.last().expect("sweep is non-empty");
    let speedup = last.serial_secs / last.parallel_secs;
    if speedup < 2.0 {
        return Err(format!("28-rank parallel speedup {speedup:.2}x below 2x").into());
    }
    Ok(())
}
