//! Data-plane scaling bench: serial vs parallel rank driving, plus the
//! pipelined-window QD sweep.
//!
//! **Rank sweep** (`BENCH_dataplane.json`): sweeps 1→28 ranks over the
//! paper testbed, drives one real (bytes on functional devices)
//! checkpoint+verify round per point through the sharded NVMf data plane,
//! and reports the device-time makespan of that IO stream under the two
//! [`workloads::DriveMode`]s:
//!
//! * **serial** — ranks issue one at a time, so every command and every
//!   byte of every rank is serialized through a single outstanding queue.
//! * **parallel** — ranks issue concurrently; each namespace shard
//!   preserves its per-queue FIFO, shards on the same SSD share that
//!   SSD's channel array and command processor, and distinct SSDs run
//!   concurrently. The makespan is the busiest SSD's serialized work.
//!
//! **QD sweep** (`BENCH_pipeline.json`): drives 28 ranks at a 4 KiB block
//! size — so each checkpoint issues thousands of commands — at submission
//! window depths 1→32, and reports the write makespan of the measured
//! command stream. At QD=1 each 4 KiB command pays its full round-trip
//! latency before the next is posted (the lock-step exchange this PR
//! replaced); at depth the round trips overlap until the command
//! processor or the channel array becomes the bottleneck. The per-command
//! `fabric.submit_ns` histogram of each point is *measured* from the real
//! run.
//!
//! The IO volumes (ops and bytes per rank) are *measured* from the block
//! device counters after really driving the run; only the device service
//! time is modeled, using the calibrated [`SsdConfig`] geometry — the
//! same calibration every figure harness uses. (Wall-clock is not used:
//! this host may be a single pinned core, where thread-level speedup is
//! unobservable by construction.)
//!
//! **Reactor mode** (`--mode reactor`): the same 28-rank QD=32 point
//! driven through the shard-per-core [`nvmecr::ReactorPool`] instead of a
//! thread per rank (its modeled throughput must stay within 5% of the
//! rayon drive — the reactor refactor buys scale, not a different data
//! plane), plus a simkit [`ShardModel`] sweep of 1k–10k *virtual* ranks
//! multiplexed on the paper testbed's 28 cores. Gates: flat per-rank
//! makespan (≤1.2× the 28-rank per-rank cost) and sub-linear memory
//! (reactor bookkeeping and process RSS both grow slower than ranks).
//!
//! `--smoke --qd N` runs a reduced QD sweep (`{1, N}` at 1 MiB/rank) for
//! CI; the ≥3× QD=32-vs-QD=1 self-validation still applies. Reactor-mode
//! smoke sweeps `{28, --ranks}` virtual ranks.

use std::collections::HashMap;
use std::fmt::Write as _;

use cluster::{JobRequest, Scheduler, Topology};
use fabric::{KernelCosts, NetConfig};
use microfs::block::{BlockDevice, IoCounters};
use microfs::MicroFs;
use nvmecr::runtime::{NvmeCrRuntime, RuntimeError, StorageRack};
use nvmecr::{
    MachineStep, NvmfBlockDevice, RankMachine, ReactorConfig, ReactorMode, ReactorPool,
    RuntimeConfig,
};
use nvmecr_bench::stamp;
use simkit::ShardModel;
use ssd::SsdConfig;
use telemetry::Telemetry;
use workloads::CoMD;

const CKPTS: u32 = 2;
const BYTES_PER_RANK: u64 = 4 << 20;
const SWEEP: [u32; 7] = [1, 2, 4, 8, 14, 21, 28];

/// QD sweep settings: full subscription, 4 KiB commands so the window
/// depth — not payload striping — is what engages the device.
const QD_SWEEP: [usize; 5] = [1, 4, 8, 16, 32];
const QD_RANKS: u32 = 28;
const QD_BLOCK: u64 = 4 << 10;
const SMOKE_BYTES_PER_RANK: u64 = 1 << 20;

/// Virtual-rank counts the reactor sweep covers in a full run; the last
/// entry is raised to `--ranks` when larger.
const REACTOR_SWEEP: [usize; 4] = [28, 1024, 4096, 10_000];

/// How `run_point` pushes ranks through the data plane.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Drive {
    /// One rayon worker per rank (the PR 2 thread-per-rank path).
    Rayon,
    /// All ranks multiplexed onto the shard-per-core reactor pool.
    Reactor,
}

/// Per-rank IO measured off the data plane, tagged with the SSD that
/// serviced it.
struct RankIo {
    ssd: (u32, u32),
    counters: IoCounters,
}

/// One rank's checkpoint as a reactor state machine: create the file,
/// then write it one 1 MiB hugeblock-batch per step — the same chunking
/// the rayon drive uses, so both drives issue identical IO streams.
struct ChunkWriter {
    comd: CoMD,
    ckpt: u32,
    bytes_per_rank: u64,
    state: WriterState,
}

enum WriterState {
    Start,
    Writing {
        fd: u32,
        payload: Vec<u8>,
        off: usize,
    },
}

impl RankMachine<MicroFs<NvmfBlockDevice>> for ChunkWriter {
    type Out = ();

    fn step(
        &mut self,
        rank: u32,
        fs: &mut MicroFs<NvmfBlockDevice>,
    ) -> Result<MachineStep<()>, RuntimeError> {
        match &mut self.state {
            WriterState::Start => {
                if self.ckpt == 0 {
                    fs.mkdir("/comd", 0o755).ok();
                }
                fs.mkdir(&format!("/comd/ckpt_{:03}", self.ckpt), 0o755)?;
                let payload =
                    self.comd
                        .checkpoint_payload(rank, self.ckpt, self.bytes_per_rank as usize);
                let fd = fs.create(&CoMD::checkpoint_path(rank, self.ckpt), 0o644)?;
                self.state = WriterState::Writing {
                    fd,
                    payload,
                    off: 0,
                };
                Ok(MachineStep::Yield)
            }
            WriterState::Writing { fd, payload, off } => {
                let end = (*off + (1 << 20)).min(payload.len());
                fs.write(*fd, &payload[*off..end])?;
                *off = end;
                if *off < payload.len() {
                    return Ok(MachineStep::Yield);
                }
                fs.fsync(*fd)?;
                fs.close(*fd)?;
                Ok(MachineStep::Done(()))
            }
        }
    }

    fn next_cost(&self) -> u64 {
        1 << 20
    }
}

/// Device service time in seconds for one rank's measured IO stream:
/// per-command controller overhead plus bytes over the channel array.
fn service_secs(cfg: &SsdConfig, c: &IoCounters) -> f64 {
    let cmd = cfg.cmd_overhead.as_secs();
    (c.writes + c.reads) as f64 * cmd
        + c.bytes_written as f64 / cfg.write_bw().as_bytes_per_sec()
        + c.bytes_read as f64 / cfg.read_bw().as_bytes_per_sec()
}

struct Point {
    ranks: u32,
    serial_secs: f64,
    parallel_secs: f64,
    shards: usize,
    bytes_copied: u64,
    lock_wait_ns: u64,
}

/// Read one rank's last checkpoint back and compare it byte-for-byte.
fn verify_rank(
    comd: &CoMD,
    fs: &mut MicroFs<NvmfBlockDevice>,
    rank: u32,
    ckpt: u32,
    bytes_per_rank: u64,
) -> Result<bool, RuntimeError> {
    let expect = comd.checkpoint_payload(rank, ckpt, bytes_per_rank as usize);
    let fd = fs.open(
        &CoMD::checkpoint_path(rank, ckpt),
        microfs::OpenFlags::RDONLY,
        0,
    )?;
    let mut buf = vec![0u8; expect.len()];
    let mut got = 0;
    while got < buf.len() {
        let n = fs.read(fd, &mut buf[got..])?;
        if n == 0 {
            break;
        }
        got += n;
    }
    fs.close(fd)?;
    Ok(buf == expect)
}

/// Really drive `ranks` ranks through one checkpoint+verify round at the
/// given block size and window depth, and measure the per-rank IO. The
/// returned snapshot covers exactly this run (`fabric.submit_ns` etc.).
fn run_point(
    ranks: u32,
    ssd_config: &SsdConfig,
    block_size: u64,
    queue_depth: usize,
    bytes_per_rank: u64,
    recorder_on: bool,
    drive: Drive,
) -> Result<(Vec<RankIo>, telemetry::MetricsSnapshot), Box<dyn std::error::Error>> {
    let topo = Topology::paper_testbed();
    // Per-point registry: the copy/lock-wait/submit-latency numbers below
    // must cover exactly this point's traffic.
    let telemetry = Telemetry::new();
    telemetry.recorder().set_enabled(recorder_on);
    let rack = StorageRack::build_with_telemetry(&topo, ssd_config, telemetry.clone());
    let mut sched = Scheduler::new(topo.clone(), 8);
    // Spread the job over the full storage rack (up to one namespace per
    // SSD) so the shard map actually has independent shards to exploit —
    // the paper's process:SSD ratio is for capacity planning at scale, not
    // a cap on rack usage.
    let req = JobRequest {
        procs: ranks,
        procs_per_node: 28,
        storage_devices: ranks.min(8),
    };
    let alloc = sched.submit(&req)?;
    let mut config = RuntimeConfig {
        namespace_bytes: 1 << 30,
        telemetry: telemetry.clone(),
        block_size,
        ..RuntimeConfig::default()
    };
    config.fabric.queue_depth = queue_depth;
    let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config)?;
    let comd = CoMD::weak_scaling();

    let reactor_cfg = ReactorConfig {
        mode: ReactorMode::Threaded,
        ..ReactorConfig::default()
    };
    for ckpt in 0..CKPTS {
        match drive {
            Drive::Rayon => rt.for_each_rank_par(|rank, fs| {
                if ckpt == 0 {
                    fs.mkdir("/comd", 0o755).ok();
                }
                fs.mkdir(&format!("/comd/ckpt_{ckpt:03}"), 0o755)?;
                let payload = comd.checkpoint_payload(rank, ckpt, bytes_per_rank as usize);
                let fd = fs.create(&CoMD::checkpoint_path(rank, ckpt), 0o644)?;
                for chunk in payload.chunks(1 << 20) {
                    fs.write(fd, chunk)?;
                }
                fs.fsync(fd)?;
                fs.close(fd)?;
                Ok(())
            })?,
            Drive::Reactor => {
                rt.drive_reactor(
                    &reactor_cfg,
                    |_| 0,
                    |_| {
                        Box::new(ChunkWriter {
                            comd: comd.clone(),
                            ckpt,
                            bytes_per_rank,
                            state: WriterState::Start,
                        })
                    },
                )?;
            }
        }
    }
    let last = CKPTS - 1;
    let ok = match drive {
        Drive::Rayon => {
            rt.map_ranks_par(|rank, fs| verify_rank(&comd, fs, rank, last, bytes_per_rank))?
        }
        Drive::Reactor => {
            let comd = comd.clone();
            rt.map_ranks_reactor(&reactor_cfg, move |rank, fs| {
                verify_rank(&comd, fs, rank, last, bytes_per_rank)
            })?
        }
    };
    if !ok.iter().all(|&v| v) {
        return Err("payload verification failed".into());
    }

    // Measure what each rank actually pushed through its device, and which
    // SSD serviced it.
    let per_rank = rt.placement().per_rank.clone();
    let counters = rt.map_ranks_par(|_, fs| Ok(fs.device().counters()))?;
    let io: Vec<RankIo> = per_rank
        .iter()
        .zip(&counters)
        .map(|(p, &c)| {
            let g = alloc.storage[p.grant];
            RankIo {
                ssd: (g.node.0, g.ssd),
                counters: c,
            }
        })
        .collect();
    let snap = telemetry.snapshot();
    rt.finalize()?;
    Ok((io, snap))
}

/// Fold one rank-sweep point's measured IO into the serial/parallel
/// device-time makespans.
fn rank_point(ranks: u32, ssd_config: &SsdConfig) -> Result<Point, Box<dyn std::error::Error>> {
    let (io, snap) = run_point(
        ranks,
        ssd_config,
        RuntimeConfig::default().block_size,
        RuntimeConfig::default().fabric.queue_depth,
        BYTES_PER_RANK,
        true,
        Drive::Rayon,
    )?;
    let serial_secs: f64 = io
        .iter()
        .map(|r| service_secs(ssd_config, &r.counters))
        .sum();
    let mut per_ssd: HashMap<(u32, u32), f64> = HashMap::new();
    for r in &io {
        *per_ssd.entry(r.ssd).or_default() += service_secs(ssd_config, &r.counters);
    }
    let parallel_secs = per_ssd.values().cloned().fold(0.0f64, f64::max);
    let bytes_copied = snap.counter("fabric.bytes_copied") + snap.counter("ssd.bytes_copied");
    let lock_wait_ns = snap.counter("ssd.lock_wait_ns");
    Ok(Point {
        ranks,
        serial_secs,
        parallel_secs,
        shards: per_ssd.len(),
        bytes_copied,
        lock_wait_ns,
    })
}

/// Round-trip latency of one write command of `bytes` at QD=1: polled
/// userspace submit, request + response messages over two hops, command
/// fetch/decode, and the media transfer.
///
/// The transfer term is hw-block-granular: the controller stripes a
/// command one hardware block per channel, so its observed latency is the
/// largest per-channel share — one block's transfer time for any command
/// up to `channels × hw_block`. Striping buys a single command bandwidth,
/// not latency; that flat ~26 µs floor is exactly what a deep submission
/// window overlaps. (`write_rate_for` models the divisible aggregate rate
/// and is the right tool for makespans, not per-command latency.)
fn cmd_latency_secs(cfg: &SsdConfig, net: &NetConfig, kern: &KernelCosts, bytes: u64) -> f64 {
    let blocks = bytes.div_ceil(cfg.hw_block).max(1);
    let lanes = blocks.min(u64::from(cfg.channels));
    let lane_bytes = blocks.div_ceil(lanes) * cfg.hw_block;
    kern.spdk_submit.as_secs()
        + 2.0 * (net.per_message_cpu.as_secs() + net.latency(2).as_secs())
        + cfg.cmd_overhead.as_secs()
        + lane_bytes as f64 / cfg.channel_write_bw.as_bytes_per_sec()
}

/// Makespan of one SSD's measured write stream at window depth `qd`: the
/// slowest of three serialization points.
///
/// * **latency** — each rank's commands complete `qd` per round trip, so
///   a rank is bound by `writes × L1 / qd`; ranks overlap, so the SSD
///   sees the slowest rank. This is the term the submission window
///   attacks, and the only QD=1 bottleneck for small commands.
/// * **command processor** — the controller fetches/decodes commands one
///   at a time regardless of queue depth.
/// * **media drain** — writes land in the power-loss-protected device RAM
///   at ingest speed (§III-D) and drain to flash concurrently; only the
///   backlog beyond the RAM budget waits on the channel array. In-flight
///   commands (capped at the hardware queue count) stripe the drain over
///   the channels; a 4 KiB command engages one channel, so depth is what
///   fills the array on streams that do outrun the buffer.
fn write_makespan_secs(
    cfg: &SsdConfig,
    net: &NetConfig,
    kern: &KernelCosts,
    ranks: &[&IoCounters],
    qd: usize,
) -> f64 {
    let writes: u64 = ranks.iter().map(|c| c.writes).sum();
    let bytes: u64 = ranks.iter().map(|c| c.bytes_written).sum();
    if writes == 0 {
        return 0.0;
    }
    let avg_cmd = (bytes / writes).max(1);
    let inflight = (ranks.len() * qd).min(cfg.hw_queues as usize);
    let conc_channels = (inflight as u32 * cfg.channels_for(avg_cmd)).min(cfg.channels);
    let bw = cfg.channel_write_bw.as_bytes_per_sec() * f64::from(conc_channels);
    let bw_term = bytes.saturating_sub(cfg.device_ram) as f64 / bw;
    let cmd_term = writes as f64 * cfg.cmd_overhead.as_secs();
    let l1 = cmd_latency_secs(cfg, net, kern, avg_cmd);
    let lat_term = ranks
        .iter()
        .map(|c| c.writes as f64 * l1 / qd as f64)
        .fold(0.0f64, f64::max);
    bw_term.max(cmd_term).max(lat_term)
}

struct QdPoint {
    qd: usize,
    write_makespan_secs: f64,
    write_gib_s: f64,
    write_cmds: u64,
    submit_count: u64,
    submit_p50_ns: u64,
    submit_p99_ns: u64,
}

/// Drive the 28-rank testbed at window depth `qd` with 4 KiB commands and
/// fold the busiest SSD's measured write stream into the pipeline
/// makespan.
fn qd_point(
    qd: usize,
    ssd_config: &SsdConfig,
    bytes_per_rank: u64,
    drive: Drive,
) -> Result<(QdPoint, telemetry::MetricsSnapshot), Box<dyn std::error::Error>> {
    let (io, snap) = run_point(
        QD_RANKS,
        ssd_config,
        QD_BLOCK,
        qd,
        bytes_per_rank,
        true,
        drive,
    )?;
    let net = NetConfig::default();
    let kern = KernelCosts::default();
    let mut per_ssd: HashMap<(u32, u32), Vec<&IoCounters>> = HashMap::new();
    for r in &io {
        per_ssd.entry(r.ssd).or_default().push(&r.counters);
    }
    let write_makespan = per_ssd
        .values()
        .map(|ranks| write_makespan_secs(ssd_config, &net, &kern, ranks, qd))
        .fold(0.0f64, f64::max);
    let total_bytes: u64 = io.iter().map(|r| r.counters.bytes_written).sum();
    let write_cmds: u64 = io.iter().map(|r| r.counters.writes).sum();
    let submits = snap
        .histogram("fabric.submit_ns")
        .ok_or("no fabric.submit_ns histogram in run telemetry")?;
    let point = QdPoint {
        qd,
        write_makespan_secs: write_makespan,
        write_gib_s: total_bytes as f64 / write_makespan / (1u64 << 30) as f64,
        write_cmds,
        submit_count: submits.count,
        submit_p50_ns: submits.percentile(50.0),
        submit_p99_ns: submits.percentile(99.0),
    };
    Ok((point, snap))
}

/// Resident set size in KiB from `/proc/self/statm` (0 where unreadable,
/// e.g. non-Linux — the RSS gate then skips itself).
fn rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/statm")
        .ok()
        .and_then(|s| {
            s.split_whitespace()
                .nth(1)
                .and_then(|pages| pages.parse::<u64>().ok())
        })
        .map(|pages| pages * 4)
        .unwrap_or(0)
}

/// The 28-rank QD=32 point driven both ways through the real stack.
struct ParityPoint {
    rayon_gib_s: f64,
    reactor_gib_s: f64,
    reactor_events: u64,
    reactor_loops: u64,
}

/// One virtual-rank sweep point from the simkit shard model, paired with
/// the reactor pool's modeled bookkeeping bytes and the process RSS right
/// after the simulation.
struct VirtualPoint {
    ranks: usize,
    makespan_ms: f64,
    per_rank_us: f64,
    gib_s: f64,
    footprint_bytes: u64,
    rss_kb: u64,
}

struct ReactorData {
    reactors: usize,
    parity: ParityPoint,
    sweep: Vec<VirtualPoint>,
}

/// Drive the real 28-rank QD=32 point through both drives and sweep the
/// shard model through the virtual rank counts.
fn reactor_section(
    ssd_config: &SsdConfig,
    bytes_per_rank: u64,
    rank_counts: &[usize],
) -> Result<ReactorData, Box<dyn std::error::Error>> {
    let qd = 32;
    let (rayon_pt, _) = qd_point(qd, ssd_config, bytes_per_rank, Drive::Rayon)?;
    let (reactor_pt, snap) = qd_point(qd, ssd_config, bytes_per_rank, Drive::Reactor)?;
    let parity = ParityPoint {
        rayon_gib_s: rayon_pt.write_gib_s,
        reactor_gib_s: reactor_pt.write_gib_s,
        reactor_events: snap.counter("reactor.events"),
        reactor_loops: snap.counter("reactor.loops"),
    };
    println!(
        "reactor parity: rayon={:.3}GiB/s  reactor={:.3}GiB/s  events={}  loops={}",
        parity.rayon_gib_s, parity.reactor_gib_s, parity.reactor_events, parity.reactor_loops
    );

    let model = ShardModel::default();
    let mut sweep = Vec::new();
    for &ranks in rank_counts {
        let r = model.simulate(ranks)?;
        let p = VirtualPoint {
            ranks,
            makespan_ms: r.makespan.as_secs() * 1e3,
            per_rank_us: r.per_rank_secs * 1e6,
            gib_s: r.gib_per_sec(),
            footprint_bytes: ReactorPool::footprint_bytes(model.reactors, ranks as u64),
            rss_kb: rss_kb(),
        };
        println!(
            "reactor ranks={:5}  makespan={:9.3}ms  per_rank={:7.3}us  {:6.3}GiB/s  \
             footprint={}B  rss={}KiB",
            p.ranks, p.makespan_ms, p.per_rank_us, p.gib_s, p.footprint_bytes, p.rss_kb
        );
        sweep.push(p);
    }
    Ok(ReactorData {
        reactors: model.reactors,
        parity,
        sweep,
    })
}

/// Self-validation of the reactor section; any violation fails the bench.
fn gate_reactor(data: &ReactorData) -> Result<(), Box<dyn std::error::Error>> {
    let p = &data.parity;
    let delta = (p.reactor_gib_s - p.rayon_gib_s).abs() / p.rayon_gib_s;
    if delta > 0.05 {
        return Err(format!(
            "reactor drive {:.3} GiB/s vs rayon {:.3} GiB/s: {:.1}% apart (> 5%)",
            p.reactor_gib_s,
            p.rayon_gib_s,
            delta * 100.0
        )
        .into());
    }
    if p.reactor_events == 0 || p.reactor_loops == 0 {
        return Err("reactor drive published no reactor.events/loops".into());
    }
    let base = data.sweep.first().ok_or("reactor sweep is empty")?;
    for pt in &data.sweep {
        if pt.per_rank_us > base.per_rank_us * 1.2 {
            return Err(format!(
                "per-rank makespan at {} ranks is {:.3}us, over 1.2x the {}-rank {:.3}us",
                pt.ranks, pt.per_rank_us, base.ranks, base.per_rank_us
            )
            .into());
        }
    }
    for w in data.sweep.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        let rank_growth = b.ranks as f64 / a.ranks as f64;
        let fp_growth = b.footprint_bytes as f64 / a.footprint_bytes as f64;
        if fp_growth >= rank_growth {
            return Err(format!(
                "reactor footprint grew {fp_growth:.2}x from {} to {} ranks (ranks grew \
                 {rank_growth:.2}x) — not sub-linear",
                a.ranks, b.ranks
            )
            .into());
        }
        if a.rss_kb > 0 && b.rss_kb > 0 {
            let rss_growth = b.rss_kb as f64 / a.rss_kb as f64;
            if rss_growth >= rank_growth {
                return Err(format!(
                    "process RSS grew {rss_growth:.2}x from {} to {} ranks (ranks grew \
                     {rank_growth:.2}x) — not sub-linear",
                    a.ranks, b.ranks
                )
                .into());
            }
        }
    }
    Ok(())
}

/// Real time the fabric spent in command submission paths over one run —
/// the sum of the measured `fabric.submit_ns` histogram. The flight
/// recorder's `record()` calls sit on exactly these paths, so the
/// enabled-vs-disabled delta of this sum is the recorder's dataplane
/// overhead.
fn submit_ns_sum(
    qd: usize,
    ssd_config: &SsdConfig,
    bytes_per_rank: u64,
    recorder_on: bool,
) -> Result<u64, Box<dyn std::error::Error>> {
    let (_, snap) = run_point(
        QD_RANKS,
        ssd_config,
        QD_BLOCK,
        qd,
        bytes_per_rank,
        recorder_on,
        Drive::Rayon,
    )?;
    Ok(snap
        .histogram("fabric.submit_ns")
        .ok_or("no fabric.submit_ns histogram in run telemetry")?
        .sum)
}

/// Disarmed-path recorder overhead at window depth `qd`: interleaved
/// min-of-7 submit-time sums with the recorder enabled vs disabled
/// (min, not mean, to shed scheduler noise — on a single pinned core a
/// stray timer tick inflates one arm by several percent, and the min of
/// enough trials converges both arms to their true floor). A discarded
/// warmup pair keeps allocator and page-cache state out of the first
/// measured trial. Negative deltas clamp to zero — the recorder cannot
/// make submission faster.
fn recorder_overhead_pct(
    qd: usize,
    ssd_config: &SsdConfig,
    bytes_per_rank: u64,
) -> Result<f64, Box<dyn std::error::Error>> {
    submit_ns_sum(qd, ssd_config, bytes_per_rank, true)?;
    submit_ns_sum(qd, ssd_config, bytes_per_rank, false)?;
    let mut on = u64::MAX;
    let mut off = u64::MAX;
    for _ in 0..7 {
        on = on.min(submit_ns_sum(qd, ssd_config, bytes_per_rank, true)?);
        off = off.min(submit_ns_sum(qd, ssd_config, bytes_per_rank, false)?);
    }
    if off == 0 {
        return Err("recorder-off run recorded zero submit time".into());
    }
    Ok((on.saturating_sub(off) as f64 / off as f64) * 100.0)
}

fn write_dataplane_json(
    points: &[Point],
    reactor: Option<&ReactorData>,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"dataplane\",\n");
    let (mode, reactors, max_ranks) = match reactor {
        Some(r) => (
            if points.is_empty() {
                "reactor"
            } else {
                "rayon+reactor"
            },
            r.reactors as u32,
            r.sweep.last().map_or(0, |p| p.ranks as u32),
        ),
        None => ("rayon", 0, SWEEP[SWEEP.len() - 1]),
    };
    json.push_str(&stamp::meta_line(&stamp::Fingerprint {
        queue_depth: RuntimeConfig::default().fabric.queue_depth,
        ranks: max_ranks.max(SWEEP[SWEEP.len() - 1]),
        replication_factor: 1,
        delta_chain_max: 0,
        mode,
        reactors,
    }));
    json.push_str(
        "  \"unit\": \"seconds (device-time makespan, calibrated P4800X model over measured IO)\",\n",
    );
    let _ = writeln!(
        json,
        "  \"config\": {{\"ckpts\": {CKPTS}, \"bytes_per_rank\": {BYTES_PER_RANK}}},"
    );
    json.push_str("  \"series\": [\n");
    for (label, pick) in [
        ("serial", (|p: &Point| p.serial_secs) as fn(&Point) -> f64),
        ("parallel", |p: &Point| p.parallel_secs),
    ] {
        let _ = write!(json, "    {{\"label\": \"{label}\", \"points\": [");
        for (i, p) in points.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(json, "{sep}[{}, {:.6}]", p.ranks, pick(p));
        }
        let end = if label == "serial" { "]}," } else { "]}" };
        let _ = writeln!(json, "{end}");
    }
    json.push_str("  ],\n  \"speedup\": [");
    for (i, p) in points.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(
            json,
            "{sep}[{}, {:.3}]",
            p.ranks,
            p.serial_secs / p.parallel_secs
        );
    }
    json.push_str("],\n  \"measured\": [");
    for (i, p) in points.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(
            json,
            "{sep}{{\"ranks\": {}, \"shards\": {}, \"bytes_copied\": {}, \"lock_wait_ns\": {}}}",
            p.ranks, p.shards, p.bytes_copied, p.lock_wait_ns
        );
    }
    json.push(']');
    if let Some(r) = reactor {
        let p = &r.parity;
        let _ = write!(
            json,
            ",\n  \"reactor\": {{\n    \"reactors\": {},\n    \"parity_qd32\": \
             {{\"rayon_gib_s\": {:.3}, \"reactor_gib_s\": {:.3}, \"reactor_events\": {}, \
             \"reactor_loops\": {}}},\n    \"virtual_sweep\": [\n",
            r.reactors, p.rayon_gib_s, p.reactor_gib_s, p.reactor_events, p.reactor_loops
        );
        for (i, pt) in r.sweep.iter().enumerate() {
            let sep = if i + 1 == r.sweep.len() { "" } else { "," };
            let _ = writeln!(
                json,
                "      {{\"ranks\": {}, \"makespan_ms\": {:.3}, \"per_rank_us\": {:.3}, \
                 \"gib_s\": {:.3}, \"footprint_bytes\": {}, \"rss_kb\": {}}}{sep}",
                pt.ranks, pt.makespan_ms, pt.per_rank_us, pt.gib_s, pt.footprint_bytes, pt.rss_kb
            );
        }
        json.push_str("    ]\n  }");
    }
    json.push_str("\n}\n");
    std::fs::write("BENCH_dataplane.json", &json)?;
    println!("wrote BENCH_dataplane.json");
    Ok(())
}

fn write_pipeline_json(
    points: &[QdPoint],
    bytes_per_rank: u64,
    recorder_overhead_pct: f64,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"pipeline\",\n");
    json.push_str(&stamp::meta_line(&stamp::Fingerprint {
        queue_depth: points.last().map_or(1, |p| p.qd),
        ranks: QD_RANKS,
        replication_factor: 1,
        delta_chain_max: 0,
        mode: "rayon",
        reactors: 0,
    }));
    json.push_str(
        "  \"unit\": \"GiB/s (write throughput over modeled makespan of measured IO per window depth)\",\n",
    );
    let _ = writeln!(
        json,
        "  \"config\": {{\"ranks\": {QD_RANKS}, \"block_size\": {QD_BLOCK}, \
         \"bytes_per_rank\": {bytes_per_rank}, \"ckpts\": {CKPTS}}},"
    );
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 == points.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"qd\": {}, \"write_makespan_ms\": {:.3}, \"write_gib_s\": {:.3}, \
             \"write_cmds\": {}, \"submit_ns\": {{\"count\": {}, \"p50\": {}, \"p99\": {}}}}}{sep}",
            p.qd,
            p.write_makespan_secs * 1e3,
            p.write_gib_s,
            p.write_cmds,
            p.submit_count,
            p.submit_p50_ns,
            p.submit_p99_ns,
        );
    }
    let first = points.first().expect("sweep is non-empty");
    let last = points.last().expect("sweep is non-empty");
    let _ = writeln!(
        json,
        "  ],\n  \"speedup_deepest_vs_qd1\": {:.3},\n  \"recorder_overhead_pct\": {:.3}\n}}",
        last.write_gib_s / first.write_gib_s,
        recorder_overhead_pct
    );
    std::fs::write("BENCH_pipeline.json", &json)?;
    println!("wrote BENCH_pipeline.json");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut smoke = false;
    let mut qd_arg = 32usize;
    let mut reactor_only = false;
    let mut ranks_arg = 10_000usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--qd" => {
                qd_arg = args
                    .next()
                    .ok_or("--qd needs a value")?
                    .parse()
                    .map_err(|e| format!("--qd: {e}"))?;
                if qd_arg == 0 {
                    return Err("--qd must be >= 1".into());
                }
            }
            "--mode" => {
                reactor_only = match args.next().ok_or("--mode needs a value")?.as_str() {
                    "reactor" => true,
                    "rayon" => false,
                    other => {
                        return Err(format!("--mode must be rayon or reactor, got {other}").into())
                    }
                };
            }
            "--ranks" => {
                ranks_arg = args
                    .next()
                    .ok_or("--ranks needs a value")?
                    .parse()
                    .map_err(|e| format!("--ranks: {e}"))?;
                if ranks_arg == 0 {
                    return Err("--ranks must be >= 1".into());
                }
            }
            other => return Err(format!("unknown argument {other}").into()),
        }
    }

    let ssd_config = SsdConfig {
        capacity: 16 << 30,
        ..SsdConfig::default()
    };

    // Reactor-only mode: the parity point, the virtual-rank sweep and the
    // scaling gates — the CI `reactor-smoke` path.
    if reactor_only {
        let (counts, bytes_per_rank): (Vec<usize>, u64) = if smoke {
            (vec![28, ranks_arg], SMOKE_BYTES_PER_RANK)
        } else {
            let mut counts = REACTOR_SWEEP.to_vec();
            let last = counts.len() - 1;
            counts[last] = counts[last].max(ranks_arg);
            (counts, BYTES_PER_RANK)
        };
        let data = reactor_section(&ssd_config, bytes_per_rank, &counts)?;
        write_dataplane_json(&[], Some(&data))?;
        return gate_reactor(&data);
    }

    if !smoke {
        let mut points = Vec::new();
        for &ranks in &SWEEP {
            let p = rank_point(ranks, &ssd_config)?;
            println!(
                "ranks={:2}  shards={}  serial={:.4}s  parallel={:.4}s  speedup={:.2}x  \
                 copied={}B  lock_wait={}ns",
                p.ranks,
                p.shards,
                p.serial_secs,
                p.parallel_secs,
                p.serial_secs / p.parallel_secs,
                p.bytes_copied,
                p.lock_wait_ns,
            );
            points.push(p);
        }
        // Full runs fold the reactor section into the same artifact so
        // BENCH_dataplane.json always carries the scale story.
        let mut counts = REACTOR_SWEEP.to_vec();
        let last_i = counts.len() - 1;
        counts[last_i] = counts[last_i].max(ranks_arg);
        let data = reactor_section(&ssd_config, BYTES_PER_RANK, &counts)?;
        write_dataplane_json(&points, Some(&data))?;
        gate_reactor(&data)?;
        let last = points.last().expect("sweep is non-empty");
        let speedup = last.serial_secs / last.parallel_secs;
        if speedup < 2.0 {
            return Err(format!("28-rank parallel speedup {speedup:.2}x below 2x").into());
        }
    }

    // QD sweep: full mode covers the ladder; smoke covers {1, --qd} at a
    // reduced per-rank volume so CI stays fast.
    let (qds, bytes_per_rank): (Vec<usize>, u64) = if smoke {
        let mut qds = vec![1];
        if qd_arg > 1 {
            qds.push(qd_arg);
        }
        (qds, SMOKE_BYTES_PER_RANK)
    } else {
        (QD_SWEEP.to_vec(), BYTES_PER_RANK)
    };
    let mut qd_points = Vec::new();
    for &qd in &qds {
        let (p, _) = qd_point(qd, &ssd_config, bytes_per_rank, Drive::Rayon)?;
        println!(
            "qd={:2}  write_makespan={:.3}ms  write={:.3}GiB/s  cmds={}  \
             submit_ns[n={} p50={} p99={}]",
            p.qd,
            p.write_makespan_secs * 1e3,
            p.write_gib_s,
            p.write_cmds,
            p.submit_count,
            p.submit_p50_ns,
            p.submit_p99_ns,
        );
        qd_points.push(p);
    }

    // Disarmed-path flight-recorder overhead at the deepest window depth:
    // the always-on rings must cost <= 2% of real submit time.
    let deepest = *qds.last().expect("sweep is non-empty");
    let overhead_pct = recorder_overhead_pct(deepest, &ssd_config, bytes_per_rank)?;
    println!("recorder overhead at qd={deepest}: {overhead_pct:.3}% of submit time");
    write_pipeline_json(&qd_points, bytes_per_rank, overhead_pct)?;
    if overhead_pct > 2.0 {
        return Err(format!(
            "flight recorder costs {overhead_pct:.3}% of submit time at qd={deepest}, above 2%"
        )
        .into());
    }

    let first = qd_points.first().expect("sweep is non-empty");
    let last = qd_points.last().expect("sweep is non-empty");
    let speedup = last.write_gib_s / first.write_gib_s;
    if last.qd >= 32 && speedup < 3.0 {
        return Err(format!(
            "QD={} write throughput {speedup:.2}x over QD=1, below 3x",
            last.qd
        )
        .into());
    }
    for p in &qd_points {
        if p.submit_count == 0 {
            return Err(format!("qd={} recorded no fabric.submit_ns samples", p.qd).into());
        }
    }
    Ok(())
}
