//! Regenerates the paper's Table I. Pass `--model-only` to skip the
//! functional (real-bytes) measurement run.
fn main() {
    let functional = !std::env::args().any(|a| a == "--model-only");
    println!("{}", nvmecr_bench::figures::table1(functional));
}
