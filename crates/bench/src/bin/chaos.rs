//! Chaos bench: checkpoint/verify rounds under a sweep of injected
//! data-path fault rates, reporting what the reliability layer absorbed.
//!
//! For each fault rate the harness builds a fresh paper-testbed runtime
//! whose initiators, devices, and filesystems share one chaos handle,
//! arms a mixed fault plan (corrupted capsules, dropped capsules,
//! connection resets, transient shard busy) at that rate, then runs
//! checkpoint rounds across every rank and re-reads each checkpoint,
//! requiring byte-identical data. Rate 0.0 runs with the handle disarmed —
//! the no-op-hook baseline the <5% overhead acceptance bound refers to.
//!
//! Output (working directory): `BENCH_chaos.json`, one sweep entry per
//! rate with wall time, verified bytes, and the reliability counters
//! (`fabric.retries`, `fabric.timeouts`, `fabric.crc_errors`,
//! `fabric.reconnects`, `fabric.duplicates_suppressed`, `chaos.injected`).
//! The artifact is re-parsed and validated before exit, so a zero exit
//! status means the file is well-formed, every checkpoint verified, the
//! zero-rate run injected nothing, and every faulted run both injected
//! faults and retried commands. Pass `--smoke` for a smaller, CI-sized
//! run.

use std::fmt::Write as _;
use std::time::Instant;

use chaos::{ChaosHandle, FaultAction, FaultPlan, FaultSite};
use cluster::{JobRequest, Scheduler, Topology};
use microfs::OpenFlags;
use nvmecr::runtime::{NvmeCrRuntime, StorageRack};
use nvmecr::RuntimeConfig;
use nvmecr_bench::stamp;
use ssd::SsdConfig;
use telemetry::json::{self, Value};
use telemetry::Telemetry;

/// Counters each sweep entry reports.
const COUNTERS: [&str; 6] = [
    "chaos.injected",
    "fabric.retries",
    "fabric.timeouts",
    "fabric.crc_errors",
    "fabric.reconnects",
    "fabric.duplicates_suppressed",
];

struct SweepResult {
    rate: f64,
    wall_ms: f64,
    verified_bytes: u64,
    counters: Vec<(&'static str, u64)>,
}

fn pattern(rank: u32, round: u32, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((i as u32).wrapping_mul(37) ^ (rank * 13) ^ (round * 101)) as u8)
        .collect()
}

/// One full checkpoint/verify campaign at `rate`, on a private registry.
fn run_at_rate(rate: f64, procs: u32, rounds: u32, bytes_per_rank: usize) -> SweepResult {
    let telemetry = Telemetry::new();
    // Black-box recording: the first chaos trip of the sweep auto-dumps
    // the flight rings here, so a failed CI run has the prelude to its
    // first fault on disk for the artifact upload.
    telemetry
        .recorder()
        .set_dump_path(format!("FLIGHT_chaos_rate{rate}.jsonl"));
    let chaos = ChaosHandle::new();
    let topo = Topology::paper_testbed();
    let rack = StorageRack::build_with_telemetry(
        &topo,
        &SsdConfig {
            capacity: 8 << 30,
            chaos: chaos.clone(),
            ..SsdConfig::default()
        },
        telemetry.clone(),
    );
    let mut sched = Scheduler::new(topo.clone(), 8);
    let alloc = sched
        .submit(&JobRequest::full_subscription(procs))
        .expect("testbed fits the job");
    let config = RuntimeConfig {
        namespace_bytes: 2 << 30,
        telemetry: telemetry.clone(),
        chaos: chaos.clone(),
        ..RuntimeConfig::default()
    };
    let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config).expect("init");
    if rate > 0.0 {
        // A mixed storm: the four transient fault kinds the reliability
        // layer must absorb, each at the sweep rate.
        chaos.arm(
            FaultPlan::new(0xC4A0_5EED)
                .with_rate(FaultSite::CapsuleTx, FaultAction::CorruptPayload, rate)
                .with_rate(FaultSite::CapsuleTx, FaultAction::DropCapsule, rate)
                .with_rate(FaultSite::CapsuleRx, FaultAction::CorruptPayload, rate)
                .with_rate(FaultSite::ConnReset, FaultAction::ResetConnection, rate)
                .with_rate(FaultSite::ShardIo, FaultAction::ShardBusy, rate),
            &telemetry,
        );
    }
    let start = Instant::now();
    let mut verified = 0u64;
    for round in 0..rounds {
        for rank in 0..procs {
            let data = pattern(rank, round, bytes_per_rank);
            let name = format!("/ckpt_{round}.dat");
            let fs = rt.rank_fs(rank).expect("rank mounted");
            let fd = fs.create(&name, 0o644).expect("create");
            fs.write(fd, &data).expect("write");
            fs.close(fd).expect("close");
        }
        for rank in 0..procs {
            let expect = pattern(rank, round, bytes_per_rank);
            let name = format!("/ckpt_{round}.dat");
            let fs = rt.rank_fs(rank).expect("rank mounted");
            let fd = fs.open(&name, OpenFlags::RDONLY, 0).expect("open");
            let mut buf = vec![0u8; bytes_per_rank];
            let mut got = 0;
            while got < buf.len() {
                let n = fs.read(fd, &mut buf[got..]).expect("read");
                if n == 0 {
                    break;
                }
                got += n;
            }
            fs.close(fd).expect("close");
            assert_eq!(got, bytes_per_rank, "rank {rank} short read at rate {rate}");
            assert_eq!(
                buf, expect,
                "rank {rank} round {round} not byte-identical at rate {rate}"
            );
            verified += got as u64;
        }
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    chaos.disarm();
    let snap = telemetry.snapshot();
    SweepResult {
        rate,
        wall_ms,
        verified_bytes: verified,
        counters: COUNTERS.iter().map(|&c| (c, snap.counter(c))).collect(),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --seeded [path]: run the deterministic shard-kill scenario instead
    // of the rate sweep, leaving a flight-recorder dump for
    // `nvmecr-doctor` (default path FLIGHT_SEEDED.jsonl).
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--seeded") {
        let path = args
            .get(i + 1)
            .filter(|a| !a.starts_with("--"))
            .map(String::as_str)
            .unwrap_or("FLIGHT_SEEDED.jsonl");
        let outcome = nvmecr_bench::scenario::run_seeded(std::path::Path::new(path))?;
        println!(
            "seeded shard-kill: rank {} faulted after {} armed round(s), \
             rolled back to epoch {}, {} recorder trip(s)",
            outcome.faulted_rank, outcome.rounds, outcome.rollback_epoch, outcome.trips
        );
        println!("wrote {}", outcome.dump_path.display());
        return Ok(());
    }
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (procs, rounds, bytes_per_rank): (u32, u32, usize) = if smoke {
        (8, 2, 128 << 10)
    } else {
        (16, 3, 1 << 20)
    };
    let rates: &[f64] = if smoke {
        &[0.0, 0.01]
    } else {
        &[0.0, 0.001, 0.01, 0.05]
    };

    let results: Vec<SweepResult> = rates
        .iter()
        .map(|&r| run_at_rate(r, procs, rounds, bytes_per_rank))
        .collect();

    // --- BENCH_chaos.json
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"chaos\",\n");
    out.push_str(&stamp::meta_line(&stamp::Fingerprint {
        queue_depth: nvmecr::RuntimeConfig::default().fabric.queue_depth,
        ranks: procs,
        replication_factor: 1,
        delta_chain_max: 0,
        mode: "rayon",
        reactors: 0,
    }));
    let _ = writeln!(
        out,
        "  \"config\": {{\"procs\": {procs}, \"rounds\": {rounds}, \
         \"bytes_per_rank\": {bytes_per_rank}, \"smoke\": {smoke}}},"
    );
    out.push_str("  \"sweeps\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"rate\": {}, \"wall_ms\": {:.2}, \"verified_bytes\": {}",
            r.rate, r.wall_ms, r.verified_bytes
        );
        for (name, v) in &r.counters {
            let _ = write!(out, ", \"{name}\": {v}");
        }
        let end = if i + 1 == results.len() { "}" } else { "}," };
        let _ = writeln!(out, "{end}");
    }
    out.push_str("  ]\n}\n");
    std::fs::write("BENCH_chaos.json", &out)?;

    // --- Validate the artifact (the CI smoke gate).
    let parsed = json::parse(&out).map_err(|e| format!("BENCH_chaos.json: {e}"))?;
    let sweeps = parsed
        .get("sweeps")
        .and_then(Value::as_arr)
        .ok_or("BENCH_chaos.json: no sweeps array")?;
    if sweeps.len() != rates.len() {
        return Err(format!("expected {} sweeps, got {}", rates.len(), sweeps.len()).into());
    }
    let expected_bytes = u64::from(procs) * u64::from(rounds) * bytes_per_rank as u64;
    for s in sweeps {
        let get = |k: &str| s.get(k).and_then(Value::as_num);
        let rate = get("rate").ok_or("sweep lacks rate")?;
        let injected = get("chaos.injected").ok_or("sweep lacks chaos.injected")? as u64;
        let retries = get("fabric.retries").ok_or("sweep lacks fabric.retries")? as u64;
        let verified = get("verified_bytes").ok_or("sweep lacks verified_bytes")? as u64;
        if verified != expected_bytes {
            return Err(format!(
                "rate {rate}: verified {verified} bytes, expected {expected_bytes}"
            )
            .into());
        }
        if rate == 0.0 && injected != 0 {
            return Err(format!("zero-fault run injected {injected} faults").into());
        }
        if rate > 0.0 && (injected == 0 || retries == 0) {
            return Err(format!(
                "rate {rate}: injected={injected} retries={retries}; the plan never fired"
            )
            .into());
        }
    }

    for r in &results {
        let ctrs: String = r
            .counters
            .iter()
            .map(|(n, v)| format!("{}={v}", n.rsplit('.').next().unwrap_or(n)))
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "rate={:<6} wall_ms={:>8.1} verified={}B {ctrs}",
            r.rate, r.wall_ms, r.verified_bytes
        );
    }
    println!("wrote BENCH_chaos.json");
    Ok(())
}
