//! Runs the design-choice ablations DESIGN.md §5 calls out (beyond the
//! paper's own figures): buffering vs direct writes, placement policies,
//! and incremental checkpointing.
use nvmecr_bench::figures as f;

fn main() {
    println!("{}", f::ablation_buffering());
    println!("{}", f::ablation_placement());
    println!("{}", f::ablation_incremental());
    println!("{}", f::ablation_queues());
}
