//! Regenerates the paper's Figure 8(a).
fn main() {
    println!("{}", nvmecr_bench::figures::fig8a());
}
