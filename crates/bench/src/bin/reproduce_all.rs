//! Runs every figure and table harness; the output is the data source for
//! EXPERIMENTS.md.
use nvmecr_bench::figures as f;

fn main() {
    println!("NVMe-CR reproduction report");
    println!("===========================\n");
    println!("{}", f::fig1());
    println!("{}", f::fig7a());
    println!("{}", f::fig7b());
    println!("{}", f::fig7c());
    println!("{}", f::fig7d());
    println!("{}", f::fig8a());
    println!("{}", f::fig8b());
    let (a, b) = f::fig9(true);
    println!("{a}\n{b}");
    let (c, d) = f::fig9(false);
    println!("{c}\n{d}");
    println!("{}", f::table1(true));
    println!("{}", f::table2());
    println!("{}", f::ablation_buffering());
    println!("{}", f::ablation_placement());
    println!("{}", f::ablation_incremental());
    println!("{}", f::ablation_queues());
    println!("{}", f::fig_apps());
    println!("{}", f::fig_fabric_sensitivity());
    println!("{}", f::fig_machine_efficiency());
}
