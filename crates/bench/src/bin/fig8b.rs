//! Regenerates the paper's Figure 8b.
fn main() {
    println!("{}", nvmecr_bench::figures::fig8b());
}
