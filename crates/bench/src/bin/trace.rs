//! Cross-layer telemetry bench: drive a small functional C/R run with
//! span tracing enabled and emit what the runtime observed about itself.
//!
//! Outputs (working directory):
//!
//! * `BENCH_telemetry.json` — per-layer latency percentiles (p50/p90/p99/
//!   p999), counters, and gauge peaks for the `fabric`, `ssd`, `microfs`,
//!   and `driver` layers.
//! * `BENCH_telemetry.trace.json` — the same run as a Chrome
//!   `trace_event` timeline (load in `chrome://tracing` or Perfetto).
//! * `BENCH_telemetry.jsonl` — one span/instant per line for ad-hoc
//!   grepping.
//!
//! Both JSON artifacts are re-parsed and validated before the process
//! exits, so a zero exit status means the files are well-formed and every
//! expected layer reported. Pass `--smoke` for a smaller, CI-sized run.

use std::fmt::Write as _;

use nvmecr_bench::stamp;
use telemetry::json::{self, Value};
use telemetry::HistogramSnapshot;
use workloads::driver::run_functional_checkpoints;

/// Layers the run must produce histograms for (the acceptance bar).
const REQUIRED_LAYERS: [&str; 4] = ["driver", "fabric", "microfs", "ssd"];

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn write_hist(json: &mut String, h: &HistogramSnapshot) {
    let _ = write!(
        json,
        "{{\"count\": {}, \"mean_ns\": {:.1}, \"min_ns\": {}, \"max_ns\": {}, \
         \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}}}",
        h.count,
        h.mean(),
        if h.count == 0 { 0 } else { h.min },
        h.max,
        h.percentile(50.0),
        h.percentile(90.0),
        h.percentile(99.0),
        h.percentile(99.9),
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (procs, ckpts, bytes_per_rank) = if smoke {
        (8u32, 2u32, 256u64 << 10)
    } else {
        (28, 3, 2 << 20)
    };
    let crash_ranks = [1, procs - 2];

    // One traced run: every span/instant from capsule encode down to the
    // capacitor flush lands in the trace, every counter/histogram in the
    // run's private registry (returned inside the report).
    let (report, trace) = telemetry::capture(|| {
        run_functional_checkpoints(procs, ckpts, bytes_per_rank, &crash_ranks)
    });
    let report = report?;
    let snap = &report.telemetry;

    // --- BENCH_telemetry.json: per-layer percentiles + counters/gauges.
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"telemetry\",\n");
    out.push_str(&stamp::meta_line(&stamp::Fingerprint {
        queue_depth: nvmecr::RuntimeConfig::default().fabric.queue_depth,
        ranks: procs,
        replication_factor: 1,
        delta_chain_max: 0,
        mode: "rayon",
        reactors: 0,
    }));
    let _ = writeln!(
        out,
        "  \"config\": {{\"procs\": {procs}, \"ckpts\": {ckpts}, \
         \"bytes_per_rank\": {bytes_per_rank}, \"smoke\": {smoke}}},"
    );
    out.push_str("  \"layers\": {\n");
    let layers = snap.layers();
    for (li, layer) in layers.iter().enumerate() {
        let _ = write!(out, "    \"{}\": {{", json_escape(layer));
        let prefix = format!("{layer}.");
        let mut first = true;
        for (name, h) in &snap.histograms {
            if let Some(metric) = name.strip_prefix(&prefix) {
                let sep = if first { "" } else { ", " };
                let _ = write!(out, "{sep}\"{}\": ", json_escape(metric));
                write_hist(&mut out, h);
                first = false;
            }
        }
        let end = if li + 1 == layers.len() { "}" } else { "}," };
        let _ = writeln!(out, "{end}");
    }
    out.push_str("  },\n  \"counters\": {");
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(out, "{sep}\"{}\": {v}", json_escape(name));
    }
    out.push_str("},\n  \"gauges\": {");
    for (i, (name, g)) in snap.gauges.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(
            out,
            "{sep}\"{}\": {{\"value\": {}, \"peak\": {}}}",
            json_escape(name),
            g.value,
            g.peak
        );
    }
    let _ = writeln!(out, "}},\n  \"trace_events\": {}\n}}", trace.events().len());
    std::fs::write("BENCH_telemetry.json", &out)?;

    // --- Timeline artifacts.
    let chrome = trace.to_chrome_json();
    std::fs::write("BENCH_telemetry.trace.json", &chrome)?;
    std::fs::write("BENCH_telemetry.jsonl", trace.to_jsonl())?;

    // --- Validate what we just wrote (the CI smoke gate).
    let parsed = json::parse(&out).map_err(|e| format!("BENCH_telemetry.json: {e}"))?;
    let layer_obj = parsed
        .get("layers")
        .and_then(Value::as_obj)
        .ok_or("BENCH_telemetry.json: no layers object")?;
    for layer in REQUIRED_LAYERS {
        let metrics = layer_obj
            .get(layer)
            .and_then(Value::as_obj)
            .ok_or_else(|| format!("layer {layer} missing from BENCH_telemetry.json"))?;
        let observed = metrics
            .values()
            .filter_map(|m| m.get("count").and_then(Value::as_num))
            .sum::<f64>();
        if observed <= 0.0 {
            return Err(format!("layer {layer} recorded no latency samples").into());
        }
        for m in metrics.values() {
            for p in ["p50_ns", "p99_ns"] {
                if m.get(p).and_then(Value::as_num).is_none() {
                    return Err(format!("layer {layer} metric lacks {p}").into());
                }
            }
        }
    }
    let parsed = json::parse(&chrome).map_err(|e| format!("trace.json: {e}"))?;
    let events = parsed
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("trace.json: no traceEvents")?;
    if events.len() != trace.events().len() || events.is_empty() {
        return Err(format!(
            "trace.json carries {} events, captured {}",
            events.len(),
            trace.events().len()
        )
        .into());
    }

    println!(
        "procs={procs} ckpts={ckpts} verified={}B trace_events={} layers={}",
        report.bytes_verified,
        trace.events().len(),
        layers.join(","),
    );
    println!("wrote BENCH_telemetry.json BENCH_telemetry.trace.json BENCH_telemetry.jsonl");
    Ok(())
}
