//! Regenerates the paper's Figure 7d.
fn main() {
    println!("{}", nvmecr_bench::figures::fig7d());
}
