//! Replication bench: what synchronous 2x durability costs on the write
//! path, and what it buys back on recovery (`BENCH_replication.json`).
//!
//! **Write overhead** — two identical functional runs (28 ranks, QD=32,
//! 4 KiB commands, real bytes through microfs → NVMf → SSD shards), one
//! at `replication_factor=1` and one at `replication_factor=2` with an
//! epoch commit sealing every checkpoint round. The reported makespan is
//! the busiest device's service time over the IO each SSD *measured*
//! during the checkpoint phase (same calibrated-device-time convention as
//! the dataplane bench; wall-clock is not used). The self-validation gate
//! is **rep=2 ≤ 1.6x rep=1**: mirrored capsules ride the same submission
//! window onto partner-domain devices that are otherwise idle, so the
//! second copy must overlap with the first — a serialized mirror would
//! cost 2x.
//!
//! **Restore** — after the rep=2 run, the rank's primary shard is killed
//! through the chaos plane (`ShardIo` → `KillShard`, struck below the
//! fabric) while the rank itself is crashed, so `fail_over_rank` must
//! re-home onto a partner namespace and re-populate it from the surviving
//! replica via the manifest (a degraded restore). The restored checkpoint
//! is byte-verified against the pre-kill payload, and the restore's
//! measured device time is compared against the modeled Lustre rollback
//! it replaces — a full-job restart that re-reads every rank's checkpoint
//! from the PFS, not just the lost rank's.
//!
//! `--smoke` runs 8 ranks at 1 MiB/rank for CI; both gates still apply.

use std::fmt::Write as _;

use baselines::{LustreModel, Scenario, StorageModel};
use chaos::{ChaosHandle, FaultAction, FaultPlan, FaultSite};
use cluster::{JobRequest, Scheduler, Topology};
use nvmecr::runtime::{NvmeCrRuntime, StorageRack};
use nvmecr::RuntimeConfig;
use nvmecr_bench::stamp;
use ssd::SsdConfig;
use telemetry::Telemetry;
use workloads::CoMD;

const CKPTS: u32 = 2;
const RANKS: u32 = 28;
const QD: usize = 32;
const BLOCK: u64 = 4 << 10;
const BYTES_PER_RANK: u64 = 4 << 20;
const SMOKE_RANKS: u32 = 8;
const SMOKE_BYTES_PER_RANK: u64 = 1 << 20;

/// Per-device `(writes, reads, bytes_written, bytes_read)` across the
/// whole rack, in a stable device order.
fn rack_io(rack: &StorageRack, topo: &Topology) -> Vec<(u64, u64, u64, u64)> {
    let mut io = Vec::new();
    for node in topo.storage_nodes() {
        for (_, target) in rack.targets_on(node) {
            io.push(target.device().io_counters());
        }
    }
    io
}

/// Device service time in seconds of one delta `(writes, reads,
/// bytes_written, bytes_read)`: per-command controller overhead plus
/// bytes over the channel array.
fn service_secs(cfg: &SsdConfig, d: &(u64, u64, u64, u64)) -> f64 {
    let (w, r, bw, br) = *d;
    (w + r) as f64 * cfg.cmd_overhead.as_secs()
        + bw as f64 / cfg.write_bw().as_bytes_per_sec()
        + br as f64 / cfg.read_bw().as_bytes_per_sec()
}

fn delta(
    after: &[(u64, u64, u64, u64)],
    before: &[(u64, u64, u64, u64)],
) -> Vec<(u64, u64, u64, u64)> {
    after
        .iter()
        .zip(before)
        .map(|(a, b)| (a.0 - b.0, a.1 - b.1, a.2 - b.2, a.3 - b.3))
        .collect()
}

struct WritePhase {
    /// Busiest-device service time of the checkpoint phase.
    makespan_secs: f64,
    /// Devices that saw any checkpoint-phase write traffic.
    devices_touched: usize,
    snap: telemetry::MetricsSnapshot,
}

struct RestorePhase {
    /// Summed device service time of the replica restore.
    restore_secs: f64,
    /// Bytes written onto the replacement primary.
    restored_bytes: u64,
    degraded_restores: u64,
}

struct RepRun {
    write: WritePhase,
    restore: Option<RestorePhase>,
}

/// Drive `ranks` ranks through `CKPTS` checkpoint rounds at the given
/// replication factor, measuring the per-device IO of exactly the
/// checkpoint phase (init/format traffic is excluded on both sides so
/// the ratio compares steady-state checkpointing). At rep=2 the run then
/// kills the primary shard under a crashed rank and measures the
/// manifest-driven replica restore.
fn run_rep(
    rep: u32,
    ranks: u32,
    bytes_per_rank: u64,
    namespace_bytes: u64,
    ssd_config: &SsdConfig,
) -> Result<RepRun, Box<dyn std::error::Error>> {
    let telemetry = Telemetry::new();
    let ssd_chaos = ChaosHandle::new();
    let topo = Topology::paper_testbed();
    let rack = StorageRack::build_with_telemetry(
        &topo,
        &SsdConfig {
            chaos: ssd_chaos.clone(),
            ..ssd_config.clone()
        },
        telemetry.clone(),
    );
    let mut sched = Scheduler::new(topo.clone(), 8);
    // The paper's capacity-planning subscription: every rank shares the
    // granted namespace, replicas land on partner-domain devices.
    let alloc = sched.submit(&JobRequest::full_subscription(ranks))?;
    let mut config = RuntimeConfig {
        namespace_bytes,
        telemetry: telemetry.clone(),
        block_size: BLOCK,
        replication_factor: rep,
        ..RuntimeConfig::default()
    };
    config.fabric.queue_depth = QD;
    let mut rt = NvmeCrRuntime::init(&rack, &topo, &alloc, config)?;
    let comd = CoMD::weak_scaling();

    let before = rack_io(&rack, &topo);
    for ckpt in 0..CKPTS {
        rt.for_each_rank_par(|rank, fs| {
            if ckpt == 0 {
                fs.mkdir("/comd", 0o755).ok();
            }
            fs.mkdir(&format!("/comd/ckpt_{ckpt:03}"), 0o755)?;
            let payload = comd.checkpoint_payload(rank, ckpt, bytes_per_rank as usize);
            let fd = fs.create(&CoMD::checkpoint_path(rank, ckpt), 0o644)?;
            for chunk in payload.chunks(1 << 20) {
                fs.write(fd, chunk)?;
            }
            fs.fsync(fd)?;
            fs.close(fd)?;
            Ok(())
        })?;
        if rep >= 2 {
            // Seal the epoch each round: the measured stream carries the
            // full mirrored-commit cost (manifest, commit record, flush),
            // not just the data writes.
            rt.commit_epochs()?;
        }
    }
    let after = rack_io(&rack, &topo);
    let per_device = delta(&after, &before);
    let makespan_secs = per_device
        .iter()
        .map(|d| service_secs(ssd_config, d))
        .fold(0.0f64, f64::max);
    let devices_touched = per_device.iter().filter(|d| d.2 > 0).count();
    let write = WritePhase {
        makespan_secs,
        devices_touched,
        snap: telemetry.snapshot(),
    };

    if rep < 2 {
        rt.finalize()?;
        return Ok(RepRun {
            write,
            restore: None,
        });
    }

    // Shard-kill → degraded restore → verify. The rank is crashed first
    // so no live extent map survives: the restore must come entirely from
    // the replica's manifest.
    let victim = 0u32;
    rt.crash_rank(victim)?;
    ssd_chaos.arm(
        FaultPlan::new(1).at_op(FaultSite::ShardIo, FaultAction::KillShard, 0),
        &telemetry,
    );
    // All ranks share the grant namespace, so any rank's IO strikes the
    // victim's primary shard too.
    let doomed = {
        let fs = rt.rank_fs(1)?;
        match fs.create("/doomed.dat", 0o644) {
            Err(_) => true,
            Ok(fd) => fs.write(fd, &[0u8; 4096]).is_err() || fs.close(fd).is_err(),
        }
    };
    ssd_chaos.disarm();
    if !doomed {
        return Err("shard kill did not take".into());
    }
    let before = rack_io(&rack, &topo);
    rt.fail_over_rank(victim, &rack, &topo)?;
    let after = rack_io(&rack, &topo);
    let per_device = delta(&after, &before);
    // The restore streams chunk-by-chunk (read replica, write new
    // primary), so the two devices' service times add.
    let restore_secs: f64 = per_device.iter().map(|d| service_secs(ssd_config, d)).sum();
    let restored_bytes: u64 = per_device.iter().map(|d| d.2).sum();

    // Byte-verify the last sealed checkpoint against pre-kill contents.
    let last = CKPTS - 1;
    let expect = comd.checkpoint_payload(victim, last, bytes_per_rank as usize);
    let fs = rt.rank_fs(victim)?;
    let fd = fs.open(
        &CoMD::checkpoint_path(victim, last),
        microfs::OpenFlags::RDONLY,
        0,
    )?;
    let mut buf = vec![0u8; expect.len()];
    let mut got = 0;
    while got < buf.len() {
        let n = fs.read(fd, &mut buf[got..])?;
        if n == 0 {
            break;
        }
        got += n;
    }
    fs.close(fd)?;
    if buf != expect {
        return Err("restored checkpoint is not byte-identical to the pre-kill payload".into());
    }
    let degraded_restores = telemetry
        .snapshot()
        .counter("replication.degraded_restores");
    // The other ranks' primaries died with the shared shard; the rack is
    // torn down with the job rather than finalized through dead routes.
    Ok(RepRun {
        write,
        restore: Some(RestorePhase {
            restore_secs,
            restored_bytes,
            degraded_restores,
        }),
    })
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    ranks: u32,
    bytes_per_rank: u64,
    rep1: &WritePhase,
    rep2: &WritePhase,
    restore: &RestorePhase,
    lustre_secs: f64,
) -> Result<(), Box<dyn std::error::Error>> {
    let overhead = rep2.makespan_secs / rep1.makespan_secs;
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"replication\",\n");
    json.push_str(&stamp::meta_line(&stamp::Fingerprint {
        queue_depth: QD,
        ranks,
        replication_factor: 2,
        delta_chain_max: 0,
        mode: "rayon",
        reactors: 0,
    }));
    json.push_str(
        "  \"unit\": \"seconds (device-time makespan, calibrated P4800X model over measured IO)\",\n",
    );
    let _ = writeln!(
        json,
        "  \"config\": {{\"ranks\": {ranks}, \"qd\": {QD}, \"block_size\": {BLOCK}, \
         \"bytes_per_rank\": {bytes_per_rank}, \"ckpts\": {CKPTS}}},"
    );
    let _ = writeln!(
        json,
        "  \"write\": {{\"rep1_makespan_ms\": {:.3}, \"rep2_makespan_ms\": {:.3}, \
         \"overhead\": {:.3}, \"rep1_devices\": {}, \"rep2_devices\": {}}},",
        rep1.makespan_secs * 1e3,
        rep2.makespan_secs * 1e3,
        overhead,
        rep1.devices_touched,
        rep2.devices_touched,
    );
    let _ = writeln!(
        json,
        "  \"restore\": {{\"replica_restore_ms\": {:.3}, \"restored_bytes\": {}, \
         \"degraded_restores\": {}, \"lustre_rollback_ms\": {:.3}, \"speedup\": {:.1}}},",
        restore.restore_secs * 1e3,
        restore.restored_bytes,
        restore.degraded_restores,
        lustre_secs * 1e3,
        lustre_secs / restore.restore_secs,
    );
    let mirror = rep2.snap.histogram("replication.mirror_ns");
    let (mn, mp50, mp99) = mirror
        .map(|h| (h.count, h.percentile(50.0), h.percentile(99.0)))
        .unwrap_or_default();
    let _ = writeln!(
        json,
        "  \"measured\": {{\"replication_bytes\": {}, \"epochs_committed\": {}, \
         \"mirror_ns\": {{\"count\": {mn}, \"p50\": {mp50}, \"p99\": {mp99}}}}}\n}}",
        rep2.snap.counter("replication.bytes"),
        rep2.snap.counter("replication.epochs_committed"),
    );
    std::fs::write("BENCH_replication.json", &json)?;
    println!("wrote BENCH_replication.json");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut smoke = false;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--smoke" => smoke = true,
            other => return Err(format!("unknown argument {other}").into()),
        }
    }
    let (ranks, bytes_per_rank, namespace_bytes) = if smoke {
        (SMOKE_RANKS, SMOKE_BYTES_PER_RANK, 256u64 << 20)
    } else {
        (RANKS, BYTES_PER_RANK, 2u64 << 30)
    };
    let ssd_config = SsdConfig {
        capacity: 16 << 30,
        ..SsdConfig::default()
    };

    let rep1 = run_rep(1, ranks, bytes_per_rank, namespace_bytes, &ssd_config)?;
    let rep2 = run_rep(2, ranks, bytes_per_rank, namespace_bytes, &ssd_config)?;
    let restore = rep2.restore.as_ref().expect("rep=2 run measures restore");

    // The rollback this restore replaces: a full-job PFS restart that
    // re-reads every rank's last Lustre-level checkpoint.
    let lustre_secs = LustreModel::new()
        .recovery_makespan(&Scenario::new(ranks, bytes_per_rank))
        .as_secs();

    println!(
        "ranks={ranks}  rep1={:.3}ms  rep2={:.3}ms  overhead={:.3}x  (devices {} -> {})",
        rep1.write.makespan_secs * 1e3,
        rep2.write.makespan_secs * 1e3,
        rep2.write.makespan_secs / rep1.write.makespan_secs,
        rep1.write.devices_touched,
        rep2.write.devices_touched,
    );
    println!(
        "restore: replica={:.3}ms ({} bytes, degraded={})  lustre_rollback={:.3}ms  speedup={:.1}x",
        restore.restore_secs * 1e3,
        restore.restored_bytes,
        restore.degraded_restores,
        lustre_secs * 1e3,
        lustre_secs / restore.restore_secs,
    );
    write_json(
        ranks,
        bytes_per_rank,
        &rep1.write,
        &rep2.write,
        restore,
        lustre_secs,
    )?;

    // Self-validation gates.
    let overhead = rep2.write.makespan_secs / rep1.write.makespan_secs;
    if overhead > 1.6 {
        return Err(format!(
            "rep=2 write overhead {overhead:.3}x exceeds 1.6x — mirroring is not overlapping"
        )
        .into());
    }
    if rep2.write.devices_touched <= rep1.write.devices_touched {
        return Err("rep=2 did not spread replicas onto additional devices".into());
    }
    if restore.degraded_restores != 1 {
        return Err(format!(
            "expected exactly one degraded restore, saw {}",
            restore.degraded_restores
        )
        .into());
    }
    if restore.restore_secs >= lustre_secs {
        return Err(format!(
            "replica restore {:.3}ms is not faster than the {:.3}ms Lustre rollback it replaces",
            restore.restore_secs * 1e3,
            lustre_secs * 1e3
        )
        .into());
    }
    if rep2.snap_check() {
        return Err("rep=2 run recorded no mirrored bytes".into());
    }
    Ok(())
}

impl RepRun {
    /// True when the rep=2 run somehow mirrored nothing — the overhead
    /// ratio would then be vacuous.
    fn snap_check(&self) -> bool {
        self.write.snap.counter("replication.bytes") == 0
            || self.write.snap.counter("replication.epochs_committed") == 0
    }
}
