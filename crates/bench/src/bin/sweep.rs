//! Parameterized sweep CLI: evaluate any modelled system on any scenario
//! without writing code.
//!
//! ```text
//! sweep --system nvmecr --mode weak --procs 56,112,224,448
//! sweep --system glusterfs --mode strong --metric recovery
//! sweep --system nvmecr --block 65536 --mode single --size-mb 512
//! ```

use baselines::model::StorageModel;
use baselines::{
    CrailModel, Ext4Model, GlusterFsModel, LustreModel, OrangeFsModel, Scenario, SpdkRawModel,
    XfsModel,
};
use workloads::NvmeCrModel;

struct Args {
    system: String,
    mode: String,
    metric: String,
    procs: Vec<u32>,
    block: Option<u64>,
    size_mb: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        system: "nvmecr".into(),
        mode: "weak".into(),
        metric: "efficiency".into(),
        procs: vec![56, 112, 224, 448],
        block: None,
        size_mb: 512,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        match flag {
            "--system" => args.system = value.clone(),
            "--mode" => args.mode = value.clone(),
            "--metric" => args.metric = value.clone(),
            "--procs" => {
                args.procs = value
                    .split(',')
                    .map(|p| p.parse().map_err(|e| format!("bad procs {p}: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--block" => args.block = Some(value.parse().map_err(|e| format!("bad block: {e}"))?),
            "--size-mb" => args.size_mb = value.parse().map_err(|e| format!("bad size: {e}"))?,
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    Ok(args)
}

fn model_of(name: &str, block: Option<u64>) -> Result<Box<dyn StorageModel>, String> {
    Ok(match name {
        "nvmecr" => match block {
            Some(b) => Box::new(NvmeCrModel::with_block_size(b)),
            None => Box::new(NvmeCrModel::full()),
        },
        "nvmecr-local" => match block {
            Some(b) => Box::new(NvmeCrModel::local_with_block_size(b)),
            None => Box::new(NvmeCrModel::local()),
        },
        "nvmecr-nocoalesce" => Box::new(NvmeCrModel::without_coalescing()),
        "orangefs" => Box::new(OrangeFsModel::new()),
        "glusterfs" => Box::new(GlusterFsModel::new()),
        "crail" => Box::new(CrailModel::new()),
        "ext4" => Box::new(Ext4Model::new()),
        "xfs" => Box::new(XfsModel::new()),
        "spdk" => Box::new(SpdkRawModel::new()),
        "lustre" => Box::new(LustreModel::new()),
        other => {
            return Err(format!(
                "unknown system {other}; try nvmecr, nvmecr-local, nvmecr-nocoalesce, orangefs, glusterfs, crail, ext4, xfs, spdk, lustre"
            ))
        }
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: sweep [--system S] [--mode weak|strong|single] [--metric efficiency|checkpoint|recovery|creates|cov] [--procs 56,112] [--block BYTES] [--size-mb N]");
            std::process::exit(2);
        }
    };
    let model = match model_of(&args.system, args.block) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "system={} mode={} metric={}",
        model.name(),
        args.mode,
        args.metric
    );
    println!("{:>8} {:>16}", "procs", args.metric);
    for &procs in &args.procs {
        let s = match args.mode.as_str() {
            "weak" => Scenario::weak_scaling(procs),
            "strong" => Scenario::strong_scaling(procs),
            "single" => Scenario {
                procs,
                ..Scenario::single_node(args.size_mb << 20)
            },
            other => {
                eprintln!("error: unknown mode {other}");
                std::process::exit(2);
            }
        };
        let v = match args.metric.as_str() {
            "efficiency" => model.checkpoint_efficiency(&s),
            "recovery" => model.recovery_efficiency(&s),
            "checkpoint" => model.checkpoint_makespan(&s).as_secs(),
            "recovery-time" => model.recovery_makespan(&s).as_secs(),
            "creates" => model.create_rate(&s, 10),
            "cov" => model.load_cov(&s),
            other => {
                eprintln!("error: unknown metric {other}");
                std::process::exit(2);
            }
        };
        println!("{procs:>8} {v:>16.4}");
    }
}
