//! Seeded fault scenario: shard-kill during a delta-chain epoch.
//!
//! Builds a replicated, delta-chained runtime, commits two clean epochs
//! (a full manifest then a delta), then arms a deterministic
//! `KillShard` at an exact shard-I/O op index and drives per-rank
//! writes until the kill lands on a *primary* namespace and a write
//! fails (a replica-side kill only degrades the mirror; the loop re-arms
//! at a different op index and keeps going). The failed rank is crashed
//! and failed over — forcing the degraded-restore path, which rolls the
//! rank back to its last complete epoch — and the rolled-back epochs are
//! byte-verified. The flight recorder auto-dumps at the first trip
//! (the injection); the scenario finishes by overwriting that dump with
//! the full story — submit, retries, exhaustion, failover, rollback —
//! which `nvmecr-doctor` then reconstructs.

use std::path::{Path, PathBuf};

use chaos::{ChaosHandle, FaultAction, FaultPlan, FaultSite};
use cluster::{JobRequest, Scheduler, Topology};
use microfs::OpenFlags;
use nvmecr::runtime::{NvmeCrRuntime, StorageRack};
use nvmecr::RuntimeConfig;
use ssd::SsdConfig;
use telemetry::{FlightKind, Telemetry};

/// Ranks the scenario drives.
pub const RANKS: u32 = 8;
/// Bytes each rank writes per epoch / per armed round.
pub const BYTES_PER_WRITE: usize = 128 << 10;
/// Re-arm attempts before giving up on hitting a primary shard.
const MAX_ROUNDS: u64 = 12;
/// Plan seed; the whole scenario is deterministic given this.
const SEED: u64 = 0x5EED_FA17;

/// What the seeded run produced.
#[derive(Debug)]
pub struct SeededOutcome {
    /// Where the flight dump landed.
    pub dump_path: PathBuf,
    /// The rank whose primary shard was killed.
    pub faulted_rank: u32,
    /// Armed rounds driven before the kill landed on a primary.
    pub rounds: u64,
    /// Epoch the failed-over rank rolled back to.
    pub rollback_epoch: u64,
    /// Recorder trips counted over the run.
    pub trips: u64,
}

fn pattern(rank: u32, tag: u32, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((i as u32).wrapping_mul(131) ^ (rank * 29) ^ (tag * 211)) as u8)
        .collect()
}

fn write_file(rt: &mut NvmeCrRuntime, rank: u32, name: &str, data: &[u8]) -> Result<(), String> {
    let fs = rt.rank_fs(rank).map_err(|e| format!("{e:?}"))?;
    let fd = fs.create(name, 0o644).map_err(|e| format!("{e:?}"))?;
    fs.write(fd, data).map_err(|e| format!("{e:?}"))?;
    fs.close(fd).map_err(|e| format!("{e:?}"))?;
    Ok(())
}

fn verify_file(rt: &mut NvmeCrRuntime, rank: u32, name: &str, expect: &[u8]) -> Result<(), String> {
    let fs = rt.rank_fs(rank).map_err(|e| format!("{e:?}"))?;
    let fd = fs
        .open(name, OpenFlags::RDONLY, 0)
        .map_err(|e| format!("{name}: {e:?}"))?;
    let mut buf = vec![0u8; expect.len()];
    let mut got = 0;
    while got < buf.len() {
        let n = fs.read(fd, &mut buf[got..]).map_err(|e| format!("{e:?}"))?;
        if n == 0 {
            break;
        }
        got += n;
    }
    fs.close(fd).map_err(|e| format!("{e:?}"))?;
    if got != expect.len() {
        return Err(format!("{name}: short read {got}/{}", expect.len()));
    }
    if buf != expect {
        return Err(format!("{name}: rolled-back data not byte-identical"));
    }
    Ok(())
}

/// Run the seeded shard-kill scenario, leaving the flight dump at
/// `dump_path`.
pub fn run_seeded(dump_path: &Path) -> Result<SeededOutcome, String> {
    let telemetry = Telemetry::new();
    let chaos = ChaosHandle::new();
    let topo = Topology::paper_testbed();
    let rack = StorageRack::build_with_telemetry(
        &topo,
        &SsdConfig {
            capacity: 8 << 30,
            chaos: chaos.clone(),
            ..SsdConfig::default()
        },
        telemetry.clone(),
    );
    let mut sched = Scheduler::new(topo.clone(), 8);
    let alloc = sched
        .submit(&JobRequest::full_subscription(RANKS))
        .map_err(|e| format!("schedule: {e:?}"))?;
    let config = RuntimeConfig {
        namespace_bytes: 256 << 20,
        replication_factor: 2,
        delta_chain_max: 4,
        telemetry: telemetry.clone(),
        chaos: chaos.clone(),
        ..RuntimeConfig::default()
    };
    let mut rt =
        NvmeCrRuntime::init(&rack, &topo, &alloc, config).map_err(|e| format!("init: {e:?}"))?;
    let recorder = telemetry.recorder();
    recorder.set_dump_path(dump_path);

    // Two clean epochs before the fault: epoch 1 anchors the chain with a
    // full manifest, epoch 2 commits a delta on top of it. The kill then
    // lands mid-epoch-3 — "during a delta-chain epoch".
    for epoch in 1u32..=2 {
        for rank in 0..RANKS {
            let _rank = telemetry::context::with_rank(u64::from(rank));
            let data = pattern(rank, epoch, BYTES_PER_WRITE);
            write_file(&mut rt, rank, &format!("/epoch_{epoch}.dat"), &data)?;
        }
        for rank in 0..RANKS {
            let _rank = telemetry::context::with_rank(u64::from(rank));
            rt.commit_epoch_rank(rank)
                .map_err(|e| format!("commit epoch {epoch} rank {rank}: {e:?}"))?;
        }
    }

    // A transient window first: one dropped tx capsule mid-epoch-3, so
    // the dump carries the timeout → retry → resubmit leg of the
    // reliability layer in the same rank/epoch context as the kill.
    // It runs disjoint from the kill rounds so the kill's deterministic
    // op placement is unperturbed.
    chaos.arm(
        FaultPlan::new(SEED ^ 0xD80).at_op(FaultSite::CapsuleTx, FaultAction::DropCapsule, 1),
        &telemetry,
    );
    {
        let _rank = telemetry::context::with_rank(0);
        let data = pattern(0, 99, BYTES_PER_WRITE);
        write_file(&mut rt, 0, "/retry_probe.dat", &data)?;
    }
    chaos.disarm();

    // Armed rounds: one exact-op KillShard per round. Shard-I/O op
    // indices interleave primary and replica traffic, so stepping the
    // index each round sweeps both until a primary dies and the write
    // errors.
    let mut faulted: Option<u32> = None;
    let mut rounds = 0u64;
    while faulted.is_none() && rounds < MAX_ROUNDS {
        chaos.arm(
            FaultPlan::new(SEED + rounds).at_op(
                FaultSite::ShardIo,
                FaultAction::KillShard,
                2 + rounds,
            ),
            &telemetry,
        );
        for rank in 0..RANKS {
            let _rank = telemetry::context::with_rank(u64::from(rank));
            let data = pattern(rank, 100 + rounds as u32, BYTES_PER_WRITE);
            if write_file(&mut rt, rank, &format!("/round_{rounds}.dat"), &data).is_err() {
                faulted = Some(rank);
                break;
            }
        }
        chaos.disarm();
        rounds += 1;
    }
    let rank = faulted.ok_or_else(|| {
        format!("kill never landed on a primary namespace in {MAX_ROUNDS} rounds")
    })?;

    // Crash before failing over: dropping the live mirror forces the
    // reconnect-to-replica restore, which rolls the rank back to the
    // replica's last complete epoch.
    rt.crash_rank(rank).map_err(|e| format!("crash: {e:?}"))?;
    rt.fail_over_rank(rank, &rack, &topo)
        .map_err(|e| format!("failover: {e:?}"))?;

    // The rolled-back epochs must read back byte-identical.
    for epoch in 1u32..=2 {
        let _rank = telemetry::context::with_rank(u64::from(rank));
        let expect = pattern(rank, epoch, BYTES_PER_WRITE);
        verify_file(&mut rt, rank, &format!("/epoch_{epoch}.dat"), &expect)?;
    }

    let rollback_epoch = recorder
        .events()
        .iter()
        .rev()
        .find(|e| e.kind == FlightKind::RollbackRestore)
        .map(|e| e.a)
        .unwrap_or(0);

    // The auto-dump fired at the first trip (the injection) and only
    // holds the prelude. Overwrite it with the complete causal story now
    // that failover and rollback are in the rings.
    recorder
        .dump_to(dump_path, FlightKind::Failover)
        .map_err(|e| format!("dump: {e}"))?;

    Ok(SeededOutcome {
        dump_path: dump_path.to_path_buf(),
        faulted_rank: rank,
        rounds,
        rollback_epoch,
        trips: recorder.trip_count(),
    })
}
