//! Provenance stamping for `BENCH_*.json` artifacts.
//!
//! Every bench emission carries a `meta` object: the artifact schema
//! version, the git commit the binary was built from, and the config
//! fingerprint that shaped the run (queue depth, ranks, replication
//! factor, delta chain length). A regression found in CI is then
//! attributable to an exact commit and configuration without having to
//! re-derive either from the workflow logs.

use std::fmt::Write as _;
use std::process::Command;

/// Version of the `BENCH_*.json` artifact layout. Bump when a bench
/// renames or removes keys (adding keys is backward compatible).
pub const SCHEMA_VERSION: u32 = 2;

/// The runtime knobs that shape a bench run's numbers.
#[derive(Clone, Copy, Debug)]
pub struct Fingerprint {
    /// Fabric submission-window depth.
    pub queue_depth: usize,
    /// Ranks driven.
    pub ranks: u32,
    /// Replication factor (1 = unreplicated).
    pub replication_factor: u32,
    /// Delta-chain length cap (0 = full manifests only).
    pub delta_chain_max: u32,
    /// How ranks were driven: `"rayon"` (thread per rank), `"reactor"`
    /// (shard-per-core multiplexing), or `"serial"`.
    pub mode: &'static str,
    /// Reactor cores for `"reactor"` runs (0 = not applicable).
    pub reactors: u32,
}

/// Short git commit hash of the working tree, or `"unknown"` outside a
/// repository (artifacts must still be valid there).
pub fn git_commit() -> String {
    Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The `"meta": {...},` line (two-space indented, trailing comma +
/// newline) each bench splices in right after its `"bench"` key.
pub fn meta_line(fp: &Fingerprint) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  \"meta\": {{\"schema_version\": {SCHEMA_VERSION}, \"git_commit\": \"{}\", \
         \"fingerprint\": {{\"queue_depth\": {}, \"ranks\": {}, \"replication_factor\": {}, \
         \"delta_chain_max\": {}, \"mode\": \"{}\", \"reactors\": {}}}}},",
        git_commit(),
        fp.queue_depth,
        fp.ranks,
        fp.replication_factor,
        fp.delta_chain_max,
        fp.mode,
        fp.reactors,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::json;

    #[test]
    fn meta_line_is_valid_json_fragment() {
        let fp = Fingerprint {
            queue_depth: 32,
            ranks: 28,
            replication_factor: 2,
            delta_chain_max: 8,
            mode: "reactor",
            reactors: 28,
        };
        let doc = format!("{{\n  \"bench\": \"x\",\n{}  \"y\": 1\n}}", meta_line(&fp));
        let v = json::parse(&doc).unwrap();
        let meta = v.get("meta").unwrap();
        assert_eq!(
            meta.get("schema_version").unwrap().as_num(),
            Some(SCHEMA_VERSION as f64)
        );
        assert!(meta.get("git_commit").unwrap().as_str().is_some());
        let f = meta.get("fingerprint").unwrap();
        assert_eq!(f.get("queue_depth").unwrap().as_num(), Some(32.0));
        assert_eq!(f.get("replication_factor").unwrap().as_num(), Some(2.0));
        assert_eq!(f.get("mode").unwrap().as_str(), Some("reactor"));
        assert_eq!(f.get("reactors").unwrap().as_num(), Some(28.0));
    }

    #[test]
    fn git_commit_is_short_and_nonempty() {
        let c = git_commit();
        assert!(!c.is_empty());
        assert!(c.len() <= 40);
    }
}
