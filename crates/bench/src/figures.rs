//! One computation per paper figure/table.
//!
//! Each function regenerates a figure's series (or a table's rows) from the
//! models and, where the paper measured functional properties, from the
//! real runtime. DESIGN.md §4 maps each to the modules it exercises.

use baselines::model::StorageModel;
use baselines::{
    CrailModel, Ext4Model, GlusterFsModel, LustreModel, OrangeFsModel, Scenario, SpdkRawModel,
    XfsModel,
};
use nvmecr::config::DrilldownLevel;
use nvmecr::multilevel::MultiLevelPolicy;
use workloads::{multilevel_eval, CoMD, NvmeCrModel};

use crate::report::{FigureReport, Series, TableReport};

/// Process counts of the paper's scaling studies.
pub const SCALING_PROCS: [u32; 5] = [56, 112, 224, 336, 448];

fn bandwidth_gbs(s: &Scenario, t: simkit::SimTime) -> f64 {
    s.total_bytes() as f64 / t.as_secs() / 1e9
}

/// Figure 1: weak-scaling checkpoint bandwidth of OrangeFS and GlusterFS
/// vs. available hardware bandwidth.
pub fn fig1() -> FigureReport {
    let mut r = FigureReport::new(
        "Figure 1",
        "weak-scaling checkpoint bandwidth vs hardware peak",
        "procs",
        "bandwidth (GB/s)",
    );
    let orange = OrangeFsModel::new();
    let gluster = GlusterFsModel::new();
    let mut o = Vec::new();
    let mut g = Vec::new();
    let mut hw = Vec::new();
    for procs in SCALING_PROCS {
        let s = Scenario::weak_scaling(procs);
        o.push((
            f64::from(procs),
            bandwidth_gbs(&s, orange.checkpoint_makespan(&s)),
        ));
        g.push((
            f64::from(procs),
            bandwidth_gbs(&s, gluster.checkpoint_makespan(&s)),
        ));
        hw.push((f64::from(procs), s.hw_peak_write().as_bytes_per_sec() / 1e9));
    }
    r.push(Series::new("OrangeFS", o));
    r.push(Series::new("GlusterFS", g));
    r.push(Series::new("hardware", hw));
    r.note("paper: OrangeFS peaks at 41% of hardware, GlusterFS at 84% (§I-A)");
    r
}

/// Figure 7(a): checkpoint time across hugeblock sizes (28 procs, 512 MB
/// each, one local SSD).
pub fn fig7a() -> FigureReport {
    let mut r = FigureReport::new(
        "Figure 7(a)",
        "hugeblock size sweep, 28 procs x 512 MB, local SSD",
        "hugeblock (KiB)",
        "checkpoint time (s)",
    );
    let s = Scenario::single_node(512 << 20);
    let mut pts = Vec::new();
    for shift in 12..=20u32 {
        let bs = 1u64 << shift;
        let model = NvmeCrModel::local_with_block_size(bs);
        pts.push((bs as f64 / 1024.0, model.checkpoint_makespan(&s).as_secs()));
    }
    r.push(Series::new("NVMe-CR", pts));
    r.note("paper: 32 KiB optimal; 4 KiB ~7% slower (§IV-B)");
    r
}

/// Figure 7(b): load-imbalance coefficient of variation.
pub fn fig7b() -> FigureReport {
    let mut r = FigureReport::new(
        "Figure 7(b)",
        "load imbalance (CoV of per-server bytes)",
        "procs",
        "coefficient of variation",
    );
    let systems: Vec<(&str, Box<dyn StorageModel>)> = vec![
        ("NVMe-CR", Box::new(NvmeCrModel::full())),
        ("OrangeFS", Box::new(OrangeFsModel::new())),
        ("GlusterFS", Box::new(GlusterFsModel::new())),
    ];
    for (name, m) in systems {
        let pts = [28u32, 56, 112, 224, 448]
            .iter()
            .map(|&p| (f64::from(p), m.load_cov(&Scenario::weak_scaling(p))))
            .collect();
        r.push(Series::new(name, pts));
    }
    r.note("paper: NVMe-CR perfectly balanced; GlusterFS hash imbalance falls with concurrency (§IV-C)");
    r
}

/// Figure 7(c): single-node full-subscription dump time across checkpoint
/// sizes for NVMe-CR, XFS, ext4, and raw SPDK.
pub fn fig7c() -> FigureReport {
    let mut r = FigureReport::new(
        "Figure 7(c)",
        "direct access: dump time vs checkpoint size (28 procs, local SSD)",
        "ckpt size (MiB/proc)",
        "dump time (s)",
    );
    let systems: Vec<(&str, Box<dyn StorageModel>)> = vec![
        ("NVMe-CR", Box::new(NvmeCrModel::local())),
        ("SPDK", Box::new(SpdkRawModel::new())),
        ("XFS", Box::new(XfsModel::new())),
        ("ext4", Box::new(Ext4Model::new())),
    ];
    for (name, m) in systems {
        let pts = [32u64, 64, 128, 256, 512]
            .iter()
            .map(|&mb| {
                let s = Scenario::single_node(mb << 20);
                (mb as f64, m.checkpoint_makespan(&s).as_secs())
            })
            .collect();
        r.push(Series::new(name, pts));
    }
    let s = Scenario::single_node(512 << 20);
    let ext4_k = Ext4Model::new().kernel_time_fraction(&s) * 100.0;
    let xfs_k = XfsModel::new().kernel_time_fraction(&s) * 100.0;
    r.note(format!(
        "time in kernel at 512 MiB: ext4 {ext4_k:.1}%, XFS {xfs_k:.1}%, NVMe-CR ~10% (paper: 79 / 76.5 / 10)"
    ));
    r.note("paper: NVMe-CR 19% faster than XFS, 83% than ext4, ~= SPDK (§IV-D)");
    r
}

/// Figure 7(d): drilldown — cumulative optimizations over a kernel-FS-like
/// base, across process counts on one node.
pub fn fig7d() -> FigureReport {
    let mut r = FigureReport::new(
        "Figure 7(d)",
        "drilldown: impact of each optimization (512 MB/proc, local SSD)",
        "procs",
        "checkpoint time (s)",
    );
    for level in DrilldownLevel::ladder() {
        let pts = [1u32, 7, 14, 28]
            .iter()
            .map(|&p| {
                let s = Scenario {
                    servers: 1,
                    ..Scenario::new(p, 512 << 20)
                };
                let m = NvmeCrModel::local_at_level(level);
                (f64::from(p), m.checkpoint_makespan(&s).as_secs())
            })
            .collect();
        r.push(Series::new(level.label(), pts));
    }
    r.note("paper: userspace+private-ns up to 44%, provenance up to 17%, hugeblocks up to 62% (at low concurrency) (§IV-E)");
    r
}

/// Figure 8(a): NVMf overhead — local vs remote SSD, plus Crail.
pub fn fig8a() -> FigureReport {
    let mut r = FigureReport::new(
        "Figure 8(a)",
        "NVMf overhead: local vs remote SSD (28 procs)",
        "ckpt size (MiB/proc)",
        "dump time (s)",
    );
    let systems: Vec<(&str, Box<dyn StorageModel>)> = vec![
        ("NVMe-CR local", Box::new(NvmeCrModel::local())),
        ("NVMe-CR remote", Box::new(NvmeCrModel::full())),
        ("Crail remote", Box::new(CrailModel::new())),
    ];
    let sizes = [64u64, 128, 256, 512];
    let mut max_overhead: f64 = 0.0;
    let mut series: Vec<Series> = Vec::new();
    for (name, m) in systems {
        let pts: Vec<(f64, f64)> = sizes
            .iter()
            .map(|&mb| {
                let s = Scenario::single_node(mb << 20);
                (mb as f64, m.checkpoint_makespan(&s).as_secs())
            })
            .collect();
        series.push(Series::new(name, pts));
    }
    for (i, &mb) in sizes.iter().enumerate() {
        let local = series[0].points[i].1;
        let remote = series[1].points[i].1;
        max_overhead = max_overhead.max(remote / local - 1.0);
        let _ = mb;
    }
    for s in series {
        r.push(s);
    }
    r.note(format!(
        "max NVMf overhead {:.1}% (paper: below 3.5%, size-independent; Crail 5-10% above NVMe-CR)",
        max_overhead * 100.0
    ));
    r
}

/// Figure 8(b): file-create throughput under the N-N create storm.
pub fn fig8b() -> FigureReport {
    let mut r = FigureReport::new(
        "Figure 8(b)",
        "file create throughput (N-N create storm)",
        "procs",
        "creates per second",
    );
    let systems: Vec<(&str, Box<dyn StorageModel>)> = vec![
        ("NVMe-CR", Box::new(NvmeCrModel::full())),
        ("GlusterFS", Box::new(GlusterFsModel::new())),
        ("OrangeFS", Box::new(OrangeFsModel::new())),
    ];
    for (name, m) in systems {
        let pts = [28u32, 56, 112, 224, 448]
            .iter()
            .map(|&p| (f64::from(p), m.create_rate(&Scenario::weak_scaling(p), 10)))
            .collect();
        r.push(Series::new(name, pts));
    }
    r.note("paper: NVMe-CR 7x GlusterFS and 18x OrangeFS at 448 procs (§IV-G)");
    r
}

/// Figure 9: checkpoint and recovery efficiency, strong or weak scaling.
/// Returns `(checkpoint, recovery)` reports (9a/9b or 9c/9d).
pub fn fig9(strong: bool) -> (FigureReport, FigureReport) {
    let (mode, ids) = if strong {
        (
            "strong scaling (86 GB total over 10 ckpts)",
            ("Figure 9(a)", "Figure 9(b)"),
        )
    } else {
        (
            "weak scaling (156 MiB/proc/ckpt)",
            ("Figure 9(c)", "Figure 9(d)"),
        )
    };
    let mut ckpt = FigureReport::new(
        ids.0,
        format!("checkpoint efficiency, {mode}"),
        "procs",
        "efficiency (achieved / hardware peak)",
    );
    let mut rec = FigureReport::new(
        ids.1,
        format!("recovery efficiency, {mode}"),
        "procs",
        "efficiency (achieved / hardware peak)",
    );
    let systems: Vec<(&str, Box<dyn StorageModel>)> = vec![
        ("NVMe-CR", Box::new(NvmeCrModel::full())),
        ("GlusterFS", Box::new(GlusterFsModel::new())),
        ("OrangeFS", Box::new(OrangeFsModel::new())),
    ];
    for (name, m) in systems {
        let mut cp = Vec::new();
        let mut rp = Vec::new();
        for procs in [56u32, 112, 224, 448] {
            let s = if strong {
                Scenario::strong_scaling(procs)
            } else {
                Scenario::weak_scaling(procs)
            };
            cp.push((f64::from(procs), m.checkpoint_efficiency(&s)));
            rp.push((f64::from(procs), m.recovery_efficiency(&s)));
        }
        ckpt.push(Series::new(name, cp));
        rec.push(Series::new(name, rp));
    }
    ckpt.note("paper: NVMe-CR > 0.96 at 448; OrangeFS collapses under metadata burden (§IV-H)");
    rec.note("paper: NVMe-CR 0.99 (instant replay via coalescing); GlusterFS dips at 448 (§IV-H)");
    (ckpt, rec)
}

/// Table I: metadata overhead. When `functional` is true, NVMe-CR's
/// per-runtime numbers are *measured* from a real 56-rank run instead of
/// modelled.
pub fn table1(functional: bool) -> TableReport {
    let mut t = TableReport::new(
        "Table I",
        "metadata overhead with CoMD at 448 procs (MB)",
        &["per-server MB", "per-runtime MB", "DRAM/runtime MB"],
    );
    let s = Scenario::weak_scaling(448);
    let to_mb = |b: u64| b as f64 / 1e6;
    let o = OrangeFsModel::new().metadata_overhead(&s);
    t.row("OrangeFS", vec![to_mb(o.per_server_bytes), 0.0, 0.0]);
    let g = GlusterFsModel::new().metadata_overhead(&s);
    t.row("GlusterFS", vec![to_mb(g.per_server_bytes), 0.0, 0.0]);
    let n = NvmeCrModel::full().metadata_overhead(&s);
    t.row(
        "NVMe-CR (model)",
        vec![0.0, to_mb(n.per_runtime_bytes), 0.0],
    );
    if functional {
        if let Ok(rep) = workloads::driver::run_functional_checkpoints(56, 2, 2 << 20, &[]) {
            t.row(
                "NVMe-CR (measured)",
                vec![
                    0.0,
                    to_mb(rep.metadata_bytes / u64::from(rep.procs)),
                    to_mb(rep.dram_bytes / u64::from(rep.procs)),
                ],
            );
            t.note(
                "measured row: real 56-rank functional run (2 ckpts x 2 MiB), per-runtime averages",
            );
        }
    }
    t.note(
        "paper: OrangeFS 2686 MB/server, GlusterFS 3.5 MB/server, NVMe-CR ~445 MB/runtime (§IV-G)",
    );
    t.note("our snapshots are far more compact than the authors' DRAM-image checkpoints; shape (OrangeFS >> NVMe-CR >> GlusterFS per-server) is preserved");
    t
}

/// Table II: multi-level checkpointing at 448 procs (strong scaling, 10
/// checkpoints, 1-in-10 to Lustre).
pub fn table2() -> TableReport {
    let mut t = TableReport::new(
        "Table II",
        "multi-level checkpointing at 448 procs",
        &["ckpt time (s)", "recovery (s)", "progress rate"],
    );
    let s = Scenario::strong_scaling(448);
    let policy = MultiLevelPolicy::new(10);
    let compute = CoMD::strong_scaling(448).compute_interval();
    let systems: Vec<Box<dyn StorageModel>> = vec![
        Box::new(OrangeFsModel::new()),
        Box::new(GlusterFsModel::new()),
        Box::new(NvmeCrModel::full()),
    ];
    for m in &systems {
        let r = multilevel_eval(m.as_ref(), &s, policy, 10, compute);
        t.row(
            r.system,
            vec![
                r.checkpoint_time.as_secs(),
                r.recovery_time.as_secs(),
                r.progress_rate,
            ],
        );
    }
    // Coalescing ablation (§IV-I: "without coalescing, recovery takes 4s").
    let nc = multilevel_eval(&NvmeCrModel::without_coalescing(), &s, policy, 10, compute);
    t.row(
        "NVMe-CR (no coalescing)",
        vec![
            nc.checkpoint_time.as_secs(),
            nc.recovery_time.as_secs(),
            nc.progress_rate,
        ],
    );
    t.note("paper: ckpt 85.9 / 44.5 / 39.5 s; recovery 3.6 / 4.5 / 3.6 s (4.0 s without coalescing); progress 0.252 / 0.402 / 0.423");
    let lustre = LustreModel::new().checkpoint_makespan(&s).as_secs();
    t.note(format!(
        "Lustre tier-2 checkpoint: {lustre:.1} s (shared by all rows)"
    ));
    t
}

/// Ablation (DESIGN.md §5): buffered vs direct checkpoint writes — the
/// §III-D design choice. Buffering makes the *perceived* dump latency tiny
/// but leaves the whole checkpoint volatile until the background drain
/// finishes; at checkpoint-bound cadence it cannot raise the progress rate
/// (the drain still gates the next checkpoint), which is the paper's
/// "buffered IO reduces overall application progress rate" observation
/// plus the durability argument.
pub fn ablation_buffering() -> TableReport {
    let mut t = TableReport::new(
        "Ablation: buffering",
        "buffered vs direct writes (448 procs, weak scaling)",
        &[
            "perceived dump (s)",
            "progress rate",
            "at-risk window (s)",
            "GB at risk",
        ],
    );
    let s = Scenario::weak_scaling(448);
    let model = NvmeCrModel::full();
    let t_direct = model.checkpoint_makespan(&s).as_secs();
    let compute = CoMD::weak_scaling().compute_interval().as_secs();
    // Direct (the paper's design): the dump blocks the app; data is
    // durable the moment write() returns — no copy, no risk window.
    let pr_direct = compute / (compute + t_direct);
    t.row("direct (NVMe-CR)", vec![t_direct, pr_direct, 0.0, 0.0]);
    // Buffered + fsync: a checkpoint only counts once durable, so the
    // barrier waits for the drain anyway — buffering just *adds* the copy
    // (~10 GB/s node memory bandwidth shared by 28 ranks). This is the
    // configuration the paper's observation describes: "buffered IO
    // reduces overall application progress rate" (SIII-D).
    let memcpy = s.bytes_per_proc as f64 * 28.0 / 10e9;
    let t_buffered_durable = memcpy + t_direct;
    let pr_buffered_durable = compute / (compute + t_buffered_durable);
    t.row(
        "buffered + fsync barrier",
        vec![t_buffered_durable, pr_buffered_durable, 0.0, 0.0],
    );
    // Buffered without the barrier: the drain overlaps compute, so the
    // perceived dump is just the copy — but the entire checkpoint is
    // volatile until the drain completes, violating the guarantee that a
    // completed checkpoint is always recoverable.
    let drain = t_direct;
    let cycle = memcpy + compute.max(drain);
    let pr_unsafe = compute / cycle;
    t.row(
        "buffered, no barrier (unsafe)",
        vec![memcpy, pr_unsafe, drain, s.total_bytes() as f64 / 1e9],
    );
    t.note("with the durability barrier checkpointing requires, buffering only adds the copy; dropping the barrier trades a progress-rate win for an undurable checkpoint (SIII-D)");
    t
}

/// Ablation (DESIGN.md §5): placement policy under the NVMe-CR data plane —
/// what the storage balancer's round-robin buys over the baselines'
/// policies, all other mechanisms held equal.
pub fn ablation_placement() -> FigureReport {
    use baselines::dagutil;
    use baselines::spec::{DataPlaneSpec, PlacementPolicy};
    let mut r = FigureReport::new(
        "Ablation: placement",
        "checkpoint efficiency by placement policy (NVMe-CR data plane)",
        "procs",
        "efficiency",
    );
    let policies = [
        ("round-robin (balancer)", PlacementPolicy::RoundRobin),
        ("jump-hash", PlacementPolicy::JumpHash),
        ("striped 64K", PlacementPolicy::Striped { stripe: 64 << 10 }),
        ("single server", PlacementPolicy::SingleServer),
    ];
    for (name, placement) in policies {
        let pts = [56u32, 112, 224, 448]
            .iter()
            .map(|&p| {
                let s = Scenario::weak_scaling(p);
                let spec = DataPlaneSpec {
                    request_size: 32 << 10,
                    placement,
                    ..DataPlaneSpec::base("ablate")
                };
                (f64::from(p), dagutil::checkpoint_efficiency(&s, &spec))
            })
            .collect();
        r.push(Series::new(name, pts));
    }
    r.note("round-robin equals striping on balance but without per-stripe metadata; jump-hash pays imbalance; one server caps at 1/8 of the rack");
    r
}

/// Ablation (DESIGN.md §5): incremental checkpointing (\[31\], combinable
/// with NVMe-CR) — measured IO volume on the real filesystem for varying
/// dirty fractions.
pub fn ablation_incremental() -> TableReport {
    use microfs::{FsConfig, MemDevice, MicroFs};
    use workloads::IncrementalCheckpointer;
    let mut t = TableReport::new(
        "Ablation: incremental",
        "incremental checkpointing IO volume (16 MiB image, 64 KiB chunks, measured)",
        &["dirty %", "MiB written", "write fraction"],
    );
    let image_len = 16usize << 20;
    let chunk = 64usize << 10;
    let mut fs = MicroFs::format(MemDevice::new(128 << 20), FsConfig::default()).unwrap();
    let mut inc = IncrementalCheckpointer::new(image_len, chunk);
    let mut image = vec![0u8; image_len];
    let first = inc.checkpoint(&mut fs, "/inc.dat", &image).unwrap();
    t.row(
        "100 (first)",
        vec![
            100.0,
            first.bytes_written as f64 / (1 << 20) as f64,
            first.write_fraction(),
        ],
    );
    for dirty_pct in [1u32, 10, 50] {
        let dirty_chunks = (image_len / chunk) * dirty_pct as usize / 100;
        for c in 0..dirty_chunks {
            let idx = c * chunk * 100 / dirty_pct.max(1) as usize % image_len;
            image[idx] = image[idx].wrapping_add(1);
        }
        let r = inc.checkpoint(&mut fs, "/inc.dat", &image).unwrap();
        t.row(
            format!("{dirty_pct}"),
            vec![
                f64::from(dirty_pct),
                r.bytes_written as f64 / (1 << 20) as f64,
                r.write_fraction(),
            ],
        );
    }
    t.note(
        "IO volume tracks the dirty fraction; composes with provenance and coalescing unchanged",
    );
    t
}

/// Extension figure: progress rate across the ECP proxy-app suite
/// (§IV-A's "similar improvements as CoMD" claim made quantitative).
pub fn fig_apps() -> FigureReport {
    use workloads::PhasedApp;
    let mut r = FigureReport::new(
        "Extension: ECP suite",
        "progress rate across ECP proxy apps (448 procs)",
        "app (index: CoMD, AMG, Ember, ExaMiniMD, miniAMR)",
        "progress rate",
    );
    let systems: Vec<(&str, Box<dyn StorageModel>)> = vec![
        ("NVMe-CR", Box::new(NvmeCrModel::full())),
        ("GlusterFS", Box::new(GlusterFsModel::new())),
        ("OrangeFS", Box::new(OrangeFsModel::new())),
    ];
    let suite = PhasedApp::suite();
    for (name, m) in systems {
        let pts = suite
            .iter()
            .enumerate()
            .map(|(i, app)| {
                let s = Scenario::new(448, app.bytes_per_rank);
                (i as f64, app.progress_rate(m.checkpoint_makespan(&s)))
            })
            .collect();
        r.push(Series::new(name, pts));
    }
    r.note("paper §IV-A: AMG, Ember, ExaMiniMD, miniAMR \"have similar behavior and are likely to show similar improvements as CoMD\"");
    r
}

/// Ablation (DESIGN.md §5): one hardware IO queue per runtime instance
/// (§III-A Principle 3) vs a shared submission queue. A shared queue needs
/// a lock; under full-subscription contention each acquisition costs
/// microseconds of serialized time (cacheline bouncing), which the
/// per-instance-queue design eliminates by construction.
pub fn ablation_queues() -> TableReport {
    use simkit::{Dag, Stage};
    use ssd::{IoKind, SsdFacility};
    let mut t = TableReport::new(
        "Ablation: queues",
        "per-instance vs shared submission queue (56 procs x 64 MiB at 4 KiB, one SSD)",
        &["checkpoint (s)", "slowdown"],
    );
    // 4 KiB requests: the submission-rate-bound regime where queue-lock
    // contention actually shows (at hugeblock sizes the device, not the
    // queue, is the bottleneck — which is itself a point for hugeblocks).
    let run = |shared: bool| {
        let s = Scenario::single_node(64 << 20);
        let mut dag = Dag::new();
        let f = SsdFacility::install(&mut dag, &s.ssd);
        let lock = dag.resource();
        let req = 4u64 << 10;
        let n_req = (64u64 << 20).div_ceil(req);
        for _ in 0..56 {
            let mut stages = Vec::new();
            if shared {
                // Contended queue lock: ~3 us per acquisition under
                // 56-way contention, one per submitted request.
                stages.push(Stage::Seize {
                    res: lock,
                    hold: simkit::SimTime::micros(3.0) * n_req as f64,
                });
            }
            stages.extend(f.bulk_stages(IoKind::Write, 64 << 20, req, s.qd));
            dag.token(&[], stages);
        }
        dag.run().expect("queue ablation DAG").makespan().as_secs()
    };
    let private = run(false);
    let shared = run(true);
    t.row("per-instance queues", vec![private, 1.0]);
    t.row("shared queue + lock", vec![shared, shared / private]);
    t.note("Principle 3: a dedicated hardware queue per microfs instance removes submission-path synchronization entirely");
    t
}

/// Extension figure: NVMf overhead sensitivity to fabric speed. The paper
/// measures <3.5% on 100 Gbps EDR; this sweep shows where disaggregation
/// starts to cost — the crossover a slower-fabric deployment would hit.
pub fn fig_fabric_sensitivity() -> FigureReport {
    use fabric::NetConfig;
    use simkit::{Rate, SimTime};
    let mut r = FigureReport::new(
        "Extension: fabric sensitivity",
        "remote-over-local checkpoint overhead vs fabric speed (28 procs x 512 MB)",
        "link (Gbit/s)",
        "overhead vs local (%)",
    );
    let s0 = Scenario::single_node(512 << 20);
    let local = NvmeCrModel::local().checkpoint_makespan(&s0).as_secs();
    let mut pts = Vec::new();
    for gbit in [10.0f64, 25.0, 50.0, 100.0, 200.0] {
        let s = Scenario {
            net: NetConfig {
                link_bw: Rate::gbit_per_sec(gbit),
                base_latency: SimTime::micros(1.5),
                per_message_cpu: SimTime::micros(0.3),
                per_hop_latency: SimTime::micros(0.15),
            },
            ..s0.clone()
        };
        let remote = NvmeCrModel::full().checkpoint_makespan(&s).as_secs();
        pts.push((gbit, (remote / local - 1.0) * 100.0));
    }
    r.push(Series::new("NVMe-CR remote", pts));
    r.note("the paper's EDR (100 Gbit) sits deep in the flat region; ~20 Gbit is where the fabric starts gating one SSD");
    r
}

/// Extension figure: end-to-end machine efficiency under Young-optimal
/// checkpointing, across system MTBF — the paper's §I motivation run
/// through checkpointing theory with each storage system's measured dump
/// time.
pub fn fig_machine_efficiency() -> FigureReport {
    use simkit::SimTime;
    use workloads::interval::best_efficiency;
    let mut r = FigureReport::new(
        "Extension: machine efficiency",
        "machine efficiency at Young-optimal intervals (448 procs, weak scaling)",
        "system MTBF (minutes)",
        "machine efficiency",
    );
    let s = Scenario::weak_scaling(448);
    let systems: Vec<(&str, Box<dyn StorageModel>)> = vec![
        ("NVMe-CR", Box::new(NvmeCrModel::full())),
        ("GlusterFS", Box::new(GlusterFsModel::new())),
        ("OrangeFS", Box::new(OrangeFsModel::new())),
    ];
    for (name, m) in systems {
        let dump = m.checkpoint_makespan(&s);
        let pts = [5.0f64, 10.0, 30.0, 60.0, 240.0]
            .iter()
            .map(|&mins| (mins, best_efficiency(dump, SimTime::secs(mins * 60.0))))
            .collect();
        r.push(Series::new(name, pts));
    }
    r.note("\u{a7}I: exascale MTBF < 30 min; a faster checkpoint tier converts directly into retained compute");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_figure_renders() {
        // Smoke: each report builds and prints non-trivially. (Numeric
        // shape assertions live in the model crates' own tests.)
        for rep in [fig1(), fig7b(), fig8b()] {
            assert!(rep.to_string().len() > 100);
            assert!(!rep.series.is_empty());
        }
    }

    #[test]
    fn ablations_have_expected_directions() {
        let b = ablation_buffering();
        // Buffering's perceived latency is far lower, but progress rate is
        // not better at checkpoint-bound cadence, and risk is nonzero.
        let direct_pr = b.cell("direct (NVMe-CR)", "progress rate").unwrap();
        let durable_pr = b.cell("buffered + fsync barrier", "progress rate").unwrap();
        assert!(
            durable_pr < direct_pr,
            "with the durability barrier, buffering must lose: {durable_pr} vs {direct_pr}"
        );
        assert!(
            b.cell("buffered, no barrier (unsafe)", "GB at risk")
                .unwrap()
                > 50.0
        );
        assert_eq!(b.cell("direct (NVMe-CR)", "GB at risk").unwrap(), 0.0);
        let p = ablation_placement();
        let rr = p
            .series_named("round-robin (balancer)")
            .unwrap()
            .y_at(448.0)
            .unwrap();
        let jh = p.series_named("jump-hash").unwrap().y_at(448.0).unwrap();
        let single = p
            .series_named("single server")
            .unwrap()
            .y_at(448.0)
            .unwrap();
        assert!(rr > jh, "balancer beats hashing: {rr} vs {jh}");
        assert!(
            single < 0.15,
            "one server of eight caps at ~0.125: {single}"
        );
        let i = ablation_incremental();
        assert!(i.cell("1", "write fraction").unwrap() < 0.05);
        assert!(i.cell("100 (first)", "write fraction").unwrap() == 1.0);
        let q = ablation_queues();
        let slow = q.cell("shared queue + lock", "slowdown").unwrap();
        assert!(slow > 1.05, "shared queue must cost: {slow}");
        let me = fig_machine_efficiency();
        for mins in [5.0, 30.0] {
            let ours = me.series_named("NVMe-CR").unwrap().y_at(mins).unwrap();
            let orange = me.series_named("OrangeFS").unwrap().y_at(mins).unwrap();
            assert!(ours > orange, "at {mins} min MTBF: {ours} vs {orange}");
        }
        let f = fig_fabric_sensitivity();
        let series = f.series_named("NVMe-CR remote").unwrap();
        let at10 = series.y_at(10.0).unwrap();
        let at100 = series.y_at(100.0).unwrap();
        assert!(
            at10 > at100 + 5.0,
            "slow fabric must cost: {at10}% vs {at100}%"
        );
        assert!(
            at100 < 3.5,
            "EDR overhead stays under the paper's 3.5%: {at100}%"
        );
    }

    #[test]
    fn fig1_bandwidth_shapes() {
        let f = fig1();
        let hw = f.series_named("hardware").unwrap().y_at(448.0).unwrap();
        let orange_peak = f
            .series_named("OrangeFS")
            .unwrap()
            .points
            .iter()
            .map(|&(_, y)| y)
            .fold(0.0f64, f64::max);
        let gluster_peak = f
            .series_named("GlusterFS")
            .unwrap()
            .points
            .iter()
            .map(|&(_, y)| y)
            .fold(0.0f64, f64::max);
        // Paper: OrangeFS at best 41% of hardware, GlusterFS 84%.
        assert!(
            (0.30..0.55).contains(&(orange_peak / hw)),
            "{}",
            orange_peak / hw
        );
        assert!(
            (0.65..0.95).contains(&(gluster_peak / hw)),
            "{}",
            gluster_peak / hw
        );
    }

    #[test]
    fn fig7a_optimum_is_32k() {
        let f = fig7a();
        let s = f.series_named("NVMe-CR").unwrap();
        let best = s
            .points
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap()
            .0;
        assert_eq!(best, 32.0, "optimum hugeblock must be 32 KiB");
        let t4k = s.y_at(4.0).unwrap();
        let t32k = s.y_at(32.0).unwrap();
        assert!((1.04..1.15).contains(&(t4k / t32k)), "{}", t4k / t32k);
    }

    #[test]
    fn fig9_nvmecr_dominates_everywhere() {
        for strong in [true, false] {
            let (ckpt, rec) = fig9(strong);
            for report in [&ckpt, &rec] {
                let ours = report.series_named("NVMe-CR").unwrap();
                for other in ["GlusterFS", "OrangeFS"] {
                    let them = report.series_named(other).unwrap();
                    for &(x, y) in &ours.points {
                        let t = them.y_at(x).unwrap();
                        assert!(y > t, "{}: NVMe-CR {y} vs {other} {t} at {x}", report.id);
                    }
                }
            }
        }
    }

    #[test]
    fn table2_row_ordering_matches_paper() {
        let t = table2();
        let o = t.cell("OrangeFS", "ckpt time (s)").unwrap();
        let g = t.cell("GlusterFS", "ckpt time (s)").unwrap();
        let n = t.cell("NVMe-CR", "ckpt time (s)").unwrap();
        assert!(
            n < g && g < o,
            "NVMe-CR < GlusterFS < OrangeFS: {n} {g} {o}"
        );
        let pn = t.cell("NVMe-CR", "progress rate").unwrap();
        let po = t.cell("OrangeFS", "progress rate").unwrap();
        assert!(pn > po);
        // Coalescing ablation slows recovery.
        let r = t.cell("NVMe-CR", "recovery (s)").unwrap();
        let rn = t.cell("NVMe-CR (no coalescing)", "recovery (s)").unwrap();
        assert!(rn > r);
    }
}
