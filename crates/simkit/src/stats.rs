//! Online statistics used by every experiment harness.
//!
//! `OnlineStats` implements Welford's numerically stable one-pass algorithm
//! for mean and variance; the paper's load-imbalance metric (Figure 7b) is
//! the coefficient of variation it exposes.

/// One-pass mean/variance accumulator (Welford).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Build from a slice of samples.
    pub fn from_samples(xs: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Add a sample.
    pub fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite());
        self.n += 1;
        self.sum += x;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample sum.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 for fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation: `std_dev / mean`. Zero when the mean is
    /// zero (an all-zero load distribution is perfectly balanced).
    pub fn coeff_of_variation(&self) -> f64 {
        if self.mean.abs() < f64::EPSILON {
            0.0
        } else {
            self.std_dev() / self.mean
        }
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// Fixed-bucket histogram for latency distributions.
#[derive(Debug, Clone)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// A histogram with the given ascending bucket upper edges. Samples
    /// above the last edge land in an implicit overflow bucket.
    pub fn with_edges(edges: Vec<f64>) -> Self {
        assert!(!edges.is_empty(), "histogram needs at least one edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must be strictly ascending"
        );
        let n = edges.len();
        Histogram {
            edges,
            counts: vec![0; n + 1],
            total: 0,
        }
    }

    /// Record a sample.
    pub fn record(&mut self, x: f64) {
        let idx = self.edges.partition_point(|&e| e < x);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count in bucket `i` (the last index is the overflow bucket).
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Approximate quantile (`0.0..=1.0`) using bucket upper edges.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if self.total == 0 {
            return 0.0;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i < self.edges.len() {
                    self.edges[i]
                } else {
                    f64::INFINITY
                };
            }
        }
        f64::INFINITY
    }
}

/// Coefficient of variation of a slice, as used by the Figure 7b harness.
pub fn coefficient_of_variation(xs: &[f64]) -> f64 {
    OnlineStats::from_samples(xs).coeff_of_variation()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_and_variance_known_values() {
        let s = OnlineStats::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert!((s.coeff_of_variation() - 0.4).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn empty_and_single_are_degenerate() {
        let e = OnlineStats::new();
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.variance(), 0.0);
        assert_eq!(e.coeff_of_variation(), 0.0);
        let s = OnlineStats::from_samples(&[3.0]);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn perfectly_balanced_load_has_zero_cov() {
        assert_eq!(coefficient_of_variation(&[5.0; 16]), 0.0);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::with_edges(vec![1.0, 2.0, 4.0]);
        for x in [0.5, 1.5, 1.7, 3.0, 10.0] {
            h.record(x);
        }
        assert_eq!(h.total(), 5);
        assert_eq!(h.count(0), 1); // <= 1.0
        assert_eq!(h.count(1), 2); // (1, 2]
        assert_eq!(h.count(2), 1); // (2, 4]
        assert_eq!(h.count(3), 1); // overflow
        assert_eq!(h.quantile(0.2), 1.0);
        assert_eq!(h.quantile(0.6), 2.0);
        assert_eq!(h.quantile(1.0), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn histogram_rejects_bad_edges() {
        let _ = Histogram::with_edges(vec![2.0, 1.0]);
    }

    proptest! {
        /// Welford matches the naive two-pass computation.
        #[test]
        fn prop_matches_two_pass(xs in proptest::collection::vec(-1e3f64..1e3, 2..200)) {
            let s = OnlineStats::from_samples(&xs);
            let n = xs.len() as f64;
            let mean = xs.iter().sum::<f64>() / n;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
            prop_assert!((s.mean() - mean).abs() < 1e-6);
            prop_assert!((s.variance() - var).abs() < 1e-6);
        }

        /// Histogram never loses samples.
        #[test]
        fn prop_histogram_conserves(xs in proptest::collection::vec(0.0f64..100.0, 0..100)) {
            let mut h = Histogram::with_edges(vec![10.0, 20.0, 50.0]);
            for &x in &xs { h.record(x); }
            let bucket_sum: u64 = (0..4).map(|i| h.count(i)).sum();
            prop_assert_eq!(bucket_sum, xs.len() as u64);
        }
    }
}
