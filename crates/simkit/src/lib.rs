//! # simkit — deterministic discrete-event simulation toolkit
//!
//! This crate is the substrate under every cluster-scale experiment in the
//! NVMe-CR reproduction. It deliberately knows nothing about storage: it
//! provides a small vocabulary of *timed contention primitives* and an
//! event-driven engine that executes dependency DAGs of work tokens against
//! them.
//!
//! The vocabulary was chosen to cover exactly the mechanisms the paper's
//! evaluation depends on:
//!
//! * [`exec::Stage::Delay`] — unconditional latency (CPU cost, wire latency).
//! * [`exec::Stage::Seize`] — a single-server FIFO resource (an SSD
//!   controller's command processor, a metadata server, a directory lock).
//! * [`exec::Stage::Acquire`]/[`exec::Stage::Release`] — a counting
//!   semaphore (device staging-RAM slots, bounded queue depth).
//! * [`exec::Stage::Xfer`] — a processor-sharing bandwidth pipe with an
//!   optional per-stream rate cap (a flash-channel array, a network link).
//!   Sharing is max-min fair (water-filling), recomputed whenever the active
//!   set changes.
//!
//! Tokens ([`exec::Dag::token`]) carry a stage list and depend on other
//! tokens; a token becomes runnable when all of its dependencies complete.
//! Per-process sequential programs, bounded pipelining (a sliding QD window)
//! and barriers are all expressible as dependency edges.
//!
//! Determinism: the engine breaks event-time ties by insertion sequence
//! number, uses no OS time source, and all randomness flows through
//! explicitly seeded [`rng`] helpers, so every simulation run is exactly
//! reproducible.
//!
//! ```
//! use simkit::{Dag, Rate, Stage};
//!
//! // Two clients share a 100 MiB/s device; each also pays 5 us of
//! // serialized controller time.
//! let mut dag = Dag::new();
//! let controller = dag.resource();
//! let device = dag.pipe(Rate::mib_per_sec(100.0));
//! let a = dag.token(&[], vec![Stage::seize_us(controller, 5.0), Stage::xfer(device, 50 << 20)]);
//! let b = dag.token(&[], vec![Stage::seize_us(controller, 5.0), Stage::xfer(device, 50 << 20)]);
//! let result = dag.run().unwrap();
//! // 100 MiB through a 100 MiB/s pipe: ~1 s makespan.
//! assert!((result.makespan().as_secs() - 1.0).abs() < 1e-3);
//! assert!(result.completion(a) <= result.completion(b));
//! ```

pub mod queue;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

pub mod exec;

pub use exec::{
    Dag, Engine, PipeId, PoolId, ResId, RunResult, ShardModel, ShardReport, Stage, TokenId,
    TraceEvent,
};
pub use resource::FifoTimeline;
pub use stats::OnlineStats;
pub use time::{Rate, SimTime};
