//! Token-DAG simulation: build a dependency graph of timed work and run it.
//!
//! A [`Dag`] declares three kinds of contended facilities —
//!
//! * **resources**: single-server FIFO queues ([`Stage::Seize`]),
//! * **pools**: counting semaphores with FIFO waiters
//!   ([`Stage::Acquire`] / [`Stage::Release`]),
//! * **pipes**: bandwidth shared max-min fairly among concurrent transfers,
//!   each optionally rate-capped ([`Stage::Xfer`]) —
//!
//! and a set of **tokens**, each a sequential list of stages that starts once
//! all of its dependency tokens complete (and not before its optional
//! `start_after` time). The [`Engine`] executes the whole DAG and reports
//! per-token completion times plus facility utilization.
//!
//! Domain crates compile storage behaviour down to this vocabulary: an SSD
//! is a command-processor resource + a staging-RAM pool + a channel-array
//! pipe; a network link is a pipe; a metadata server is a resource.

mod engine;
mod pipe;
pub mod shard;

pub use engine::{Engine, RunResult, SimError, TraceEvent};
pub(crate) use pipe::PsPipe;
pub use shard::{ShardModel, ShardReport};

use crate::time::{Rate, SimTime};

/// Handle to a single-server FIFO resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResId(pub(crate) usize);

/// Handle to a counting-semaphore pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolId(pub(crate) usize);

/// Handle to a shared-bandwidth pipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PipeId(pub(crate) usize);

/// Handle to a work token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TokenId(pub(crate) usize);

impl TokenId {
    /// Index form, for storing results keyed by token.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One step in a token's sequential program.
#[derive(Debug, Clone)]
pub enum Stage {
    /// Unconditional latency (CPU time, wire latency, think time).
    Delay(SimTime),
    /// Occupy a FIFO single-server resource for `hold`.
    Seize { res: ResId, hold: SimTime },
    /// Take `n` units from a pool, waiting FIFO if unavailable.
    Acquire { pool: PoolId, n: u64 },
    /// Return `n` units to a pool.
    Release { pool: PoolId, n: u64 },
    /// Move `bytes` through a pipe; bandwidth is shared max-min fairly with
    /// all concurrently active transfers, with an optional per-stream cap.
    Xfer {
        pipe: PipeId,
        bytes: u64,
        cap: Option<Rate>,
    },
}

impl Stage {
    /// Convenience: a delay of `us` microseconds.
    pub fn delay_us(us: f64) -> Stage {
        Stage::Delay(SimTime::micros(us))
    }

    /// Convenience: seize `res` for `us` microseconds.
    pub fn seize_us(res: ResId, us: f64) -> Stage {
        Stage::Seize {
            res,
            hold: SimTime::micros(us),
        }
    }

    /// Convenience: an uncapped transfer.
    pub fn xfer(pipe: PipeId, bytes: u64) -> Stage {
        Stage::Xfer {
            pipe,
            bytes,
            cap: None,
        }
    }

    /// Convenience: a rate-capped transfer.
    pub fn xfer_capped(pipe: PipeId, bytes: u64, cap: Rate) -> Stage {
        Stage::Xfer {
            pipe,
            bytes,
            cap: Some(cap),
        }
    }
}

pub(crate) struct TokenSpec {
    pub deps: Vec<TokenId>,
    pub start_after: SimTime,
    pub stages: Vec<Stage>,
}

/// A simulation model under construction.
#[derive(Default)]
pub struct Dag {
    pub(crate) n_resources: usize,
    pub(crate) pool_caps: Vec<u64>,
    pub(crate) pipe_rates: Vec<Rate>,
    pub(crate) tokens: Vec<TokenSpec>,
}

impl Dag {
    /// An empty model.
    pub fn new() -> Self {
        Dag::default()
    }

    /// Declare a FIFO single-server resource.
    pub fn resource(&mut self) -> ResId {
        self.n_resources += 1;
        ResId(self.n_resources - 1)
    }

    /// Declare a counting semaphore with `capacity` units.
    pub fn pool(&mut self, capacity: u64) -> PoolId {
        assert!(capacity > 0, "pool capacity must be positive");
        self.pool_caps.push(capacity);
        PoolId(self.pool_caps.len() - 1)
    }

    /// Declare a shared-bandwidth pipe with aggregate rate `bw`.
    pub fn pipe(&mut self, bw: Rate) -> PipeId {
        self.pipe_rates.push(bw);
        PipeId(self.pipe_rates.len() - 1)
    }

    /// Add a token that starts when all `deps` have completed.
    pub fn token(&mut self, deps: &[TokenId], stages: Vec<Stage>) -> TokenId {
        self.token_at(SimTime::ZERO, deps, stages)
    }

    /// Add a token that starts at the later of `start_after` and the
    /// completion of all `deps`.
    pub fn token_at(
        &mut self,
        start_after: SimTime,
        deps: &[TokenId],
        stages: Vec<Stage>,
    ) -> TokenId {
        let id = TokenId(self.tokens.len());
        for d in deps {
            assert!(d.0 < id.0, "dependency on not-yet-declared token");
        }
        self.validate_stages(&stages);
        self.tokens.push(TokenSpec {
            deps: deps.to_vec(),
            start_after,
            stages,
        });
        id
    }

    /// Number of tokens declared so far.
    pub fn token_count(&self) -> usize {
        self.tokens.len()
    }

    fn validate_stages(&self, stages: &[Stage]) {
        for s in stages {
            match *s {
                Stage::Seize { res, .. } => {
                    assert!(res.0 < self.n_resources, "unknown resource {res:?}")
                }
                Stage::Acquire { pool, n } => {
                    assert!(pool.0 < self.pool_caps.len(), "unknown pool {pool:?}");
                    assert!(
                        n <= self.pool_caps[pool.0],
                        "acquire of {n} exceeds pool capacity {}",
                        self.pool_caps[pool.0]
                    );
                }
                Stage::Release { pool, .. } => {
                    assert!(pool.0 < self.pool_caps.len(), "unknown pool {pool:?}")
                }
                Stage::Xfer { pipe, .. } => {
                    assert!(pipe.0 < self.pipe_rates.len(), "unknown pipe {pipe:?}")
                }
                Stage::Delay(_) => {}
            }
        }
    }

    /// Execute the DAG to completion.
    pub fn run(self) -> Result<RunResult, SimError> {
        Engine::new(self).run()
    }
}
