//! The event loop that executes a [`Dag`].

use std::collections::VecDeque;
use std::fmt;

use crate::queue::EventQueue;
use crate::time::SimTime;

use super::{Dag, PipeId, PsPipe, ResId, Stage, TokenId};

/// Why a run could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The event queue drained with tokens still blocked — a pool deadlock
    /// or a release that never happens.
    Deadlock {
        /// Tokens that never completed.
        stuck: Vec<TokenId>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { stuck } => {
                write!(
                    f,
                    "simulation deadlocked with {} stuck token(s)",
                    stuck.len()
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

enum Event {
    Advance(TokenId),
    PipeWake { pipe: PipeId, epoch: u64 },
}

struct TokenState {
    deps_remaining: usize,
    stage_idx: usize,
    done_at: Option<SimTime>,
}

struct Pool {
    available: u64,
    capacity: u64,
    waiters: VecDeque<(TokenId, u64)>,
}

/// One recorded scheduling decision (with [`Engine::with_trace`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// When the token completed.
    pub at: SimTime,
    /// Which token.
    pub token: TokenId,
}

/// Executes a [`Dag`]; usually invoked via [`Dag::run`].
pub struct Engine {
    dag: Dag,
    now: SimTime,
    events: EventQueue<Event>,
    tokens: Vec<TokenState>,
    children: Vec<Vec<TokenId>>,
    res_free: Vec<SimTime>,
    res_busy: Vec<SimTime>,
    pools: Vec<Pool>,
    pipes: Vec<PsPipe>,
    completed: usize,
    trace: Option<Vec<TraceEvent>>,
}

impl Engine {
    /// Prepare a run of `dag`.
    pub fn new(dag: Dag) -> Self {
        let n = dag.tokens.len();
        let mut children = vec![Vec::new(); n];
        let mut tokens = Vec::with_capacity(n);
        for (i, spec) in dag.tokens.iter().enumerate() {
            for d in &spec.deps {
                children[d.0].push(TokenId(i));
            }
            tokens.push(TokenState {
                deps_remaining: spec.deps.len(),
                stage_idx: 0,
                done_at: None,
            });
        }
        let res_free = vec![SimTime::ZERO; dag.n_resources];
        let res_busy = vec![SimTime::ZERO; dag.n_resources];
        let pools = dag
            .pool_caps
            .iter()
            .map(|&c| Pool {
                available: c,
                capacity: c,
                waiters: VecDeque::new(),
            })
            .collect();
        let pipes = dag.pipe_rates.iter().map(|&r| PsPipe::new(r)).collect();
        Engine {
            dag,
            now: SimTime::ZERO,
            events: EventQueue::new(),
            tokens,
            children,
            res_free,
            res_busy,
            pools,
            pipes,
            completed: 0,
            trace: None,
        }
    }

    /// Record a completion trace (token, time) for model debugging; the
    /// trace is returned in [`RunResult::trace`].
    pub fn with_trace(mut self) -> Self {
        self.trace = Some(Vec::new());
        self
    }

    /// Run to completion.
    pub fn run(mut self) -> Result<RunResult, SimError> {
        // Seed: every token with no dependencies starts at its start_after.
        for i in 0..self.tokens.len() {
            if self.tokens[i].deps_remaining == 0 {
                self.events
                    .push(self.dag.tokens[i].start_after, Event::Advance(TokenId(i)));
            }
        }
        while let Some((at, ev)) = self.events.pop() {
            debug_assert!(at >= self.now, "time went backwards");
            self.now = at;
            match ev {
                Event::Advance(t) => self.advance(t),
                Event::PipeWake { pipe, epoch } => self.pipe_wake(pipe, epoch),
            }
        }
        if self.completed != self.tokens.len() {
            let stuck = self
                .tokens
                .iter()
                .enumerate()
                .filter(|(_, s)| s.done_at.is_none())
                .map(|(i, _)| TokenId(i))
                .collect();
            return Err(SimError::Deadlock { stuck });
        }
        let makespan = self
            .tokens
            .iter()
            .filter_map(|s| s.done_at)
            .max()
            .unwrap_or(SimTime::ZERO);
        Ok(RunResult {
            completions: self.tokens.iter().map(|s| s.done_at.unwrap()).collect(),
            makespan,
            res_busy: self.res_busy,
            pipe_bytes: self.pipes.iter().map(|p| p.bytes_moved()).collect(),
            pipe_busy: self.pipes.iter().map(|p| p.busy_time()).collect(),
            trace: self.trace,
        })
    }

    /// Process token stages inline until it blocks or completes.
    fn advance(&mut self, t: TokenId) {
        loop {
            let idx = self.tokens[t.0].stage_idx;
            let Some(stage) = self.dag.tokens[t.0].stages.get(idx).cloned() else {
                self.complete(t);
                return;
            };
            match stage {
                Stage::Delay(d) => {
                    self.tokens[t.0].stage_idx += 1;
                    if d == SimTime::ZERO {
                        continue;
                    }
                    self.events.push(self.now + d, Event::Advance(t));
                    return;
                }
                Stage::Seize { res, hold } => {
                    self.tokens[t.0].stage_idx += 1;
                    let start = self.now.max(self.res_free[res.0]);
                    let done = start + hold;
                    self.res_free[res.0] = done;
                    self.res_busy[res.0] += hold;
                    if done == self.now {
                        continue;
                    }
                    self.events.push(done, Event::Advance(t));
                    return;
                }
                Stage::Acquire { pool, n } => {
                    let p = &mut self.pools[pool.0];
                    if p.waiters.is_empty() && p.available >= n {
                        p.available -= n;
                        self.tokens[t.0].stage_idx += 1;
                        continue;
                    }
                    // FIFO: join the wait queue; resume via a Release grant.
                    p.waiters.push_back((t, n));
                    return;
                }
                Stage::Release { pool, n } => {
                    self.tokens[t.0].stage_idx += 1;
                    let p = &mut self.pools[pool.0];
                    p.available = (p.available + n).min(p.capacity);
                    // Grant as many FIFO waiters as now fit; they resume at
                    // the current time via ordinary events (deterministic
                    // FIFO tie-breaking keeps grants in order).
                    while let Some(&(w, wn)) = p.waiters.front() {
                        if p.available >= wn {
                            p.available -= wn;
                            p.waiters.pop_front();
                            self.tokens[w.0].stage_idx += 1;
                            self.events.push(self.now, Event::Advance(w));
                        } else {
                            break;
                        }
                    }
                    continue;
                }
                Stage::Xfer { pipe, bytes, cap } => {
                    self.tokens[t.0].stage_idx += 1;
                    if bytes == 0 {
                        continue;
                    }
                    self.pipes[pipe.0].add(self.now, t, bytes, cap);
                    self.schedule_pipe_wake(pipe);
                    return;
                }
            }
        }
    }

    fn pipe_wake(&mut self, pipe: PipeId, epoch: u64) {
        if self.pipes[pipe.0].epoch != epoch {
            return; // Stale wake-up: membership changed since scheduling.
        }
        let finished = self.pipes[pipe.0].harvest(self.now);
        for t in finished {
            self.events.push(self.now, Event::Advance(t));
        }
        self.schedule_pipe_wake(pipe);
    }

    fn schedule_pipe_wake(&mut self, pipe: PipeId) {
        let p = &self.pipes[pipe.0];
        if let Some(at) = p.next_completion(self.now) {
            self.events.push(
                at.max(self.now),
                Event::PipeWake {
                    pipe,
                    epoch: p.epoch,
                },
            );
        }
    }

    fn complete(&mut self, t: TokenId) {
        debug_assert!(self.tokens[t.0].done_at.is_none());
        self.tokens[t.0].done_at = Some(self.now);
        if let Some(trace) = self.trace.as_mut() {
            trace.push(TraceEvent {
                at: self.now,
                token: t,
            });
        }
        self.completed += 1;
        for i in 0..self.children[t.0].len() {
            let c = self.children[t.0][i];
            self.tokens[c.0].deps_remaining -= 1;
            if self.tokens[c.0].deps_remaining == 0 {
                let at = self.now.max(self.dag.tokens[c.0].start_after);
                self.events.push(at, Event::Advance(c));
            }
        }
    }
}

/// Results of a completed run.
#[derive(Debug, Clone)]
pub struct RunResult {
    completions: Vec<SimTime>,
    makespan: SimTime,
    res_busy: Vec<SimTime>,
    pipe_bytes: Vec<f64>,
    pipe_busy: Vec<SimTime>,
    trace: Option<Vec<TraceEvent>>,
}

impl RunResult {
    /// Completion time of one token.
    pub fn completion(&self, t: TokenId) -> SimTime {
        self.completions[t.0]
    }

    /// Completion times of all tokens, indexed by token.
    pub fn completions(&self) -> &[SimTime] {
        &self.completions
    }

    /// Time the last token completed.
    pub fn makespan(&self) -> SimTime {
        self.makespan
    }

    /// Total busy time of a resource.
    pub fn resource_busy(&self, r: ResId) -> SimTime {
        self.res_busy[r.0]
    }

    /// Total bytes moved through a pipe.
    pub fn pipe_bytes(&self, p: PipeId) -> f64 {
        self.pipe_bytes[p.0]
    }

    /// Total time a pipe had at least one active transfer.
    pub fn pipe_busy(&self, p: PipeId) -> SimTime {
        self.pipe_busy[p.0]
    }

    /// Completion trace, if the run was started with
    /// [`Engine::with_trace`]; ordered by completion time.
    pub fn trace(&self) -> Option<&[TraceEvent]> {
        self.trace.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Rate;

    #[test]
    fn sequential_delays_accumulate() {
        let mut dag = Dag::new();
        let t = dag.token(
            &[],
            vec![
                Stage::delay_us(5.0),
                Stage::delay_us(7.0),
                Stage::delay_us(8.0),
            ],
        );
        let r = dag.run().unwrap();
        assert!((r.completion(t).as_micros() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn dependencies_serialize_tokens() {
        let mut dag = Dag::new();
        let a = dag.token(&[], vec![Stage::delay_us(10.0)]);
        let b = dag.token(&[a], vec![Stage::delay_us(10.0)]);
        let c = dag.token(&[a, b], vec![Stage::delay_us(10.0)]);
        let r = dag.run().unwrap();
        assert!((r.completion(c).as_micros() - 30.0).abs() < 1e-9);
        assert_eq!(r.makespan(), r.completion(c));
    }

    #[test]
    fn start_after_delays_a_root_token() {
        let mut dag = Dag::new();
        let t = dag.token_at(SimTime::millis(2.0), &[], vec![Stage::delay_us(1.0)]);
        let r = dag.run().unwrap();
        assert!((r.completion(t).as_micros() - 2001.0).abs() < 1e-9);
    }

    #[test]
    fn seize_is_fifo_and_serializes() {
        let mut dag = Dag::new();
        let res = dag.resource();
        let a = dag.token(&[], vec![Stage::seize_us(res, 10.0)]);
        let b = dag.token(&[], vec![Stage::seize_us(res, 10.0)]);
        let c = dag.token(&[], vec![Stage::seize_us(res, 10.0)]);
        let r = dag.run().unwrap();
        assert!((r.completion(a).as_micros() - 10.0).abs() < 1e-9);
        assert!((r.completion(b).as_micros() - 20.0).abs() < 1e-9);
        assert!((r.completion(c).as_micros() - 30.0).abs() < 1e-9);
        assert!((r.resource_busy(res).as_micros() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn pipe_shares_bandwidth_across_tokens() {
        let mut dag = Dag::new();
        let pipe = dag.pipe(Rate::mib_per_sec(100.0));
        let a = dag.token(&[], vec![Stage::xfer(pipe, 50 << 20)]);
        let b = dag.token(&[], vec![Stage::xfer(pipe, 50 << 20)]);
        let r = dag.run().unwrap();
        assert!((r.completion(a).as_secs() - 1.0).abs() < 1e-6);
        assert!((r.completion(b).as_secs() - 1.0).abs() < 1e-6);
        assert!((r.pipe_bytes(pipe) - (100u64 << 20) as f64).abs() < 2.0);
        assert!((r.pipe_busy(pipe).as_secs() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn capped_transfer_cannot_exceed_cap() {
        let mut dag = Dag::new();
        let pipe = dag.pipe(Rate::mib_per_sec(100.0));
        let t = dag.token(
            &[],
            vec![Stage::xfer_capped(pipe, 10 << 20, Rate::mib_per_sec(10.0))],
        );
        let r = dag.run().unwrap();
        assert!((r.completion(t).as_secs() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn pool_bounds_concurrency_fifo() {
        // Pool of 1 unit: three tokens each hold it for 10us of pipe-free
        // delay; they must serialize.
        let mut dag = Dag::new();
        let pool = dag.pool(1);
        let mk = |dag: &mut Dag| {
            dag.token(
                &[],
                vec![
                    Stage::Acquire { pool, n: 1 },
                    Stage::delay_us(10.0),
                    Stage::Release { pool, n: 1 },
                ],
            )
        };
        let a = mk(&mut dag);
        let b = mk(&mut dag);
        let c = mk(&mut dag);
        let r = dag.run().unwrap();
        assert!((r.completion(a).as_micros() - 10.0).abs() < 1e-9);
        assert!((r.completion(b).as_micros() - 20.0).abs() < 1e-9);
        assert!((r.completion(c).as_micros() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn deadlock_is_detected() {
        let mut dag = Dag::new();
        let pool = dag.pool(1);
        // Acquires two units one at a time without ever releasing: the
        // second acquire can never be satisfied.
        let _a = dag.token(
            &[],
            vec![Stage::Acquire { pool, n: 1 }, Stage::Acquire { pool, n: 1 }],
        );
        match dag.run() {
            Err(SimError::Deadlock { stuck }) => assert_eq!(stuck.len(), 1),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn sliding_window_pipelining_via_deps() {
        // 4 transfers from one "process", window of 2 (token i depends on
        // token i-2): with a dedicated pipe each takes 1s, so the chain
        // finishes at 2s, not 4s.
        let mut dag = Dag::new();
        let pipe = dag.pipe(Rate::mib_per_sec(100.0));
        let mut ids: Vec<TokenId> = Vec::new();
        for i in 0..4 {
            let deps: Vec<TokenId> = if i >= 2 { vec![ids[i - 2]] } else { vec![] };
            // Two concurrent 50 MiB transfers share the 100 MiB/s pipe.
            ids.push(dag.token(&deps, vec![Stage::xfer(pipe, 50 << 20)]));
        }
        let r = dag.run().unwrap();
        assert!((r.makespan().as_secs() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn work_conservation_many_streams() {
        // 28 tokens, 10 MiB each, on a 100 MiB/s pipe: makespan must be
        // exactly total/bandwidth because the pipe is always backlogged.
        let mut dag = Dag::new();
        let pipe = dag.pipe(Rate::mib_per_sec(100.0));
        for _ in 0..28 {
            dag.token(&[], vec![Stage::xfer(pipe, 10 << 20)]);
        }
        let r = dag.run().unwrap();
        assert!((r.makespan().as_secs() - 2.8).abs() < 1e-6);
    }

    #[test]
    fn zero_byte_xfer_and_zero_delay_complete_instantly() {
        let mut dag = Dag::new();
        let pipe = dag.pipe(Rate::mib_per_sec(1.0));
        let t = dag.token(&[], vec![Stage::xfer(pipe, 0), Stage::Delay(SimTime::ZERO)]);
        let r = dag.run().unwrap();
        assert_eq!(r.completion(t), SimTime::ZERO);
    }

    #[test]
    fn trace_records_completions_in_time_order() {
        let mut dag = Dag::new();
        let res = dag.resource();
        let ids: Vec<TokenId> = (0..5)
            .map(|i| dag.token(&[], vec![Stage::seize_us(res, 10.0 * (i + 1) as f64)]))
            .collect();
        let r = Engine::new(dag).with_trace().run().unwrap();
        let trace = r.trace().expect("tracing enabled");
        assert_eq!(trace.len(), 5);
        for w in trace.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        // FIFO resource: tokens complete in submission order.
        let order: Vec<TokenId> = trace.iter().map(|e| e.token).collect();
        assert_eq!(order, ids);
        // Without tracing, no trace is carried.
        let mut dag = Dag::new();
        dag.token(&[], vec![Stage::delay_us(1.0)]);
        assert!(dag.run().unwrap().trace().is_none());
    }

    #[test]
    fn determinism_same_dag_same_result() {
        let build = || {
            let mut dag = Dag::new();
            let res = dag.resource();
            let pipe = dag.pipe(Rate::mib_per_sec(37.0));
            let pool = dag.pool(3);
            for i in 0..50 {
                dag.token(
                    &[],
                    vec![
                        Stage::Acquire { pool, n: 1 },
                        Stage::seize_us(res, 1.0 + i as f64 * 0.1),
                        Stage::xfer(pipe, 1 << 20),
                        Stage::Release { pool, n: 1 },
                    ],
                );
            }
            dag.run().unwrap()
        };
        let a = build();
        let b = build();
        assert_eq!(a.completions(), b.completions());
    }
}
