//! Shard-per-core reactor model: virtual ranks on a fixed core budget.
//!
//! The real runtime multiplexes rank state machines onto N run-to-completion
//! reactors (crate `nvmecr`, `reactor` module); this model compiles one
//! checkpoint round of that architecture down to the token-DAG vocabulary so
//! rank counts far beyond one node's cores — 1k to 10k — can be swept
//! deterministically. Each virtual rank is one token:
//!
//! * advancing the rank's state machine costs CPU on its home **reactor**
//!   (a single-server [`ResId`] — run-to-completion means no preemption),
//! * each hugeblock chunk then moves through the rank's **SSD shard**
//!   (a shared-bandwidth [`PipeId`], max-min fair among the ranks mapped to
//!   that shard).
//!
//! Ranks are assigned round-robin (`rank % reactors`, `rank % shards`),
//! matching [`ReactorPool::drive`]'s distribution. Because every rank adds
//! the same CPU and byte budget while the core and shard counts stay fixed,
//! the per-rank makespan stays flat as ranks scale — the property the
//! reactor-smoke CI gate asserts on the emitted sweep.
//!
//! [`ReactorPool::drive`]: ../../nvmecr/reactor/struct.ReactorPool.html

use crate::exec::{Dag, RunResult, SimError, Stage};
use crate::time::{Rate, SimTime};

/// Shape of one simulated checkpoint round.
#[derive(Debug, Clone)]
pub struct ShardModel {
    /// Reactor cores (single-server resources).
    pub reactors: usize,
    /// SSD shard queues (shared-bandwidth pipes).
    pub shards: usize,
    /// Checkpoint bytes each rank writes in the round.
    pub per_rank_bytes: u64,
    /// Bytes moved per state-machine step (submission-window worth of
    /// hugeblocks; coarser than the wire's 32 KiB so 10k-rank DAGs stay
    /// small).
    pub chunk_bytes: u64,
    /// Reactor CPU to advance one rank machine by one step (post the
    /// window, poll the CQ, retire completions).
    pub step_cpu: SimTime,
    /// Aggregate bandwidth of each SSD shard.
    pub shard_bw: Rate,
}

impl Default for ShardModel {
    fn default() -> Self {
        // 28 cores / 8 shards is the paper testbed; 3.2 GiB/s per shard
        // puts the 8-shard aggregate at the ~25 GiB/s the device model's
        // channel array sustains.
        ShardModel {
            reactors: 28,
            shards: 8,
            per_rank_bytes: 256 << 20,
            chunk_bytes: 32 << 20,
            step_cpu: SimTime::micros(20.0),
            shard_bw: Rate::gib_per_sec(3.2),
        }
    }
}

/// Outcome of one simulated round.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Virtual ranks driven.
    pub ranks: usize,
    /// Wall-clock of the round.
    pub makespan: SimTime,
    /// Makespan divided by rank count — the "flat per-rank cost" series.
    pub per_rank_secs: f64,
    /// Busy time of each reactor core.
    pub reactor_busy: Vec<SimTime>,
    /// Bytes each shard moved.
    pub shard_bytes: Vec<f64>,
}

impl ShardReport {
    /// Aggregate write bandwidth of the round in GiB/s.
    pub fn gib_per_sec(&self) -> f64 {
        let total: f64 = self.shard_bytes.iter().sum();
        total / self.makespan.as_secs() / (1u64 << 30) as f64
    }

    /// Max/mean busy-time imbalance across reactors (1.0 = perfect).
    pub fn reactor_imbalance(&self) -> f64 {
        let busy: Vec<f64> = self.reactor_busy.iter().map(|t| t.as_secs()).collect();
        let mean = busy.iter().sum::<f64>() / busy.len() as f64;
        let max = busy.iter().cloned().fold(0.0, f64::max);
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

impl ShardModel {
    /// Simulate one checkpoint round of `ranks` virtual ranks.
    pub fn simulate(&self, ranks: usize) -> Result<ShardReport, SimError> {
        assert!(ranks > 0, "simulate needs at least one rank");
        assert!(self.reactors > 0 && self.shards > 0);
        let mut dag = Dag::new();
        let reactors: Vec<_> = (0..self.reactors).map(|_| dag.resource()).collect();
        let shards: Vec<_> = (0..self.shards).map(|_| dag.pipe(self.shard_bw)).collect();
        let chunks = self.per_rank_bytes.div_ceil(self.chunk_bytes).max(1);
        for rank in 0..ranks {
            let core = reactors[rank % self.reactors];
            let shard = shards[rank % self.shards];
            let mut stages = Vec::with_capacity(2 * chunks as usize);
            let mut left = self.per_rank_bytes;
            for _ in 0..chunks {
                let take = left.min(self.chunk_bytes);
                left -= take;
                // Run-to-completion: the machine step happens on the home
                // core, then the chunk drains through the shard while the
                // core is free to step other ranks.
                stages.push(Stage::Seize {
                    res: core,
                    hold: self.step_cpu,
                });
                stages.push(Stage::xfer(shard, take));
            }
            dag.token(&[], stages);
        }
        let result: RunResult = dag.run()?;
        let makespan = result.makespan();
        Ok(ShardReport {
            ranks,
            makespan,
            per_rank_secs: makespan.as_secs() / ranks as f64,
            reactor_busy: reactors.iter().map(|&r| result.resource_busy(r)).collect(),
            shard_bytes: shards.iter().map(|&p| result.pipe_bytes(p)).collect(),
        })
    }

    /// Simulate a rank sweep, one round per entry.
    pub fn sweep(&self, rank_counts: &[usize]) -> Result<Vec<ShardReport>, SimError> {
        rank_counts.iter().map(|&r| self.simulate(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ShardModel {
        ShardModel {
            reactors: 4,
            shards: 2,
            per_rank_bytes: 64 << 20,
            chunk_bytes: 32 << 20,
            ..ShardModel::default()
        }
    }

    #[test]
    fn round_moves_every_byte_through_the_shards() {
        let m = small();
        let r = m.simulate(64).unwrap();
        let total: f64 = r.shard_bytes.iter().sum();
        let expect = (64u64 * (64 << 20)) as f64;
        assert!(
            (total - expect).abs() < 1.0,
            "moved {total} of {expect} bytes"
        );
        assert!(r.makespan > SimTime::ZERO);
        assert!(r.gib_per_sec() > 0.0);
    }

    #[test]
    fn round_robin_keeps_reactors_and_shards_balanced() {
        let m = small();
        let r = m.simulate(64).unwrap();
        assert!(
            r.reactor_imbalance() < 1.05,
            "imbalance {}",
            r.reactor_imbalance()
        );
        let min = r.shard_bytes.iter().cloned().fold(f64::MAX, f64::min);
        let max = r.shard_bytes.iter().cloned().fold(0.0, f64::max);
        assert!(
            max - min < 1.0,
            "equal rank counts per shard move equal bytes ({min} vs {max})"
        );
    }

    #[test]
    fn per_rank_makespan_stays_flat_as_ranks_scale() {
        // The scalability claim in miniature: 16x the ranks on the same
        // cores and shards must not inflate the per-rank cost.
        let m = small();
        let base = m.simulate(32).unwrap();
        let wide = m.simulate(512).unwrap();
        assert!(
            wide.per_rank_secs <= base.per_rank_secs * 1.2,
            "per-rank cost grew {}x",
            wide.per_rank_secs / base.per_rank_secs
        );
    }

    #[test]
    fn simulation_is_deterministic() {
        let m = small();
        let a = m.simulate(100).unwrap();
        let b = m.simulate(100).unwrap();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.shard_bytes, b.shard_bytes);
    }

    #[test]
    fn more_reactors_do_not_slow_a_bandwidth_bound_round() {
        let narrow = ShardModel {
            reactors: 2,
            ..small()
        }
        .simulate(64)
        .unwrap();
        let wide = ShardModel {
            reactors: 16,
            ..small()
        }
        .simulate(64)
        .unwrap();
        // Fair-share granularity shifts chunk boundaries slightly; the
        // round must not get meaningfully slower with more cores.
        assert!(wide.makespan.as_secs() <= narrow.makespan.as_secs() * 1.05);
    }
}
