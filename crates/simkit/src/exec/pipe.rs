//! Processor-sharing bandwidth pipe with per-stream rate caps.
//!
//! Concurrent transfers share the pipe's aggregate bandwidth max-min fairly
//! (water-filling): capped streams get at most their cap; leftover bandwidth
//! is split equally among the rest. Rates are recomputed whenever the active
//! set changes, and the pipe predicts the next stream completion so the
//! engine can schedule a wake-up.

use crate::time::{Rate, SimTime};

use super::TokenId;

/// Sub-byte residue below which a transfer counts as finished. Rates in this
/// workspace are ≥ 1 MB/s, so half a byte is far below any meaningful
/// timescale.
const EPS_BYTES: f64 = 0.5;

#[derive(Debug)]
struct Stream {
    token: TokenId,
    remaining: f64,
    cap: Option<Rate>,
    rate: f64,
}

/// One shared-bandwidth pipe.
#[derive(Debug)]
pub(crate) struct PsPipe {
    bw: f64,
    streams: Vec<Stream>,
    last_update: SimTime,
    /// Invalidates stale scheduled wake-ups after membership changes.
    pub epoch: u64,
    bytes_moved: f64,
    busy_until_last: SimTime,
    busy_time: f64,
}

impl PsPipe {
    pub fn new(bw: Rate) -> Self {
        PsPipe {
            bw: bw.as_bytes_per_sec(),
            streams: Vec::new(),
            last_update: SimTime::ZERO,
            epoch: 0,
            bytes_moved: 0.0,
            busy_until_last: SimTime::ZERO,
            busy_time: 0.0,
        }
    }

    /// Advance internal progress to `now`, draining bytes at current rates.
    fn settle(&mut self, now: SimTime) {
        let dt = (now.as_secs() - self.last_update.as_secs()).max(0.0);
        if dt > 0.0 {
            if !self.streams.is_empty() {
                self.busy_time += dt;
            }
            for s in &mut self.streams {
                let moved = s.rate * dt;
                let actual = moved.min(s.remaining);
                s.remaining -= actual;
                self.bytes_moved += actual;
            }
        }
        self.last_update = now;
        self.busy_until_last = now;
    }

    /// Max-min fair (water-filling) rate assignment with caps.
    fn recompute_rates(&mut self) {
        let n = self.streams.len();
        if n == 0 {
            return;
        }
        // Order stream indices by cap ascending (uncapped last).
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            let ca = self.streams[a]
                .cap
                .map_or(f64::INFINITY, |c| c.as_bytes_per_sec());
            let cb = self.streams[b]
                .cap
                .map_or(f64::INFINITY, |c| c.as_bytes_per_sec());
            ca.total_cmp(&cb)
        });
        let mut remaining_bw = self.bw;
        let mut remaining_n = n;
        for (pos, &i) in order.iter().enumerate() {
            let fair = remaining_bw / remaining_n as f64;
            let cap = self.streams[i]
                .cap
                .map_or(f64::INFINITY, |c| c.as_bytes_per_sec());
            if cap <= fair {
                self.streams[i].rate = cap;
                remaining_bw -= cap;
                remaining_n -= 1;
            } else {
                // Everyone from here on is uncapped-or-above-fair: equal split.
                for &j in &order[pos..] {
                    self.streams[j].rate = fair;
                }
                return;
            }
        }
    }

    /// Add a transfer; caller must then reschedule via [`next_completion`].
    pub fn add(&mut self, now: SimTime, token: TokenId, bytes: u64, cap: Option<Rate>) {
        self.settle(now);
        self.streams.push(Stream {
            token,
            remaining: bytes as f64,
            cap,
            rate: 0.0,
        });
        self.recompute_rates();
        self.epoch += 1;
    }

    /// Remove all finished streams at `now`, returning their tokens.
    pub fn harvest(&mut self, now: SimTime) -> Vec<TokenId> {
        self.settle(now);
        let mut done = Vec::new();
        self.streams.retain(|s| {
            if s.remaining <= EPS_BYTES {
                done.push(s.token);
                false
            } else {
                true
            }
        });
        if !done.is_empty() {
            self.recompute_rates();
            self.epoch += 1;
        }
        done
    }

    /// Predicted time of the next stream completion, if any are active.
    pub fn next_completion(&self, now: SimTime) -> Option<SimTime> {
        self.streams
            .iter()
            .filter(|s| s.rate > 0.0)
            .map(|s| now.as_secs() + (s.remaining / s.rate).max(0.0))
            .min_by(|a, b| a.total_cmp(b))
            .map(SimTime::secs)
    }

    /// Whether any transfers are in flight.
    #[allow(dead_code)] // exercised by unit tests and kept for model debugging
    pub fn is_active(&self) -> bool {
        !self.streams.is_empty()
    }

    /// Total bytes moved through the pipe so far.
    pub fn bytes_moved(&self) -> f64 {
        self.bytes_moved
    }

    /// Total time the pipe had at least one active stream.
    pub fn busy_time(&self) -> SimTime {
        SimTime::secs(self.busy_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(i: usize) -> TokenId {
        TokenId(i)
    }

    #[test]
    fn single_stream_runs_at_line_rate() {
        let mut p = PsPipe::new(Rate::mib_per_sec(100.0));
        p.add(SimTime::ZERO, tid(0), 100 << 20, None);
        let done = p.next_completion(SimTime::ZERO).unwrap();
        assert!((done.as_secs() - 1.0).abs() < 1e-9);
        let finished = p.harvest(done);
        assert_eq!(finished, vec![tid(0)]);
        assert!(!p.is_active());
    }

    #[test]
    fn two_equal_streams_split_fairly() {
        let mut p = PsPipe::new(Rate::mib_per_sec(100.0));
        p.add(SimTime::ZERO, tid(0), 50 << 20, None);
        p.add(SimTime::ZERO, tid(1), 50 << 20, None);
        // Each gets 50 MiB/s -> both finish at t=1s.
        let done = p.next_completion(SimTime::ZERO).unwrap();
        assert!((done.as_secs() - 1.0).abs() < 1e-9);
        let mut finished = p.harvest(done);
        finished.sort();
        assert_eq!(finished, vec![tid(0), tid(1)]);
    }

    #[test]
    fn cap_limits_one_stream_and_frees_bandwidth() {
        let mut p = PsPipe::new(Rate::mib_per_sec(100.0));
        p.add(
            SimTime::ZERO,
            tid(0),
            25 << 20,
            Some(Rate::mib_per_sec(25.0)),
        );
        p.add(SimTime::ZERO, tid(1), 75 << 20, None);
        // Water-fill: capped stream 25 MiB/s, other 75 MiB/s -> both at t=1.
        let done = p.next_completion(SimTime::ZERO).unwrap();
        assert!((done.as_secs() - 1.0).abs() < 1e-9);
        assert_eq!(p.harvest(done).len(), 2);
    }

    #[test]
    fn late_joiner_slows_existing_stream() {
        let mut p = PsPipe::new(Rate::mib_per_sec(100.0));
        p.add(SimTime::ZERO, tid(0), 100 << 20, None);
        // At t=0.5, 50 MiB remain; a second stream arrives.
        p.add(SimTime::secs(0.5), tid(1), 50 << 20, None);
        // Both now at 50 MiB/s; both finish at t = 0.5 + 1.0.
        let done = p.next_completion(SimTime::secs(0.5)).unwrap();
        assert!((done.as_secs() - 1.5).abs() < 1e-9);
        assert_eq!(p.harvest(done).len(), 2);
    }

    #[test]
    fn work_conservation_accounting() {
        let mut p = PsPipe::new(Rate::mib_per_sec(10.0));
        p.add(SimTime::ZERO, tid(0), 10 << 20, None);
        let d = p.next_completion(SimTime::ZERO).unwrap();
        p.harvest(d);
        assert!((p.bytes_moved() - (10u64 << 20) as f64).abs() < 1.0);
        assert!((p.busy_time().as_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn undersubscribed_caps_leave_bandwidth_unused() {
        let mut p = PsPipe::new(Rate::mib_per_sec(100.0));
        p.add(
            SimTime::ZERO,
            tid(0),
            10 << 20,
            Some(Rate::mib_per_sec(10.0)),
        );
        // Only 10 of 100 MiB/s usable.
        let done = p.next_completion(SimTime::ZERO).unwrap();
        assert!((done.as_secs() - 1.0).abs() < 1e-9);
    }

    proptest::proptest! {
        /// Water-filling invariants: every stream's rate respects its cap,
        /// rates never exceed the pipe, and the assignment is
        /// work-conserving (either the pipe is fully used or every stream
        /// is at its cap).
        #[test]
        fn prop_water_filling(
            caps in proptest::collection::vec(proptest::option::of(1u32..200), 1..12)
        ) {
            let total = 100.0 * (1 << 20) as f64;
            let mut p = PsPipe::new(Rate::bytes_per_sec(total));
            for (i, cap) in caps.iter().enumerate() {
                p.add(
                    SimTime::ZERO,
                    tid(i),
                    10 << 20,
                    cap.map(|c| Rate::mib_per_sec(f64::from(c))),
                );
            }
            let mut sum = 0.0;
            let mut all_capped = true;
            for (s, cap) in p.streams.iter().zip(&caps) {
                sum += s.rate;
                if let Some(c) = cap {
                    let cap_bps = f64::from(*c) * (1 << 20) as f64;
                    proptest::prop_assert!(s.rate <= cap_bps + 1.0);
                    if s.rate < cap_bps - 1.0 {
                        all_capped = false;
                    }
                } else {
                    all_capped = false;
                }
            }
            proptest::prop_assert!(sum <= total + 1.0, "oversubscribed: {} > {}", sum, total);
            proptest::prop_assert!(
                sum >= total - 1.0 || all_capped,
                "not work-conserving: sum {} of {}, all_capped {}",
                sum,
                total,
                all_capped
            );
            // Fairness: any two uncapped streams get equal rates.
            let uncapped: Vec<f64> = p
                .streams
                .iter()
                .zip(&caps)
                .filter(|(_, c)| c.is_none())
                .map(|(s, _)| s.rate)
                .collect();
            for w in uncapped.windows(2) {
                proptest::prop_assert!((w[0] - w[1]).abs() < 1.0);
            }
        }
    }
}
