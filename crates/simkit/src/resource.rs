//! Analytic FIFO single-server timeline.
//!
//! For models that don't need the full DAG engine (e.g. quick closed-form
//! baselines and unit tests), `FifoTimeline` computes completion times of a
//! FIFO single-server queue directly: a request arriving at `t` with service
//! time `s` completes at `max(t, free_at) + s`. This is exact for
//! non-preemptive FIFO service and is how serialized metadata servers and
//! directory locks are modelled outside the engine.

use crate::time::SimTime;

/// A single-server FIFO queue evaluated analytically.
#[derive(Debug, Clone, Default)]
pub struct FifoTimeline {
    free_at: SimTime,
    busy: SimTime,
    served: u64,
}

impl FifoTimeline {
    /// A server that is idle at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Serve a request arriving at `arrival` needing `service` time;
    /// returns its completion time. Requests **must** be offered in
    /// non-decreasing arrival order (checked in debug builds via the
    /// monotone `free_at` invariant).
    pub fn serve(&mut self, arrival: SimTime, service: SimTime) -> SimTime {
        let start = arrival.max(self.free_at);
        let done = start + service;
        self.free_at = done;
        self.busy += service;
        self.served += 1;
        done
    }

    /// Earliest time the server is next idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total busy time accumulated.
    pub fn busy_time(&self) -> SimTime {
        self.busy
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Server utilization over the interval `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            0.0
        } else {
            (self.busy.as_secs() / horizon.as_secs()).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn idle_server_serves_immediately() {
        let mut s = FifoTimeline::new();
        let done = s.serve(SimTime::secs(1.0), SimTime::secs(0.5));
        assert_eq!(done, SimTime::secs(1.5));
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut s = FifoTimeline::new();
        let d1 = s.serve(SimTime::ZERO, SimTime::secs(1.0));
        let d2 = s.serve(SimTime::ZERO, SimTime::secs(1.0));
        let d3 = s.serve(SimTime::secs(5.0), SimTime::secs(1.0));
        assert_eq!(d1, SimTime::secs(1.0));
        assert_eq!(d2, SimTime::secs(2.0)); // waited behind d1
        assert_eq!(d3, SimTime::secs(6.0)); // arrived after idle gap
        assert_eq!(s.served(), 3);
        assert!((s.busy_time().as_secs() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_accounts_idle_gap() {
        let mut s = FifoTimeline::new();
        s.serve(SimTime::ZERO, SimTime::secs(1.0));
        s.serve(SimTime::secs(3.0), SimTime::secs(1.0));
        let u = s.utilization(SimTime::secs(4.0));
        assert!((u - 0.5).abs() < 1e-12);
    }

    proptest! {
        /// Completion times are strictly increasing when all services are
        /// positive, and never precede arrival + service.
        #[test]
        fn prop_fifo_invariants(
            reqs in proptest::collection::vec((0u32..1000, 1u32..100), 1..100)
        ) {
            let mut sorted = reqs.clone();
            sorted.sort_by_key(|&(a, _)| a);
            let mut s = FifoTimeline::new();
            let mut prev_done = SimTime::ZERO;
            for (a, sv) in sorted {
                let arrival = SimTime::millis(f64::from(a));
                let service = SimTime::millis(f64::from(sv));
                let done = s.serve(arrival, service);
                prop_assert!(done >= arrival + service);
                prop_assert!(done > prev_done);
                prev_done = done;
            }
        }

        /// Busy time equals the sum of service times.
        #[test]
        fn prop_busy_time(services in proptest::collection::vec(1u32..50, 1..50)) {
            let mut s = FifoTimeline::new();
            let mut total = SimTime::ZERO;
            for sv in &services {
                let service = SimTime::millis(f64::from(*sv));
                total += service;
                s.serve(SimTime::ZERO, service);
            }
            prop_assert!((s.busy_time().as_secs() - total.as_secs()).abs() < 1e-9);
        }
    }
}
