//! Simulated time and transfer-rate scalars.
//!
//! Time is a non-negative, finite `f64` number of **seconds**. The engine
//! only ever compares, adds, and scales times, so `f64` gives deterministic
//! results while avoiding the overflow/rounding bookkeeping of integer
//! nanoseconds inside the processor-sharing pipe math.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in (or span of) simulated time, in seconds.
///
/// `SimTime` is totally ordered (`f64::total_cmp`); constructors debug-assert
/// that values are finite and non-negative so NaNs can never enter the event
/// queue.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero — the start of every simulation.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Construct from seconds.
    #[inline]
    pub fn secs(s: f64) -> Self {
        debug_assert!(s.is_finite() && s >= 0.0, "invalid SimTime: {s}");
        SimTime(s)
    }

    /// Construct from milliseconds.
    #[inline]
    pub fn millis(ms: f64) -> Self {
        Self::secs(ms * 1e-3)
    }

    /// Construct from microseconds.
    #[inline]
    pub fn micros(us: f64) -> Self {
        Self::secs(us * 1e-6)
    }

    /// Construct from nanoseconds.
    #[inline]
    pub fn nanos(ns: f64) -> Self {
        Self::secs(ns * 1e-9)
    }

    /// Value in seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Value in microseconds.
    #[inline]
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Saturating subtraction: returns zero instead of going negative.
    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        if self.0 > other.0 {
            SimTime(self.0 - other.0)
        } else {
            SimTime::ZERO
        }
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        debug_assert!(self.0 >= rhs.0, "SimTime underflow: {} - {}", self.0, rhs.0);
        SimTime((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, k: f64) -> SimTime {
        SimTime::secs(self.0 * k)
    }
}

impl Div<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, k: f64) -> SimTime {
        SimTime::secs(self.0 / k)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if s >= 1.0 {
            write!(f, "{s:.3}s")
        } else if s >= 1e-3 {
            write!(f, "{:.3}ms", s * 1e3)
        } else if s >= 1e-6 {
            write!(f, "{:.3}us", s * 1e6)
        } else {
            write!(f, "{:.1}ns", s * 1e9)
        }
    }
}

/// A transfer rate in **bytes per second**.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug)]
pub struct Rate(f64);

impl Rate {
    /// Construct from bytes per second.
    #[inline]
    pub fn bytes_per_sec(b: f64) -> Self {
        debug_assert!(b.is_finite() && b > 0.0, "invalid Rate: {b}");
        Rate(b)
    }

    /// Construct from mebibytes per second.
    #[inline]
    pub fn mib_per_sec(m: f64) -> Self {
        Self::bytes_per_sec(m * (1u64 << 20) as f64)
    }

    /// Construct from gibibytes per second.
    #[inline]
    pub fn gib_per_sec(g: f64) -> Self {
        Self::bytes_per_sec(g * (1u64 << 30) as f64)
    }

    /// Construct from gigabits per second (network convention, 1 Gbit = 1e9 bits).
    #[inline]
    pub fn gbit_per_sec(g: f64) -> Self {
        Self::bytes_per_sec(g * 1e9 / 8.0)
    }

    /// Value in bytes per second.
    #[inline]
    pub fn as_bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Time to move `bytes` at this rate.
    #[inline]
    pub fn time_for(self, bytes: u64) -> SimTime {
        SimTime::secs(bytes as f64 / self.0)
    }

    /// Scale the rate by a factor.
    #[inline]
    pub fn scale(self, k: f64) -> Rate {
        Rate::bytes_per_sec(self.0 * k)
    }

    /// The smaller of two rates.
    #[inline]
    pub fn min(self, other: Rate) -> Rate {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        let close = |a: SimTime, b: SimTime| (a.as_secs() - b.as_secs()).abs() < 1e-15;
        assert!(close(SimTime::millis(1.0), SimTime::micros(1000.0)));
        assert!(close(SimTime::secs(2.0), SimTime::millis(2000.0)));
        assert!(close(SimTime::micros(1.0), SimTime::nanos(1000.0)));
    }

    #[test]
    fn ordering_and_arith() {
        let a = SimTime::micros(5.0);
        let b = SimTime::micros(7.0);
        assert!(a < b);
        assert_eq!((a + b).as_micros().round(), 12.0);
        assert_eq!((b - a).as_micros().round(), 2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
    }

    #[test]
    fn rate_transfer_time() {
        let r = Rate::mib_per_sec(1.0);
        let t = r.time_for(1 << 20);
        assert!((t.as_secs() - 1.0).abs() < 1e-12);
        let g = Rate::gbit_per_sec(100.0); // EDR IB
        assert!((g.as_bytes_per_sec() - 12.5e9).abs() < 1.0);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimTime::secs(1.5)), "1.500s");
        assert_eq!(format!("{}", SimTime::millis(2.25)), "2.250ms");
        assert_eq!(format!("{}", SimTime::micros(3.5)), "3.500us");
    }

    #[test]
    fn sum_of_times() {
        let total: SimTime = (0..4).map(|_| SimTime::millis(1.0)).sum();
        assert!((total.as_secs() - 4e-3).abs() < 1e-12);
    }
}
