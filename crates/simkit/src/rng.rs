//! Deterministic randomness helpers.
//!
//! All stochastic elements of the simulation (file-name hashing inputs,
//! fault-injection draws, jittered arrivals) derive from explicitly seeded
//! generators, so experiment harnesses are reproducible by construction.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// A seeded fast RNG for simulation use.
pub fn seeded(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Derive a child seed from a parent seed and a stream index, so parallel
/// per-rank streams are independent yet reproducible. Uses SplitMix64
/// finalization.
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Exponentially distributed draw with the given mean — used for
/// MTBF-driven fault injection.
pub fn exponential(rng: &mut SmallRng, mean: f64) -> f64 {
    debug_assert!(mean > 0.0);
    let u: f64 = rng.random_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_reproducible() {
        let a: Vec<u32> = {
            let mut r = seeded(42);
            (0..8).map(|_| r.random()).collect()
        };
        let b: Vec<u32> = {
            let mut r = seeded(42);
            (0..8).map(|_| r.random()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded(1);
        let mut b = seeded(2);
        let xs: Vec<u64> = (0..4).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.random()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn derived_seeds_are_distinct() {
        let seeds: Vec<u64> = (0..1000).map(|i| derive_seed(7, i)).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len());
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = seeded(9);
        let n = 200_000;
        let mean = 3.0;
        let sum: f64 = (0..n).map(|_| exponential(&mut r, mean)).sum();
        let observed = sum / f64::from(n);
        assert!(
            (observed - mean).abs() < 0.05,
            "observed mean {observed} too far from {mean}"
        );
    }
}
