//! Deterministic randomness helpers.
//!
//! All stochastic elements of the simulation (file-name hashing inputs,
//! fault-injection draws, jittered arrivals) derive from explicitly seeded
//! generators, so experiment harnesses are reproducible by construction.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// A seeded fast RNG for simulation use.
pub fn seeded(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Derive a child seed from a parent seed and a stream index, so parallel
/// per-rank streams are independent yet reproducible. Uses SplitMix64
/// finalization.
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Exponentially distributed draw with the given mean — used for
/// MTBF-driven fault injection.
pub fn exponential(rng: &mut SmallRng, mean: f64) -> f64 {
    debug_assert!(mean > 0.0);
    let u: f64 = rng.random_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

/// Fill `buf` with a deterministic byte pattern derived from `seed` — the
/// payload generator for reproducible workloads (crash-universe replays
/// must rewrite bit-identical file contents from the seed alone). Cheaper
/// than drawing every byte from an RNG, and self-describing: any window of
/// the buffer can be re-derived from `(seed, offset)`.
pub fn pattern_fill(buf: &mut [u8], seed: u64, offset: u64) {
    for (i, b) in buf.iter_mut().enumerate() {
        let p = offset + i as u64;
        let x = derive_seed(seed, p / 8);
        *b = (x >> (8 * (p % 8))) as u8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_reproducible() {
        let a: Vec<u32> = {
            let mut r = seeded(42);
            (0..8).map(|_| r.random()).collect()
        };
        let b: Vec<u32> = {
            let mut r = seeded(42);
            (0..8).map(|_| r.random()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded(1);
        let mut b = seeded(2);
        let xs: Vec<u64> = (0..4).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.random()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn derived_seeds_are_distinct() {
        let seeds: Vec<u64> = (0..1000).map(|i| derive_seed(7, i)).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len());
    }

    #[test]
    fn pattern_fill_is_window_stable() {
        // A sub-window filled on its own matches the same bytes inside a
        // larger fill — the property replay verification leans on.
        let mut whole = vec![0u8; 256];
        pattern_fill(&mut whole, 77, 0);
        let mut window = vec![0u8; 64];
        pattern_fill(&mut window, 77, 100);
        assert_eq!(&whole[100..164], &window[..]);
        let mut other = vec![0u8; 256];
        pattern_fill(&mut other, 78, 0);
        assert_ne!(whole, other);
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = seeded(9);
        let n = 200_000;
        let mean = 3.0;
        let sum: f64 = (0..n).map(|_| exponential(&mut r, mean)).sum();
        let observed = sum / f64::from(n);
        assert!(
            (observed - mean).abs() < 0.05,
            "observed mean {observed} too far from {mean}"
        );
    }
}
