//! Deterministic time-ordered event queue.
//!
//! A thin wrapper around [`std::collections::BinaryHeap`] that orders events
//! by `(time, sequence)` so that simultaneous events pop in insertion order.
//! FIFO tie-breaking is what makes every simulation in this workspace
//! bit-for-bit reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<T> {
    at: SimTime,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Min-heap of `(SimTime, T)` with FIFO ordering among equal timestamps.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `item` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, item: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, item });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| (e.at, e.item))
    }

    /// Timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue holds no events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::secs(3.0), "c");
        q.push(SimTime::secs(1.0), "a");
        q.push(SimTime::secs(2.0), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_among_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::secs(1.0), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::millis(5.0), ());
        q.push(SimTime::millis(2.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::millis(2.0)));
        assert_eq!(q.pop().unwrap().0, SimTime::millis(2.0));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    proptest! {
        /// Popped timestamps are monotonically non-decreasing, and ties keep
        /// insertion order, for arbitrary push sequences.
        #[test]
        fn prop_sorted_stable(times in proptest::collection::vec(0u32..50, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::secs(f64::from(t)), i);
            }
            let mut prev: Option<(SimTime, usize)> = None;
            while let Some((at, idx)) = q.pop() {
                if let Some((pt, pidx)) = prev {
                    prop_assert!(at >= pt);
                    if at == pt {
                        prop_assert!(idx > pidx);
                    }
                }
                prev = Some((at, idx));
            }
        }
    }
}
