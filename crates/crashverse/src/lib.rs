//! # crashverse — deterministic crash-universe exploration
//!
//! FoundationDB-style systematic crash testing for the NVMe-CR stack
//! (DESIGN.md §13). One *counting* run executes a fixed incremental-
//! checkpoint workload (replicated ranks, CoW delta chain) with every
//! durability-relevant operation — WAL appends, block writes, mirrored
//! writes, manifest bodies, commit records, discards — assigned a global
//! op index by [`chaos::ChaosHandle::arm_crash_count`]. That index space
//! *is* the crash universe: the explorer then re-executes the workload
//! once per index `k`, arms [`chaos::ChaosHandle::crash_at_op`]`(k)` so
//! op `k` and every later durability op fail (a dead universe — nothing
//! survives the crash point), kills the job ungracefully with
//! [`nvmecr::runtime::NvmeCrRuntime::crash_job`], recovers it through the
//! typestate chain behind [`nvmecr::runtime::NvmeCrRuntime::attach`]
//! (`Crashed → Replaying → Verified → serving`), and checks the recovery
//! invariants:
//!
//! * **I1 — recoverable**: attach (reconnect, snapshot + log replay,
//!   manifest decode, mirror rescan) succeeds at every crash point.
//! * **I2 — no lost acknowledged write**: every file call that returned
//!   success before the crash is byte-identical after recovery; the one
//!   *failing* call is allowed exactly its documented visibility (a torn
//!   in-place overwrite window, an absent created file, a still-present
//!   unlink victim).
//! * **I3 — epochs resume in bounds**: the first post-recovery commit
//!   seals epoch `h + 1` where `confirmed ≤ h ≤ started` — a torn commit
//!   record may legally leave the primary one epoch ahead of the last
//!   acknowledged seal, but recovery never invents epochs and never
//!   rolls back below an acknowledged one.
//! * **I4 — scrubbable**: a post-recovery scrub finds zero unrecoverable
//!   extents (replica damage from half-done discards must be repairable
//!   from the primary).
//!
//! Everything is deterministic from `(seed, op index, config)`: payloads
//! come from [`simkit::rng::pattern_fill`], the stack is rebuilt from
//! scratch for every universe, ranks are driven serially while armed,
//! and recovery runs disarmed. A failing point is shrunk to the minimal
//! failing index (the ascending scan makes stride-sampled gaps cheap to
//! close), dumped through the flight recorder as `FLIGHT_*.jsonl`, and
//! reported with a replay command line that pins seed, crash index, and
//! config fingerprint.

use std::collections::BTreeMap;
use std::path::PathBuf;

use chaos::{ChaosHandle, CrashOp, RecoveryOp, CRASH_OP_KINDS, RECOVERY_OP_KINDS};
use cluster::{JobRequest, Scheduler, Topology};
use microfs::OpenFlags;
use nvmecr::runtime::{NvmeCrRuntime, StorageRack};
use nvmecr::{RecoveryPolicy, RecoverySupervisor, RuntimeConfig};
use rayon::prelude::*;
use simkit::rng::{derive_seed, pattern_fill};
use ssd::SsdConfig;
use telemetry::{FlightKind, Telemetry};

/// Per-grant namespace size: two ranks share a grant, so each rank gets
/// a 16 MiB segment — the smallest the balancer accepts, keeping rescan
/// and replay cheap enough to run hundreds of universes per smoke.
const NAMESPACE_BYTES: u64 = 32 << 20;
/// SSD capacity backing each simulated device.
const SSD_CAPACITY: u64 = 2 << 30;
/// Stop exploring after this many distinct failing points; each failure
/// already carries a pinned replay line, and a systemic bug would
/// otherwise fail thousands of points and drown the report.
const MAX_FAILURES: usize = 8;

/// The knobs a crash universe is derived from. Two runs with equal
/// configs produce identical op counts, identical per-point verdicts,
/// and identical shrink behaviour.
#[derive(Debug, Clone)]
pub struct UniverseConfig {
    /// Payload seed; every file byte derives from it.
    pub seed: u64,
    /// MPI ranks (each with its own microfs, primary, and replica).
    pub ranks: u32,
    /// Sealed epochs the workload attempts.
    pub epochs: u32,
    /// Fresh checkpoint files written per rank per epoch.
    pub files_per_epoch: u32,
    /// Size of each fresh checkpoint file, KiB.
    pub write_kib: u64,
    /// Cap on crash points executed; universes larger than this are
    /// stride-sampled and failures shrunk back to the minimal index.
    pub max_points: Option<u64>,
    /// Where failing points dump `FLIGHT_*.jsonl` counterexamples.
    pub dump_dir: Option<PathBuf>,
    /// Run the failover phase mid-universe: after the middle epoch seals,
    /// rank 0's primary shard is killed and every rank fails over to a
    /// replacement namespace — so the enumerated op stream (and therefore
    /// every crash point past the phase) exercises post-failover routes.
    pub failover: bool,
}

impl Default for UniverseConfig {
    fn default() -> Self {
        UniverseConfig {
            seed: 0x5EED_CA5C,
            ranks: 2,
            epochs: 4,
            files_per_epoch: 3,
            write_kib: 256,
            max_points: None,
            dump_dir: None,
            failover: true,
        }
    }
}

impl UniverseConfig {
    /// Fingerprint of everything that shapes the op index space — seed,
    /// workload shape, and the fixed stack constants. Printed in replay
    /// lines so a counterexample can refuse to replay against a
    /// different universe.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = derive_seed(self.seed, 0xC8A5);
        for v in [
            u64::from(self.ranks),
            u64::from(self.epochs),
            u64::from(self.files_per_epoch),
            self.write_kib,
            u64::from(self.failover),
            NAMESPACE_BYTES,
            SSD_CAPACITY,
        ] {
            fp = derive_seed(fp, v);
        }
        fp
    }

    /// The command line that re-executes exactly one crash point of this
    /// universe.
    pub fn replay_command(&self, k: u64) -> String {
        format!(
            "nvmecr-crashverse --seed {} --ranks {} --epochs {} --files {} \
             --write-kib {} --crash-at {} # fingerprint {:#018x}",
            self.seed,
            self.ranks,
            self.epochs,
            self.files_per_epoch,
            self.write_kib,
            k,
            self.fingerprint()
        )
    }

    /// The command line that re-executes exactly one *nested* crash
    /// point: outer crash at op `k`, recovery killed at recovery op `j`.
    pub fn replay_nested_command(&self, k: u64, j: u64) -> String {
        format!(
            "nvmecr-crashverse --nested --seed {} --ranks {} --epochs {} --files {} \
             --write-kib {} --crash-at {} --crash-in-recovery {} # fingerprint {:#018x}",
            self.seed,
            self.ranks,
            self.epochs,
            self.files_per_epoch,
            self.write_kib,
            k,
            j,
            self.fingerprint()
        )
    }

    fn bytes_per_file(&self) -> usize {
        (self.write_kib << 10) as usize
    }

    /// Epoch after whose seal the failover phase runs (the middle one).
    fn failover_epoch(&self) -> u64 {
        u64::from(self.epochs + 1) / 2
    }
}

/// The one workload call that observed the crash, and the visibility it
/// is entitled to after recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailedCall {
    /// Rank whose filesystem call failed.
    pub rank: u32,
    /// Which call: `"create"`, `"write"`, `"close"`, `"unlink"`, or
    /// `"commit"`.
    pub what: &'static str,
    /// Path the call named, when it named one.
    pub path: Option<String>,
    /// For a failing in-place `"write"`: the `[offset, offset + len)`
    /// window whose device bytes are torn (old/new mix) and exempt from
    /// byte verification. The file's *size* must still match the oracle.
    pub window: Option<(u64, u64)>,
}

impl FailedCall {
    fn new(rank: u32, what: &'static str, path: Option<&str>) -> Self {
        FailedCall {
            rank,
            what,
            path: path.map(str::to_string),
            window: None,
        }
    }
}

/// What the explorer decided about one crash point.
#[derive(Debug, Clone)]
pub struct PointVerdict {
    /// The crash index this point armed.
    pub op_index: u64,
    /// Did every invariant hold?
    pub passed: bool,
    /// Op index at which the crash actually fired (`None` when
    /// `op_index` lies beyond the universe — a vacuous pass).
    pub fired: Option<u64>,
    /// Kind of the op that died (from the flight recorder).
    pub fired_kind: Option<&'static str>,
    /// First invariant violation, when one was found.
    pub violation: Option<String>,
    /// Flight-recorder counterexample dump, when one was written.
    pub dump: Option<PathBuf>,
}

/// A failing crash point, shrunk to the minimal failing index.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Minimal failing op index.
    pub op_index: u64,
    /// Kind of the op that died there.
    pub fired_kind: Option<&'static str>,
    /// The invariant that broke.
    pub violation: String,
    /// `FLIGHT_*.jsonl` counterexample, when `dump_dir` was set.
    pub dump: Option<PathBuf>,
    /// Command line pinning (seed, crash index, fingerprint).
    pub replay: String,
}

/// The explorer's summary of one whole universe.
#[derive(Debug, Clone)]
pub struct UniverseReport {
    /// Config fingerprint the verdicts are bound to.
    pub fingerprint: u64,
    /// Size of the crash universe (durability ops in the clean run).
    pub total_ops: u64,
    /// Ops per [`CrashOp`] kind, indexed by `code() - 1`.
    pub per_kind: [u64; CRASH_OP_KINDS],
    /// Crash points actually executed (sampling may skip some).
    pub points_run: u64,
    /// `(op index, passed)` for every executed point, ascending.
    pub verdicts: Vec<(u64, bool)>,
    /// Failing points, each shrunk to its minimal failing index.
    pub failures: Vec<Failure>,
    /// Extra re-executions spent closing sampled gaps around failures.
    pub shrink_steps: u64,
}

// ---------------------------------------------------------------------
// Workload
// ---------------------------------------------------------------------

/// Everything the oracle knows about the run so far: contents of every
/// successfully written file, paths successfully unlinked, and per-rank
/// commit progress. Updated only on calls that returned success — which
/// is exactly the set of state recovery must preserve.
struct RunState {
    oracle: BTreeMap<(u32, String), Vec<u8>>,
    unlinked: Vec<(u32, String)>,
    /// Last epoch each rank saw acknowledged (`commit_epoch_rank` → `Some(e)`).
    sealed: Vec<u64>,
    /// Commits each rank *attempted* (a torn commit may still be durable).
    started: Vec<u64>,
}

impl RunState {
    fn new(ranks: u32) -> Self {
        RunState {
            oracle: BTreeMap::new(),
            unlinked: Vec::new(),
            sealed: vec![0; ranks as usize],
            started: vec![0; ranks as usize],
        }
    }
}

/// The built runtime plus the rack and topology it sits on — the
/// failover phase needs both to allocate replacement namespaces.
struct Stack {
    rt: NvmeCrRuntime,
    rack: StorageRack,
    topo: Topology,
}

fn build_stack(
    cfg: &UniverseConfig,
    telemetry: &Telemetry,
    chaos: &ChaosHandle,
) -> Result<Stack, String> {
    let topo = Topology::paper_testbed();
    let rack = StorageRack::build_with_telemetry(
        &topo,
        &SsdConfig {
            capacity: SSD_CAPACITY,
            chaos: chaos.clone(),
            ..SsdConfig::default()
        },
        telemetry.clone(),
    );
    let mut sched = Scheduler::new(topo.clone(), 8);
    let alloc = sched
        .submit(&JobRequest::full_subscription(cfg.ranks))
        .map_err(|e| format!("schedule: {e:?}"))?;
    let config = RuntimeConfig {
        namespace_bytes: NAMESPACE_BYTES,
        replication_factor: 2,
        delta_chain_max: 4,
        telemetry: telemetry.clone(),
        chaos: chaos.clone(),
        ..RuntimeConfig::default()
    };
    let rt =
        NvmeCrRuntime::init(&rack, &topo, &alloc, config).map_err(|e| format!("init: {e:?}"))?;
    Ok(Stack { rt, rack, topo })
}

fn file_seed(cfg: &UniverseConfig, epoch: u64, rank: u32, file: u32, stream: u64) -> u64 {
    let lane = (epoch << 24) | (u64::from(rank) << 12) | u64::from(file);
    derive_seed(derive_seed(cfg.seed, lane), stream)
}

/// Create `path` and write `data` into it. Oracle: the create makes the
/// file durable at size 0, the write makes the full content durable.
fn put_file(
    fs: &mut microfs::MicroFs<nvmecr::NvmfBlockDevice>,
    st: &mut RunState,
    rank: u32,
    path: &str,
    data: &[u8],
) -> Result<(), FailedCall> {
    let fd = match fs.create(path, 0o644) {
        Ok(fd) => fd,
        Err(_) => return Err(FailedCall::new(rank, "create", Some(path))),
    };
    st.oracle.insert((rank, path.to_string()), Vec::new());
    if fs.write(fd, data).is_err() {
        let mut f = FailedCall::new(rank, "write", Some(path));
        f.window = Some((0, data.len() as u64));
        return Err(f);
    }
    st.oracle.insert((rank, path.to_string()), data.to_vec());
    if fs.close(fd).is_err() {
        // A failing close is a failing background snapshot; the old
        // snapshot plus the intact log still replay everything.
        return Err(FailedCall::new(rank, "close", Some(path)));
    }
    Ok(())
}

/// In-place overwrite of `[offset, offset + data.len())` in an existing
/// file — the call whose crash legally tears the window.
fn overwrite_window(
    fs: &mut microfs::MicroFs<nvmecr::NvmfBlockDevice>,
    st: &mut RunState,
    rank: u32,
    path: &str,
    offset: u64,
    data: &[u8],
) -> Result<(), FailedCall> {
    let fd = match fs.open(path, OpenFlags::RDWR, 0) {
        Ok(fd) => fd,
        Err(_) => return Err(FailedCall::new(rank, "open", Some(path))),
    };
    if fs.pwrite(fd, offset, data).is_err() {
        let mut f = FailedCall::new(rank, "write", Some(path));
        f.window = Some((offset, data.len() as u64));
        return Err(f);
    }
    // The target was written by an earlier `put_file`; a missing oracle
    // entry means the workload script itself is wrong. Surface it as a
    // failing call (the clean counting run turns that into a hard error)
    // instead of panicking mid-universe.
    let Some(entry) = st.oracle.get_mut(&(rank, path.to_string())) else {
        return Err(FailedCall::new(rank, "oracle", Some(path)));
    };
    let (a, b) = (offset as usize, offset as usize + data.len());
    entry[a..b].copy_from_slice(data);
    if fs.close(fd).is_err() {
        return Err(FailedCall::new(rank, "close", Some(path)));
    }
    Ok(())
}

/// One rank's slice of one epoch: fresh checkpoint files, an unaligned
/// in-place overwrite (this epoch and — CoW across epochs — the
/// previous one), a create/unlink churn pair, then the epoch commit.
fn drive_rank_epoch(
    rt: &mut NvmeCrRuntime,
    cfg: &UniverseConfig,
    st: &mut RunState,
    epoch: u64,
    rank: u32,
) -> Result<(), FailedCall> {
    let flen = cfg.bytes_per_file();
    let Ok(fs) = rt.rank_fs(rank) else {
        return Err(FailedCall::new(rank, "rank_fs", None));
    };
    for f in 0..cfg.files_per_epoch {
        let path = format!("/e{epoch}_f{f}.ckpt");
        let mut data = vec![0u8; flen];
        pattern_fill(&mut data, file_seed(cfg, epoch, rank, f, 0), 0);
        put_file(fs, st, rank, &path, &data)?;
    }
    // Unaligned windows exercise read-modify-write on both copies.
    let wlen = (flen / 4).max(1);
    let woff = ((epoch * 4097 + 733) as usize) % (flen - wlen).max(1);
    let mut win = vec![0u8; wlen];
    pattern_fill(&mut win, file_seed(cfg, epoch, rank, 0, 1), woff as u64);
    overwrite_window(
        fs,
        st,
        rank,
        &format!("/e{epoch}_f0.ckpt"),
        woff as u64,
        &win,
    )?;
    if epoch > 1 {
        // Dirty a sealed epoch's file so the next delta manifest carries
        // a cross-epoch CoW extent.
        let prev = format!("/e{}_f0.ckpt", epoch - 1);
        pattern_fill(&mut win, file_seed(cfg, epoch, rank, 0, 2), woff as u64);
        overwrite_window(fs, st, rank, &prev, woff as u64, &win)?;
    }
    // Churn: a scratch file created and removed within the epoch, so the
    // universe contains unlink WAL records and CoW discards.
    let tmp = format!("/e{epoch}_scratch.tmp");
    let mut tdata = vec![0u8; 8 << 10];
    pattern_fill(&mut tdata, file_seed(cfg, epoch, rank, 0, 3), 0);
    put_file(fs, st, rank, &tmp, &tdata)?;
    if fs.unlink(&tmp).is_err() {
        return Err(FailedCall::new(rank, "unlink", Some(&tmp)));
    }
    st.oracle.remove(&(rank, tmp.clone()));
    st.unlinked.push((rank, tmp));
    st.started[rank as usize] += 1;
    match rt.commit_epoch_rank(rank) {
        Ok(Some(e)) => {
            st.sealed[rank as usize] = e;
            Ok(())
        }
        Ok(None) | Err(_) => Err(FailedCall::new(rank, "commit", None)),
    }
}

/// The failover phase: kill rank 0's primary shard (ranks co-located on
/// the same grant namespace share the blast radius, as with a real dead
/// drive), then fail every rank over to a replacement namespace restored
/// from its replica. Runs at a fixed position in the op stream, so every
/// universe that survives to the phase boundary crosses it identically.
fn failover_phase(stack: &mut Stack, cfg: &UniverseConfig) -> Option<FailedCall> {
    if stack.rt.kill_primary_shard(0).is_err() {
        return Some(FailedCall::new(0, "failover", None));
    }
    for rank in 0..cfg.ranks {
        if stack
            .rt
            .fail_over_rank(rank, &stack.rack, &stack.topo)
            .is_err()
        {
            return Some(FailedCall::new(rank, "failover", None));
        }
    }
    None
}

/// Run the whole workload serially (determinism: one armed thread, one
/// global op order). Returns the first failing call, if any.
fn drive(stack: &mut Stack, cfg: &UniverseConfig, st: &mut RunState) -> Option<FailedCall> {
    for epoch in 1..=u64::from(cfg.epochs) {
        for rank in 0..cfg.ranks {
            if let Err(f) = drive_rank_epoch(&mut stack.rt, cfg, st, epoch, rank) {
                return Some(f);
            }
        }
        if cfg.failover && epoch == cfg.failover_epoch() {
            if let Some(f) = failover_phase(stack, cfg) {
                return Some(f);
            }
        }
    }
    None
}

// ---------------------------------------------------------------------
// Exploration
// ---------------------------------------------------------------------

/// Execute the workload once in counting mode and size the universe.
/// The clean run must complete — a workload that fails without a crash
/// armed is a stack bug, not a crash-consistency finding.
pub fn count_universe(cfg: &UniverseConfig) -> Result<chaos::CrashReport, String> {
    let telemetry = Telemetry::new();
    let chaos = ChaosHandle::new();
    let mut stack = build_stack(cfg, &telemetry, &chaos)?;
    chaos.arm_crash_count();
    let mut st = RunState::new(cfg.ranks);
    let failed = drive(&mut stack, cfg, &mut st);
    chaos.disarm_crash();
    if let Some(f) = failed {
        return Err(format!("clean counting run failed at {f:?}"));
    }
    Ok(chaos.crash_report())
}

/// Execute one crash point: arm `crash_at_op(k)`, drive until the stack
/// dies, kill the job, recover, and verify every invariant.
pub fn run_point(cfg: &UniverseConfig, k: u64) -> PointVerdict {
    let telemetry = Telemetry::new();
    let chaos = ChaosHandle::new();
    // Deliberately no `set_dump_path`: the crash trip would auto-dump a
    // tape for every point. `dump_now` writes one only on failure.
    let dump = cfg
        .dump_dir
        .as_ref()
        .map(|d| d.join(format!("FLIGHT_crashverse_op{k:06}.jsonl")));
    let mut verdict = PointVerdict {
        op_index: k,
        passed: false,
        fired: None,
        fired_kind: None,
        violation: None,
        dump: None,
    };
    let mut stack = match build_stack(cfg, &telemetry, &chaos) {
        Ok(stack) => stack,
        Err(e) => {
            verdict.violation = Some(format!("stack build failed: {e}"));
            return verdict;
        }
    };
    chaos.crash_at_op(k, &telemetry);
    let mut st = RunState::new(cfg.ranks);
    let failed = drive(&mut stack, cfg, &mut st);
    chaos.disarm_crash();
    let rt = stack.rt;
    let report = chaos.crash_report();
    verdict.fired = report.fired;
    verdict.fired_kind = fired_kind(&telemetry, report.fired);
    if report.fired.is_none() {
        if let Some(f) = failed {
            verdict.violation = Some(format!("workload failed at {f:?} with no crash fired"));
            verdict.dump = dump_now(&telemetry, &dump, k);
            return verdict;
        }
        // `k` lies beyond the end of the universe: nothing to crash.
        verdict.passed = true;
        return verdict;
    }
    // The universe is dead past op `k`; the driver normally observed an
    // error, except when the fired op's failure is absorbed (a tail
    // discard) and no later durability op ran.
    let handle = rt.crash_job();
    let mut rt2 = match NvmeCrRuntime::attach(handle) {
        Ok(rt2) => rt2,
        Err(e) => {
            verdict.violation = Some(format!("I1: recovery failed: {e:?}"));
            verdict.dump = dump_now(&telemetry, &dump, k);
            return verdict;
        }
    };
    match verify(&mut rt2, cfg, &st, failed.as_ref()) {
        Ok(()) => verdict.passed = true,
        Err(v) => {
            verdict.violation = Some(v);
            verdict.dump = dump_now(&telemetry, &dump, k);
        }
    }
    verdict
}

/// Kind of the op that fired, recovered from the flight recorder's
/// `CrashPoint` event (`a` = op code, `b` = global index).
fn fired_kind(telemetry: &Telemetry, fired: Option<u64>) -> Option<&'static str> {
    let n = fired?;
    telemetry
        .recorder()
        .events()
        .into_iter()
        .find(|e| e.kind == FlightKind::CrashPoint && e.b == n)
        .and_then(|e| CrashOp::from_code(e.a))
        .map(CrashOp::name)
}

/// Force the counterexample dump out even if the recorder never tripped
/// (e.g. an invariant violation found only at verification time).
fn dump_now(telemetry: &Telemetry, dump: &Option<PathBuf>, _k: u64) -> Option<PathBuf> {
    dump_now_as(telemetry, dump, FlightKind::CrashPoint)
}

/// [`dump_now`] with an explicit trip cause — nested points dump as
/// `RecoveryCrashPoint` so the doctor attributes them to the right plane.
fn dump_now_as(
    telemetry: &Telemetry,
    dump: &Option<PathBuf>,
    cause: FlightKind,
) -> Option<PathBuf> {
    let path = dump.as_ref()?;
    telemetry.recorder().dump_to(path, cause).ok()?;
    Some(path.clone())
}

/// Check every recovery invariant against the oracle. Returns the first
/// violation as `Err`.
fn verify(
    rt: &mut NvmeCrRuntime,
    cfg: &UniverseConfig,
    st: &RunState,
    failed: Option<&FailedCall>,
) -> Result<(), String> {
    // I2: every acknowledged byte survived, sizes exact. The one failing
    // call is atomic-but-uncertain: its WAL record either landed (the
    // mirrored record write can complete on the primary before the
    // crash) or it did not, so the call is allowed to be fully visible
    // or fully invisible — and a failing in-place overwrite may
    // additionally leave its `[offset, offset + len)` window torn on
    // device. Everything outside that one call must be byte-exact.
    for ((rank, path), want) in &st.oracle {
        let fail_here = match failed {
            Some(f) if f.rank == *rank && f.path.as_deref() == Some(path.as_str()) => {
                Some((f.what, f.window))
            }
            _ => None,
        };
        let fs = rt.rank_fs(*rank).map_err(|e| format!("I2: {e:?}"))?;
        let got_stat = match fs.stat(path) {
            Ok(s) => s,
            // A failing unlink whose record reached the primary is
            // legitimately durable: the file may be gone.
            Err(_) if matches!(fail_here, Some(("unlink", _))) => continue,
            Err(e) => {
                return Err(format!("I2: rank {rank} {path} lost by recovery: {e:?}"));
            }
        };
        let window = match fail_here {
            Some(("write", w)) => w,
            _ => None,
        };
        let size_ok = match window {
            // A failing write is all-or-nothing at the metadata level:
            // the oracle size (record lost) or the post-write size
            // (record durable on the primary).
            Some((o, l)) => {
                got_stat.size == want.len() as u64
                    || got_stat.size == (o + l).max(want.len() as u64)
            }
            None => got_stat.size == want.len() as u64,
        };
        if !size_ok {
            return Err(format!(
                "I2: rank {rank} {path} size {} after recovery, oracle {}",
                got_stat.size,
                want.len()
            ));
        }
        let readable = want.len().min(got_stat.size as usize);
        if readable == 0 {
            continue;
        }
        let fd = fs
            .open(path, OpenFlags::RDONLY, 0)
            .map_err(|e| format!("I2: rank {rank} {path} unreadable: {e:?}"))?;
        let mut got = vec![0u8; readable];
        let mut off = 0usize;
        while off < got.len() {
            let n = fs
                .read(fd, &mut got[off..])
                .map_err(|e| format!("I2: rank {rank} {path} read: {e:?}"))?;
            if n == 0 {
                return Err(format!("I2: rank {rank} {path} short read at {off}"));
            }
            off += n;
        }
        fs.close(fd).map_err(|e| format!("I2: close: {e:?}"))?;
        let (wa, wb) = window
            .map(|(o, l)| (o as usize, (o + l) as usize))
            .unwrap_or((0, 0));
        for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
            if g != w && !(i >= wa && i < wb) {
                return Err(format!(
                    "I2: rank {rank} {path} byte {i} is {g:#04x}, oracle {w:#04x}"
                ));
            }
        }
    }
    // I2 (absence): a failing create leaves at most an empty file, and
    // every acknowledged unlink must stay unlinked.
    if let Some(f) = failed {
        if f.what == "create" {
            let path = f.path.as_deref().expect("create names a path");
            let fs = rt.rank_fs(f.rank).map_err(|e| format!("I2: {e:?}"))?;
            if let Ok(s) = fs.stat(path) {
                if s.size != 0 {
                    return Err(format!(
                        "I2: rank {} {path} has {} bytes although its create crashed",
                        f.rank, s.size
                    ));
                }
            }
        }
    }
    for (rank, path) in &st.unlinked {
        let fs = rt.rank_fs(*rank).map_err(|e| format!("I2: {e:?}"))?;
        if fs.stat(path).is_ok() {
            return Err(format!(
                "I2: rank {rank} {path} resurrected although its unlink was acknowledged"
            ));
        }
    }
    // I4: the replica is scrubbable back to health — primary-side truth
    // repairs every diverged extent, nothing is unrecoverable.
    for rank in 0..cfg.ranks {
        let rep = rt
            .scrub_rank(rank)
            .map_err(|e| format!("I4: rank {rank} scrub failed: {e:?}"))?
            .ok_or_else(|| format!("I4: rank {rank} lost its mirror across recovery"))?;
        if rep.unrecoverable != 0 {
            return Err(format!(
                "I4: rank {rank} scrub found {} unrecoverable extents",
                rep.unrecoverable
            ));
        }
    }
    // I3: the stack keeps working — a fresh write commits, and the epoch
    // it seals sits in [confirmed + 1, started + 1].
    for rank in 0..cfg.ranks {
        let fs = rt.rank_fs(rank).map_err(|e| format!("I3: {e:?}"))?;
        let mut data = vec![0u8; 4 << 10];
        pattern_fill(&mut data, file_seed(cfg, 0, rank, 0, 4), 0);
        let fd = fs
            .create("/post_recovery.ckpt", 0o644)
            .map_err(|e| format!("I3: rank {rank} post-recovery create: {e:?}"))?;
        fs.write(fd, &data)
            .map_err(|e| format!("I3: rank {rank} post-recovery write: {e:?}"))?;
        fs.close(fd)
            .map_err(|e| format!("I3: rank {rank} post-recovery close: {e:?}"))?;
        let e = rt
            .commit_epoch_rank(rank)
            .map_err(|e| format!("I3: rank {rank} post-recovery commit: {e:?}"))?
            .ok_or_else(|| format!("I3: rank {rank} replicated commit sealed nothing"))?;
        let lo = st.sealed[rank as usize] + 1;
        let hi = st.started[rank as usize] + 1;
        if e < lo || e > hi {
            return Err(format!(
                "I3: rank {rank} resumed at epoch {e}, bound [{lo}, {hi}] \
                 (confirmed {}, started {})",
                st.sealed[rank as usize], st.started[rank as usize]
            ));
        }
    }
    Ok(())
}

/// Enumerate the universe and execute every crash point (stride-sampled
/// down to `max_points` if the universe is larger), shrinking each
/// failure to its minimal failing index. `telemetry` receives the
/// `crashverse.points` / `crashverse.failures` / `crashverse.shrink_steps`
/// counters.
pub fn explore(cfg: &UniverseConfig, telemetry: &Telemetry) -> Result<UniverseReport, String> {
    let count = count_universe(cfg)?;
    let total = count.total;
    let stride = match cfg.max_points {
        Some(m) if m > 0 && total > m => total.div_ceil(m),
        _ => 1,
    };
    let points_counter = telemetry.counter("crashverse.points");
    let failures_counter = telemetry.counter("crashverse.failures");
    let shrink_counter = telemetry.counter("crashverse.shrink_steps");
    let mut report = UniverseReport {
        fingerprint: cfg.fingerprint(),
        total_ops: total,
        per_kind: count.per_kind,
        points_run: 0,
        verdicts: Vec::new(),
        failures: Vec::new(),
        shrink_steps: 0,
    };
    // Points are fully independent — each builds its own stack from
    // scratch — so the scan fans out across threads. Verdicts are
    // per-point deterministic, and the report is assembled in ascending
    // index order, so parallel execution changes nothing observable.
    let indices: Vec<u64> = (0..total).step_by(stride as usize).collect();
    let points: Vec<PointVerdict> = indices.par_iter().map(|&k| run_point(cfg, k)).collect();
    for (i, v) in points.iter().enumerate() {
        report.points_run += 1;
        points_counter.inc();
        report.verdicts.push((v.op_index, v.passed));
        if v.passed || report.failures.len() >= MAX_FAILURES {
            continue;
        }
        // Minimal failing index: every sampled point below passed, so
        // only the gap since the previous sample needs scanning —
        // ascending, stopping at the first failure.
        let mut min = v.clone();
        let gap_lo = if i == 0 { 0 } else { indices[i - 1] + 1 };
        for j in gap_lo..min.op_index {
            report.shrink_steps += 1;
            shrink_counter.inc();
            let vj = run_point(cfg, j);
            if !vj.passed {
                min = vj;
                break;
            }
        }
        failures_counter.inc();
        report.failures.push(Failure {
            op_index: min.op_index,
            fired_kind: min.fired_kind,
            violation: min
                .violation
                .unwrap_or_else(|| "invariant violation".to_string()),
            dump: min.dump,
            replay: cfg.replay_command(min.op_index),
        });
    }
    Ok(report)
}

// ---------------------------------------------------------------------
// Nested exploration: crash the recovery of a crashed universe
// ---------------------------------------------------------------------

/// The supervisor policy nested points recover under: exactly one
/// re-attempt (the ISSUE's contract — *every* nested point must recover
/// on the second attempt), no quarantine (a point that cannot come back
/// must fail loudly, not get parked), and a negligible backoff so grids
/// stay fast.
fn nested_policy() -> RecoveryPolicy {
    RecoveryPolicy {
        max_attempts: 2,
        base_backoff_ns: 1_000,
        deadline_ns: 60_000_000_000,
        quarantine_after: 0,
    }
}

/// What the explorer decided about one nested crash point `(k, j)`.
#[derive(Debug, Clone)]
pub struct NestedVerdict {
    /// Outer crash index `k` (a durability op).
    pub outer: u64,
    /// Nested crash index `j` (a recovery op inside the first attempt).
    pub nested: u64,
    /// Did every invariant hold?
    pub passed: bool,
    /// Outer index at which the crash actually fired.
    pub outer_fired: Option<u64>,
    /// Nested index at which recovery was killed (`None` when `j` lies
    /// beyond that universe's recovery op count — a vacuous pass).
    pub nested_fired: Option<u64>,
    /// Kind of the recovery op that died.
    pub nested_kind: Option<&'static str>,
    /// Supervisor re-attempts taken (1 whenever the nested crash fired).
    pub restarts: u64,
    /// First invariant violation, when one was found.
    pub violation: Option<String>,
    /// Flight-recorder counterexample dump, when one was written.
    pub dump: Option<PathBuf>,
}

/// A failing nested point.
#[derive(Debug, Clone)]
pub struct NestedFailure {
    /// Outer crash index.
    pub outer: u64,
    /// Nested crash index.
    pub nested: u64,
    /// Kind of the recovery op that died there.
    pub nested_kind: Option<&'static str>,
    /// The invariant that broke.
    pub violation: String,
    /// `FLIGHT_*.jsonl` counterexample, when `dump_dir` was set.
    pub dump: Option<PathBuf>,
    /// Command line pinning (seed, both crash indices, fingerprint).
    pub replay: String,
}

/// The explorer's summary of one nested `(k, j)` grid.
#[derive(Debug, Clone)]
pub struct NestedReport {
    /// Config fingerprint the verdicts are bound to.
    pub fingerprint: u64,
    /// Size of the outer crash universe.
    pub outer_total: u64,
    /// Outer indices sampled into the grid.
    pub outer_points: u64,
    /// Nested points executed across all sampled outer indices.
    pub points_run: u64,
    /// Points where both crashes actually fired (non-vacuous grid mass).
    pub double_fired: u64,
    /// Recovery ops seen per [`RecoveryOp`] kind across all counting
    /// runs, indexed by `code() - 1` — proves the nested plane reaches
    /// every recovery site.
    pub per_kind: [u64; RECOVERY_OP_KINDS],
    /// Supervisor re-attempts taken across the grid (the replay
    /// re-entries the idempotence argument rests on).
    pub restarts: u64,
    /// `(outer, nested, passed)` for every executed point.
    pub verdicts: Vec<(u64, u64, bool)>,
    /// Failing points.
    pub failures: Vec<NestedFailure>,
}

/// Kind of the recovery op that fired, recovered from the flight
/// recorder's `RecoveryCrashPoint` event (`a` = op code, `b` = nested
/// index).
fn nested_fired_kind(telemetry: &Telemetry, fired: Option<u64>) -> Option<&'static str> {
    let n = fired?;
    telemetry
        .recorder()
        .events()
        .into_iter()
        .find(|e| e.kind == FlightKind::RecoveryCrashPoint && e.b == n)
        .and_then(|e| RecoveryOp::from_code(e.a))
        .map(RecoveryOp::name)
}

/// Size one outer point's *recovery* universe: run the workload to crash
/// index `k`, kill the job, and recover it under the supervisor with the
/// nested plane counting. Returns the outer fire index (None when `k`
/// lies beyond the universe) and the recovery op census.
pub fn count_recovery_universe(
    cfg: &UniverseConfig,
    k: u64,
) -> Result<(Option<u64>, chaos::RecoveryReport), String> {
    let telemetry = Telemetry::new();
    let chaos = ChaosHandle::new();
    let mut stack = build_stack(cfg, &telemetry, &chaos)?;
    chaos.crash_at_op(k, &telemetry);
    let mut st = RunState::new(cfg.ranks);
    let failed = drive(&mut stack, cfg, &mut st);
    chaos.disarm_crash();
    let outer = chaos.crash_report().fired;
    if outer.is_none() {
        if let Some(f) = failed {
            return Err(format!("workload failed at {f:?} with no crash fired"));
        }
        return Ok((None, chaos.recovery_report()));
    }
    let handle = stack.rt.crash_job();
    chaos.arm_recovery_count();
    let recovered = RecoverySupervisor::new(nested_policy()).attach(handle);
    let report = chaos.recovery_report();
    chaos.disarm_recovery();
    recovered.map_err(|e| format!("counting recovery of outer {k} failed: {e:?}"))?;
    Ok((outer, report))
}

/// Execute one nested crash point: crash the workload at durability op
/// `k`, then kill the *first recovery attempt* at recovery op `j`. The
/// supervisor's second attempt must fully recover the job: all four
/// outer invariants I1–I4 verified against the same oracle — recovery
/// after a crashed recovery must be byte-identical to recovery after a
/// crash, which the outer plane already proved byte-identical to no
/// crash at all.
pub fn run_nested_point(cfg: &UniverseConfig, k: u64, j: u64) -> NestedVerdict {
    let telemetry = Telemetry::new();
    let chaos = ChaosHandle::new();
    let dump = cfg
        .dump_dir
        .as_ref()
        .map(|d| d.join(format!("FLIGHT_crashverse_op{k:06}_rec{j:04}.jsonl")));
    let mut verdict = NestedVerdict {
        outer: k,
        nested: j,
        passed: false,
        outer_fired: None,
        nested_fired: None,
        nested_kind: None,
        restarts: 0,
        violation: None,
        dump: None,
    };
    let mut stack = match build_stack(cfg, &telemetry, &chaos) {
        Ok(stack) => stack,
        Err(e) => {
            verdict.violation = Some(format!("stack build failed: {e}"));
            return verdict;
        }
    };
    chaos.crash_at_op(k, &telemetry);
    let mut st = RunState::new(cfg.ranks);
    let failed = drive(&mut stack, cfg, &mut st);
    chaos.disarm_crash();
    let outer_report = chaos.crash_report();
    verdict.outer_fired = outer_report.fired;
    if outer_report.fired.is_none() {
        if let Some(f) = failed {
            verdict.violation = Some(format!("workload failed at {f:?} with no crash fired"));
            verdict.dump = dump_now(&telemetry, &dump, k);
            return verdict;
        }
        verdict.passed = true;
        return verdict;
    }
    let handle = stack.rt.crash_job();
    chaos.crash_in_recovery(j, &telemetry);
    let recovered = RecoverySupervisor::new(nested_policy()).attach(handle);
    let rec_report = chaos.recovery_report();
    chaos.disarm_recovery();
    verdict.nested_fired = rec_report.fired;
    verdict.nested_kind = nested_fired_kind(&telemetry, rec_report.fired);
    let supervised = match recovered {
        Ok(s) => s,
        Err(e) => {
            verdict.violation = Some(format!(
                "I1: second recovery attempt failed after nested crash: {e:?}"
            ));
            verdict.dump = dump_now_as(&telemetry, &dump, FlightKind::RecoveryCrashPoint);
            return verdict;
        }
    };
    verdict.restarts = supervised.outcome().restarts;
    if rec_report.fired.is_some() && verdict.restarts == 0 {
        verdict.violation = Some(
            "nested crash fired but the supervisor recorded no restart — \
             the kill was absorbed without a re-attempt"
                .to_string(),
        );
        verdict.dump = dump_now_as(&telemetry, &dump, FlightKind::RecoveryCrashPoint);
        return verdict;
    }
    let mut rt2 = supervised.into_runtime();
    match verify(&mut rt2, cfg, &st, failed.as_ref()) {
        Ok(()) => verdict.passed = true,
        Err(v) => {
            verdict.violation = Some(v);
            verdict.dump = dump_now_as(&telemetry, &dump, FlightKind::RecoveryCrashPoint);
        }
    }
    verdict
}

/// Explore a sampled `(k, j)` grid: `outer_points` outer crash indices
/// stride-sampled from the universe, and for each the recovery universe
/// is sized and up to `nested_per_outer` nested indices stride-sampled
/// from it. Counters: `crashverse.nested_points`,
/// `crashverse.nested_failures`, `crashverse.nested_restarts`.
pub fn explore_nested(
    cfg: &UniverseConfig,
    outer_points: u64,
    nested_per_outer: u64,
    telemetry: &Telemetry,
) -> Result<NestedReport, String> {
    let count = count_universe(cfg)?;
    let total = count.total;
    let stride = total.div_ceil(outer_points.max(1)).max(1);
    let outer_ks: Vec<u64> = (0..total).step_by(stride as usize).collect();
    let points_counter = telemetry.counter("crashverse.nested_points");
    let failures_counter = telemetry.counter("crashverse.nested_failures");
    let restarts_counter = telemetry.counter("crashverse.nested_restarts");
    let mut report = NestedReport {
        fingerprint: cfg.fingerprint(),
        outer_total: total,
        outer_points: outer_ks.len() as u64,
        points_run: 0,
        double_fired: 0,
        per_kind: [0; RECOVERY_OP_KINDS],
        restarts: 0,
        verdicts: Vec::new(),
        failures: Vec::new(),
    };
    // Outer points are independent (each nested run rebuilds the whole
    // stack), so the grid fans out across threads per outer index; each
    // inner scan stays serial for the deterministic nested op order.
    type Column = (Option<String>, [u64; RECOVERY_OP_KINDS], Vec<NestedVerdict>);
    let columns: Vec<Column> = outer_ks
        .par_iter()
        .map(|&k| match count_recovery_universe(cfg, k) {
            Err(e) => (Some(e), [0; RECOVERY_OP_KINDS], Vec::new()),
            Ok((None, _)) => (None, [0; RECOVERY_OP_KINDS], Vec::new()),
            Ok((Some(_), rec)) => {
                let m = rec.total;
                let jstride = m.div_ceil(nested_per_outer.max(1)).max(1);
                let verdicts = (0..m)
                    .step_by(jstride as usize)
                    .map(|j| run_nested_point(cfg, k, j))
                    .collect();
                (None, rec.per_kind, verdicts)
            }
        })
        .collect();
    for (i, (err, per_kind, verdicts)) in columns.into_iter().enumerate() {
        if let Some(e) = err {
            return Err(format!("outer {} column failed: {e}", outer_ks[i]));
        }
        for (dst, n) in report.per_kind.iter_mut().zip(per_kind) {
            *dst += n;
        }
        for v in verdicts {
            report.points_run += 1;
            points_counter.inc();
            report.restarts += v.restarts;
            restarts_counter.add(v.restarts);
            if v.outer_fired.is_some() && v.nested_fired.is_some() {
                report.double_fired += 1;
            }
            report.verdicts.push((v.outer, v.nested, v.passed));
            if !v.passed && report.failures.len() < MAX_FAILURES {
                failures_counter.inc();
                report.failures.push(NestedFailure {
                    outer: v.outer,
                    nested: v.nested,
                    nested_kind: v.nested_kind,
                    violation: v
                        .violation
                        .unwrap_or_else(|| "invariant violation".to_string()),
                    dump: v.dump,
                    replay: cfg.replay_nested_command(v.outer, v.nested),
                });
            }
        }
    }
    Ok(report)
}

/// `Arc`-free convenience used by tests and the smoke binary: a plain
/// pass/fail over the whole universe.
pub fn universe_is_clean(report: &UniverseReport) -> bool {
    report.failures.is_empty()
}

/// Nested twin of [`universe_is_clean`].
pub fn nested_is_clean(report: &NestedReport) -> bool {
    report.failures.is_empty()
}

/// Outcome of one forced quarantine → degraded-serve → rejoin cycle.
#[derive(Debug, Clone)]
pub struct QuarantineCycle {
    /// Ranks the supervisor parked after exhausting its attempts.
    pub quarantined: u64,
    /// Degraded read-only mounts that served the sealed bytes back.
    pub degraded_reads: u64,
    /// Parked ranks brought back onto fresh namespaces and re-verified.
    pub rejoined: u64,
}

/// Prove the supervisor's containment path end to end: seal a known
/// epoch, kill rank 0's primary shard, and recover under a lenient
/// policy — the dead shard fails every bounded attempt, so its ranks
/// are quarantined and served read-only from the replica's last
/// complete epoch. The sealed bytes must read back byte-exact from the
/// degraded mount, and every parked rank must rejoin onto a fresh
/// namespace and take writes again.
pub fn quarantine_cycle(cfg: &UniverseConfig) -> Result<QuarantineCycle, String> {
    let telemetry = Telemetry::new();
    let chaos = ChaosHandle::new();
    let mut stack = build_stack(cfg, &telemetry, &chaos)?;
    let mut want: Vec<Vec<u8>> = Vec::new();
    for rank in 0..cfg.ranks {
        let mut data = vec![0u8; 32 << 10];
        pattern_fill(&mut data, file_seed(cfg, 0, rank, 0, 9), 0);
        let fs = stack
            .rt
            .rank_fs(rank)
            .map_err(|e| format!("rank {rank} fs: {e:?}"))?;
        let fd = fs
            .create("/cycle.dat", 0o644)
            .map_err(|e| format!("rank {rank} create: {e:?}"))?;
        fs.write(fd, &data)
            .map_err(|e| format!("rank {rank} write: {e:?}"))?;
        fs.close(fd)
            .map_err(|e| format!("rank {rank} close: {e:?}"))?;
        stack
            .rt
            .commit_epoch_rank(rank)
            .map_err(|e| format!("rank {rank} commit: {e:?}"))?;
        want.push(data);
    }
    stack
        .rt
        .kill_primary_shard(0)
        .map_err(|e| format!("shard kill: {e:?}"))?;
    let handle = stack.rt.crash_job();
    let policy = RecoveryPolicy {
        max_attempts: 2,
        base_backoff_ns: 1_000,
        deadline_ns: 60_000_000_000,
        quarantine_after: 2,
    };
    let mut supervised = RecoverySupervisor::new(policy)
        .attach(handle)
        .map_err(|e| format!("supervised attach: {e:?}"))?;
    let parked = supervised.quarantined().to_vec();
    if parked.is_empty() {
        return Err("dead primary shard quarantined no rank".into());
    }
    let mut degraded_reads = 0u64;
    for &rank in &parked {
        let d = supervised
            .degraded_mut(rank)
            .ok_or_else(|| format!("rank {rank} parked without a degraded mount"))?;
        let got = d
            .read_file("/cycle.dat")
            .map_err(|e| format!("rank {rank} degraded read: {e:?}"))?;
        if got != want[rank as usize] {
            return Err(format!(
                "degraded serve of rank {rank} returned wrong bytes"
            ));
        }
        degraded_reads += 1;
    }
    let mut rejoined = 0u64;
    for &rank in &parked {
        supervised
            .rejoin(rank, &stack.rack, &stack.topo)
            .map_err(|e| format!("rank {rank} rejoin: {e:?}"))?;
        rejoined += 1;
    }
    let rt = supervised.runtime_mut();
    for &rank in &parked {
        let fs = rt
            .rank_fs(rank)
            .map_err(|e| format!("rank {rank} post-rejoin fs: {e:?}"))?;
        let fd = fs
            .create("/post_rejoin.dat", 0o644)
            .map_err(|e| format!("rank {rank} post-rejoin create: {e:?}"))?;
        fs.write(fd, b"rejoined")
            .map_err(|e| format!("rank {rank} post-rejoin write: {e:?}"))?;
        fs.close(fd)
            .map_err(|e| format!("rank {rank} post-rejoin close: {e:?}"))?;
        rt.commit_epoch_rank(rank)
            .map_err(|e| format!("rank {rank} post-rejoin commit: {e:?}"))?;
    }
    Ok(QuarantineCycle {
        quarantined: parked.len() as u64,
        degraded_reads,
        rejoined,
    })
}

// Re-export so binaries depending on crashverse alone can name them.
pub use chaos::CrashReport;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// Smallest universe that still contains every op kind: one epoch,
    /// one 64 KiB file per rank plus overwrite + churn + commit.
    fn tiny() -> UniverseConfig {
        UniverseConfig {
            epochs: 1,
            files_per_epoch: 1,
            write_kib: 64,
            ..UniverseConfig::default()
        }
    }

    fn tiny_total() -> u64 {
        static TOTAL: OnceLock<u64> = OnceLock::new();
        *TOTAL.get_or_init(|| count_universe(&tiny()).expect("clean counting run").total)
    }

    #[test]
    fn counting_run_is_deterministic_and_covers_all_kinds() {
        let a = count_universe(&tiny()).expect("count A");
        let b = count_universe(&tiny()).expect("count B");
        assert_eq!(a.total, b.total, "universe size must be reproducible");
        assert_eq!(
            a.per_kind, b.per_kind,
            "per-kind counts must be reproducible"
        );
        assert!(a.total >= 20, "tiny universe too small: {}", a.total);
        for op in [
            CrashOp::WalAppend,
            CrashOp::BlockWrite,
            CrashOp::MirrorWrite,
        ] {
            assert!(a.kind(op) > 0, "no {} ops counted", op.name());
        }
        assert!(
            a.kind(CrashOp::ManifestBody) > 0 && a.kind(CrashOp::CommitRecord) > 0,
            "commit path not in the universe"
        );
    }

    #[test]
    fn sampled_universe_passes_and_verdicts_are_deterministic() {
        let cfg = UniverseConfig {
            max_points: Some(10),
            ..tiny()
        };
        let t = Telemetry::new();
        let a = explore(&cfg, &t).expect("explore A");
        let b = explore(&cfg, &t).expect("explore B");
        assert!(
            a.failures.is_empty(),
            "crash universe has violations: {:?}",
            a.failures
        );
        assert_eq!(a.total_ops, b.total_ops);
        assert_eq!(a.verdicts, b.verdicts, "verdicts must be reproducible");
        assert_eq!(a.fingerprint, b.fingerprint);
        assert!(a.points_run >= 10);
        assert_eq!(a.shrink_steps, 0);
        assert_eq!(t.snapshot().counter("crashverse.failures"), 0);
        assert!(t.snapshot().counter("crashverse.points") >= 20);
    }

    #[test]
    fn point_beyond_universe_passes_vacuously() {
        let v = run_point(&tiny(), tiny_total() + 100);
        assert!(v.passed, "vacuous point failed: {:?}", v.violation);
        assert_eq!(v.fired, None);
    }

    #[test]
    fn first_and_last_points_hold_invariants() {
        for k in [0, tiny_total() - 1] {
            let v = run_point(&tiny(), k);
            assert!(
                v.passed,
                "crash at op {k} violated invariants: {:?}",
                v.violation
            );
            assert_eq!(v.fired, Some(k), "crash must fire at the armed index");
        }
    }

    #[test]
    fn nested_counting_covers_recovery_kinds() {
        // Crashing the very first durability op still leaves a full
        // recovery to count: mount (snapshot + log scan + replay),
        // manifest scan, and the replicated mirror rescan.
        let (outer, rec) = count_recovery_universe(&tiny(), 0).expect("count at k=0");
        assert_eq!(outer, Some(0), "outer crash must fire at the armed index");
        assert!(rec.total >= 4, "nested universe too small: {}", rec.total);
        for op in [
            RecoveryOp::SnapshotLoad,
            RecoveryOp::LogScan,
            RecoveryOp::ManifestScan,
            RecoveryOp::RescanChunk,
        ] {
            assert!(rec.kind(op) > 0, "no {} ops counted", op.name());
        }
        // A late crash leaves committed records in the log, so the
        // mount's replay plane is part of the nested universe too.
        let (outer, late) =
            count_recovery_universe(&tiny(), tiny_total() - 1).expect("count at last k");
        assert!(outer.is_some());
        assert!(
            late.kind(RecoveryOp::ReplayApply) > 0,
            "late-point recovery replayed nothing"
        );
        assert!(late.total > rec.total, "later crash must mean more replay");
    }

    #[test]
    fn nested_tiny_grid_recovers_every_point() {
        let t = Telemetry::new();
        let report = explore_nested(&tiny(), 4, 4, &t).expect("nested grid");
        assert!(
            nested_is_clean(&report),
            "nested universe has violations: {:?}",
            report.failures
        );
        assert!(report.points_run >= 8, "grid too sparse: {report:?}");
        assert!(
            report.double_fired >= 8,
            "too few points fired both crashes: {}",
            report.double_fired
        );
        assert_eq!(
            report.restarts, report.double_fired,
            "every double-fire costs exactly one supervisor restart"
        );
        let snap = t.snapshot();
        assert_eq!(snap.counter("crashverse.nested_failures"), 0);
        assert_eq!(snap.counter("crashverse.nested_points"), report.points_run);
    }

    #[test]
    fn quarantine_cycle_parks_serves_and_rejoins() {
        let c = quarantine_cycle(&tiny()).expect("quarantine cycle");
        assert!(c.quarantined >= 1, "no rank parked: {c:?}");
        assert_eq!(c.degraded_reads, c.quarantined, "{c:?}");
        assert_eq!(c.rejoined, c.quarantined, "{c:?}");
    }

    #[test]
    fn double_recovery_is_idempotent() {
        // Crash mid-universe, kill the first recovery attempt at its
        // first op, let the supervisor's second attempt land — then
        // mount everything a *third* time and require the same bytes.
        let cfg = tiny();
        let k = tiny_total() / 2;
        let telemetry = Telemetry::new();
        let chaos = ChaosHandle::new();
        let mut stack = build_stack(&cfg, &telemetry, &chaos).expect("stack");
        chaos.crash_at_op(k, &telemetry);
        let mut st = RunState::new(cfg.ranks);
        let failed = drive(&mut stack, &cfg, &mut st);
        chaos.disarm_crash();
        assert!(
            chaos.crash_report().fired.is_some(),
            "mid-universe point must fire"
        );
        let handle = stack.rt.crash_job();
        chaos.crash_in_recovery(0, &telemetry);
        let supervised = RecoverySupervisor::new(nested_policy())
            .attach(handle)
            .expect("supervised recovery after nested crash");
        chaos.disarm_recovery();
        assert!(
            supervised.outcome().restarts >= 1,
            "nested kill not absorbed"
        );
        let mut rt = supervised.into_runtime();
        verify(&mut rt, &cfg, &st, failed.as_ref()).expect("first recovery verifies");
        // The first verify sealed one more epoch per rank (its I3 probe
        // commit); shift the oracle's bound before the second pass.
        for rank in 0..cfg.ranks as usize {
            st.sealed[rank] += 1;
            st.started[rank] += 1;
        }
        let handle2 = rt.crash_job();
        let mut rt2 = NvmeCrRuntime::attach(handle2).expect("second mount");
        verify(&mut rt2, &cfg, &st, failed.as_ref()).expect("double mount changed visible bytes");
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            /// Random crash indices never violate the restore invariant.
            #[test]
            fn random_crash_indices_recover(raw in 0u64..u64::MAX) {
                let k = raw % tiny_total();
                let v = run_point(&tiny(), k);
                prop_assert!(
                    v.passed,
                    "crash at op {} violated invariants: {:?}",
                    k,
                    v.violation
                );
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(3))]

            /// Random (outer, nested) pairs: killing the j-th op of the
            /// first recovery attempt never survives to the verdict —
            /// the second attempt restores byte-identical state.
            #[test]
            fn random_nested_pairs_recover(kr in 0u64..u64::MAX, jr in 0u64..u64::MAX) {
                let k = kr % tiny_total();
                let (outer, rec) = count_recovery_universe(&tiny(), k)
                    .map_err(TestCaseError::fail)?;
                prop_assert_eq!(outer, Some(k));
                prop_assert!(rec.total > 0, "empty recovery universe at k={}", k);
                let j = jr % rec.total;
                let v = run_nested_point(&tiny(), k, j);
                prop_assert!(
                    v.passed,
                    "nested crash ({}, {}) violated invariants: {:?}",
                    k,
                    j,
                    v.violation
                );
                prop_assert_eq!(v.nested_fired, Some(j));
                prop_assert!(v.restarts >= 1);
            }
        }
    }
}
