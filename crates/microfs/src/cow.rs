//! Copy-on-write epoch tracking: extent-granular dirty intervals and
//! whiteouts (ROADMAP item: CoW extent snapshots).
//!
//! A checkpoint epoch starts clean. The first write touching a clean span
//! "copies it up" into the epoch's dirty set — from then on the span is
//! known-dirty and rewrites inside it cost nothing to track. Deletes and
//! truncations record *whiteouts*: spans whose previous content no longer
//! exists. The tracker answers, at epoch end, exactly which device spans a
//! delta epoch must carry, and accounts the copy-up volume in
//! `cow.copy_up_bytes`.
//!
//! Two layers reuse this structure: `MicroFs` tracks device-space spans
//! (driving delta epoch manifests and replica discards), and the
//! workloads crate tracks application-image spans (so an incremental
//! checkpoint writes only what the application actually mutated).

use std::collections::BTreeMap;
use std::sync::Arc;

use telemetry::{Counter, Telemetry};

/// A set of disjoint half-open byte intervals, coalesced on insert.
#[derive(Debug, Clone, Default)]
pub struct IntervalSet {
    /// start → end (exclusive), non-overlapping, non-adjacent.
    map: BTreeMap<u64, u64>,
}

impl IntervalSet {
    /// The empty set.
    pub fn new() -> Self {
        IntervalSet::default()
    }

    /// Insert `[start, end)`, merging with anything it touches. Returns
    /// the number of bytes that were not already covered.
    pub fn insert(&mut self, start: u64, end: u64) -> u64 {
        if start >= end {
            return 0;
        }
        let mut new_start = start;
        let mut new_end = end;
        let mut already = 0u64;
        // Predecessor may reach into (or abut) the new interval.
        if let Some((&s, &e)) = self.map.range(..=start).next_back() {
            if e >= start {
                new_start = s;
                new_end = new_end.max(e);
                already += e.min(end).saturating_sub(start);
                self.map.remove(&s);
            }
        }
        // Successors starting inside (or abutting) the new interval.
        let absorbed: Vec<(u64, u64)> =
            self.map.range(start..=end).map(|(&s, &e)| (s, e)).collect();
        for (s, e) in absorbed {
            already += e.min(end).saturating_sub(s);
            new_end = new_end.max(e);
            self.map.remove(&s);
        }
        self.map.insert(new_start, new_end);
        (end - start).saturating_sub(already)
    }

    /// True when `[start, end)` is entirely covered.
    pub fn covers(&self, start: u64, end: u64) -> bool {
        if start >= end {
            return true;
        }
        match self.map.range(..=start).next_back() {
            Some((_, &e)) => e >= end,
            None => false,
        }
    }

    /// True when `[start, end)` overlaps any covered byte.
    pub fn intersects(&self, start: u64, end: u64) -> bool {
        if start >= end {
            return false;
        }
        if let Some((_, &e)) = self.map.range(..=start).next_back() {
            if e > start {
                return true;
            }
        }
        self.map.range(start..end).next().is_some()
    }

    /// True when nothing is covered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The intervals as `(start, len)` spans, in offset order.
    pub fn spans(&self) -> Vec<(u64, u64)> {
        self.map.iter().map(|(&s, &e)| (s, e - s)).collect()
    }

    /// Total covered bytes.
    pub fn total_bytes(&self) -> u64 {
        self.map.iter().map(|(&s, &e)| e - s).sum()
    }

    /// Drop all intervals.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

/// Per-epoch dirty tracking with copy-up accounting and whiteouts.
#[derive(Clone)]
pub struct CowTracker {
    dirty: IntervalSet,
    whiteouts: Vec<(u64, u64)>,
    /// Bytes copied up this run: first-touch-per-epoch volume.
    copy_up_bytes: Arc<Counter>,
}

impl CowTracker {
    /// A tracker reporting `cow.copy_up_bytes` to `t`.
    pub fn new(t: &Telemetry) -> Self {
        CowTracker {
            dirty: IntervalSet::new(),
            whiteouts: Vec::new(),
            copy_up_bytes: t.counter("cow.copy_up_bytes"),
        }
    }

    /// Start a new epoch: everything is clean again.
    pub fn begin_epoch(&mut self) {
        self.dirty.clear();
        self.whiteouts.clear();
    }

    /// Record a write of `len` bytes at `offset`. Bytes not yet dirty this
    /// epoch are copied up (counted once); rewrites are free.
    pub fn note_write(&mut self, offset: u64, len: u64) {
        if len == 0 {
            return;
        }
        let copied_up = self.dirty.insert(offset, offset + len);
        if copied_up > 0 {
            self.copy_up_bytes.add(copied_up);
        }
    }

    /// Record a whiteout: `[offset, offset+len)` no longer exists.
    pub fn note_whiteout(&mut self, offset: u64, len: u64) {
        if len == 0 {
            return;
        }
        self.whiteouts.push((offset, len));
    }

    /// Spans written this epoch, coalesced, in offset order.
    pub fn dirty_spans(&self) -> Vec<(u64, u64)> {
        self.dirty.spans()
    }

    /// Whiteouts recorded this epoch, in arrival order.
    pub fn whiteout_spans(&self) -> &[(u64, u64)] {
        &self.whiteouts
    }

    /// Bytes dirtied this epoch.
    pub fn dirty_bytes(&self) -> u64 {
        self.dirty.total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_set_coalesces_and_counts_new_bytes() {
        let mut s = IntervalSet::new();
        assert_eq!(s.insert(10, 20), 10);
        assert_eq!(s.insert(30, 40), 10);
        assert_eq!(s.spans(), vec![(10, 10), (30, 10)]);
        // Bridge the gap: only the gap counts as new.
        assert_eq!(s.insert(15, 35), 10);
        assert_eq!(s.spans(), vec![(10, 30)]);
        // Fully covered insert adds nothing.
        assert_eq!(s.insert(12, 18), 0);
        // Adjacent intervals merge.
        assert_eq!(s.insert(40, 50), 10);
        assert_eq!(s.spans(), vec![(10, 40)]);
        assert_eq!(s.total_bytes(), 40);
    }

    #[test]
    fn interval_set_coverage_queries() {
        let mut s = IntervalSet::new();
        s.insert(100, 200);
        assert!(s.covers(100, 200));
        assert!(s.covers(150, 160));
        assert!(!s.covers(50, 150));
        assert!(!s.covers(150, 250));
        assert!(s.intersects(199, 300));
        assert!(s.intersects(0, 101));
        assert!(!s.intersects(0, 100));
        assert!(!s.intersects(200, 300));
        assert!(s.covers(5, 5), "empty span is vacuously covered");
    }

    #[test]
    fn tracker_copy_up_counts_first_touch_only() {
        let t = Telemetry::new();
        let mut c = CowTracker::new(&t);
        c.note_write(0, 100);
        c.note_write(50, 100); // 50 new, 50 rewrite
        c.note_write(0, 100); // all rewrite
        assert_eq!(t.snapshot().counter("cow.copy_up_bytes"), 150);
        assert_eq!(c.dirty_spans(), vec![(0, 150)]);
        assert_eq!(c.dirty_bytes(), 150);
        c.note_whiteout(4096, 1024);
        assert_eq!(c.whiteout_spans(), &[(4096, 1024)]);
        c.begin_epoch();
        assert!(c.dirty_spans().is_empty());
        assert!(c.whiteout_spans().is_empty());
        // Next epoch copies up again.
        c.note_write(0, 10);
        assert_eq!(t.snapshot().counter("cow.copy_up_bytes"), 160);
    }
}
