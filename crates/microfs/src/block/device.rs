//! The device abstraction microfs writes through.
//!
//! `microfs` is substrate-agnostic: in unit tests it runs over an in-memory
//! [`MemDevice`]; in the NVMe-CR runtime it runs over an NVMf connection to
//! a remote SSD partition (the `nvmecr` crate provides that impl). The
//! trait is deliberately a thin byte-addressed interface — the *filesystem*
//! decides hugeblock alignment; the device just moves bytes.

use std::fmt;

/// Device-level IO failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DevError(pub String);

impl fmt::Display for DevError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "device error: {}", self.0)
    }
}

impl std::error::Error for DevError {}

/// Lifetime IO counters, used for the paper's metadata-overhead accounting
/// (Table I) — callers snapshot these before/after metadata operations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoCounters {
    /// Write operations issued.
    pub writes: u64,
    /// Read operations issued.
    pub reads: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Payload bytes memcpy'd by the device path itself (zero for devices
    /// whose transport moves buffers by reference).
    pub bytes_copied: u64,
}

/// A byte-addressed storage device.
pub trait BlockDevice {
    /// Write `data` at `offset`.
    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<(), DevError>;

    /// Read into `buf` from `offset`.
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<(), DevError>;

    /// Ensure previously written data is durable.
    fn flush(&mut self) -> Result<(), DevError>;

    /// Device (partition) size in bytes.
    fn size(&self) -> u64;

    /// Lifetime IO counters.
    fn counters(&self) -> IoCounters;

    /// Read `len` bytes into a fresh vector.
    fn read_vec(&mut self, offset: u64, len: usize) -> Result<Vec<u8>, DevError> {
        let mut v = vec![0u8; len];
        self.read_at(offset, &mut v)?;
        Ok(v)
    }

    /// Write a batch of `(offset, data)` extents. The default issues them
    /// one at a time; pipelined devices (the NVMf-backed one) override this
    /// to keep `queue_depth` commands in flight so a whole hugeblock batch
    /// crosses the fabric in one submission window. Extents take effect in
    /// slice order — a later extent overlapping an earlier one wins.
    fn write_vectored_at(&mut self, writes: &[(u64, &[u8])]) -> Result<(), DevError> {
        for &(offset, data) in writes {
            self.write_at(offset, data)?;
        }
        Ok(())
    }

    /// Read a batch of `(offset, buffer)` extents. The default issues them
    /// one at a time; pipelined devices override to batch the reads
    /// through their submission window.
    fn read_vectored_at(&mut self, reads: &mut [(u64, &mut [u8])]) -> Result<(), DevError> {
        for (offset, buf) in reads.iter_mut() {
            self.read_at(*offset, buf)?;
        }
        Ok(())
    }

    /// Hint that `[offset, offset+len)` no longer holds live data (a file
    /// was unlinked or truncated). Devices that maintain per-extent state
    /// (the mirrored NVMf device) drop the span from their maps so delta
    /// epochs can record it as a whiteout; plain devices ignore it.
    fn discard_at(&mut self, offset: u64, len: u64) -> Result<(), DevError> {
        let _ = (offset, len);
        Ok(())
    }
}

/// A simple in-memory device for tests and benchmarks.
#[derive(Debug, Clone)]
pub struct MemDevice {
    data: Vec<u8>,
    counters: IoCounters,
}

impl MemDevice {
    /// A zeroed device of `size` bytes.
    pub fn new(size: u64) -> Self {
        MemDevice {
            data: vec![0u8; size as usize],
            counters: IoCounters::default(),
        }
    }

    /// Clone the raw contents (crash-recovery tests snapshot the "media").
    pub fn raw(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Build a device from raw contents (restore a media snapshot).
    pub fn from_raw(data: Vec<u8>) -> Self {
        MemDevice {
            data,
            counters: IoCounters::default(),
        }
    }
}

impl BlockDevice for MemDevice {
    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<(), DevError> {
        let end = offset as usize + data.len();
        if end > self.data.len() {
            return Err(DevError(format!(
                "write [{offset}, {end}) beyond device of {}",
                self.data.len()
            )));
        }
        self.data[offset as usize..end].copy_from_slice(data);
        self.counters.writes += 1;
        self.counters.bytes_written += data.len() as u64;
        self.counters.bytes_copied += data.len() as u64;
        Ok(())
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<(), DevError> {
        let end = offset as usize + buf.len();
        if end > self.data.len() {
            return Err(DevError(format!(
                "read [{offset}, {end}) beyond device of {}",
                self.data.len()
            )));
        }
        buf.copy_from_slice(&self.data[offset as usize..end]);
        self.counters.reads += 1;
        self.counters.bytes_read += buf.len() as u64;
        self.counters.bytes_copied += buf.len() as u64;
        Ok(())
    }

    fn flush(&mut self) -> Result<(), DevError> {
        Ok(())
    }

    fn size(&self) -> u64 {
        self.data.len() as u64
    }

    fn counters(&self) -> IoCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_counters() {
        let mut d = MemDevice::new(4096);
        d.write_at(100, b"abc").unwrap();
        assert_eq!(d.read_vec(100, 3).unwrap(), b"abc");
        let c = d.counters();
        assert_eq!(
            (c.writes, c.reads, c.bytes_written, c.bytes_read),
            (1, 1, 3, 3)
        );
    }

    #[test]
    fn vectored_defaults_loop_in_slice_order() {
        let mut d = MemDevice::new(4096);
        d.write_vectored_at(&[(0, b"aaaa"), (8, b"bbbb"), (0, b"cccc")])
            .unwrap();
        let mut first = [0u8; 4];
        let mut second = [0u8; 4];
        {
            let mut reads: Vec<(u64, &mut [u8])> = vec![(0, &mut first), (8, &mut second)];
            d.read_vectored_at(&mut reads).unwrap();
        }
        assert_eq!(&first, b"cccc", "later overlapping extent wins");
        assert_eq!(&second, b"bbbb");
        assert_eq!(d.counters().writes, 3);
        assert_eq!(d.counters().reads, 2);
    }

    #[test]
    fn bounds_enforced() {
        let mut d = MemDevice::new(16);
        assert!(d.write_at(10, &[0u8; 10]).is_err());
        let mut buf = [0u8; 10];
        assert!(d.read_at(10, &mut buf).is_err());
    }

    #[test]
    fn raw_snapshot_restores_media() {
        let mut d = MemDevice::new(64);
        d.write_at(0, b"persist me").unwrap();
        let media = d.raw();
        let mut d2 = MemDevice::from_raw(media);
        assert_eq!(d2.read_vec(0, 10).unwrap(), b"persist me");
    }
}
