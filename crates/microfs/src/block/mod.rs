//! Block layer: the device trait microfs runs on, plus the circular
//! hugeblock pool.

pub mod device;
pub mod pool;

pub use device::{BlockDevice, DevError, IoCounters, MemDevice};
pub use pool::BlockPool;
