//! Circular hugeblock pool — O(1) allocation (§III-E "Hugeblocks").
//!
//! "We use a circular block pool for O(1) hugeblock allocation." The pool
//! is a ring of free block indices: allocation pops from the head, free
//! pushes to the tail. Allocation order is a pure function of the operation
//! sequence, which is the property metadata provenance relies on: replaying
//! the operation log re-allocates exactly the same blocks, so logged
//! operations never need to carry block lists.

use std::collections::VecDeque;

use crate::error::FsError;

/// A circular pool of free hugeblock indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockPool {
    free: VecDeque<u64>,
    total: u64,
}

impl BlockPool {
    /// A pool over blocks `0..total`, all free, in ascending order.
    pub fn new(total: u64) -> Self {
        BlockPool {
            free: (0..total).collect(),
            total,
        }
    }

    /// Total blocks managed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Currently free blocks.
    pub fn free_count(&self) -> u64 {
        self.free.len() as u64
    }

    /// Currently allocated blocks.
    pub fn allocated(&self) -> u64 {
        self.total - self.free_count()
    }

    /// Allocate one block — O(1).
    pub fn alloc(&mut self) -> Result<u64, FsError> {
        self.free.pop_front().ok_or(FsError::NoSpace)
    }

    /// Allocate `n` blocks, failing atomically if not enough are free.
    pub fn alloc_many(&mut self, n: u64) -> Result<Vec<u64>, FsError> {
        if self.free_count() < n {
            return Err(FsError::NoSpace);
        }
        Ok((0..n)
            .map(|_| self.free.pop_front().expect("checked"))
            .collect())
    }

    /// Return a block to the tail of the ring — O(1).
    pub fn free(&mut self, block: u64) {
        debug_assert!(block < self.total, "freeing out-of-range block {block}");
        debug_assert!(!self.free.contains(&block), "double free of block {block}");
        self.free.push_back(block);
    }

    /// Return many blocks, preserving the given order.
    pub fn free_many(&mut self, blocks: &[u64]) {
        for &b in blocks {
            self.free(b);
        }
    }

    /// Serialize the ring (order matters: it *is* the allocator state).
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(16 + self.free.len() * 8);
        v.extend_from_slice(&self.total.to_le_bytes());
        v.extend_from_slice(&(self.free.len() as u64).to_le_bytes());
        for &b in &self.free {
            v.extend_from_slice(&b.to_le_bytes());
        }
        v
    }

    /// Deserialize; inverse of [`encode`](Self::encode).
    pub fn decode(bytes: &[u8]) -> Result<(BlockPool, usize), FsError> {
        if bytes.len() < 16 {
            return Err(FsError::Io("block pool truncated".into()));
        }
        let total = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
        let n = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
        let need = 16 + n * 8;
        if bytes.len() < need {
            return Err(FsError::Io("block pool free list truncated".into()));
        }
        let mut free = VecDeque::with_capacity(n);
        for i in 0..n {
            let s = 16 + i * 8;
            free.push_back(u64::from_le_bytes(bytes[s..s + 8].try_into().unwrap()));
        }
        Ok((BlockPool { free, total }, need))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fifo_allocation_order() {
        let mut p = BlockPool::new(4);
        assert_eq!(p.alloc().unwrap(), 0);
        assert_eq!(p.alloc().unwrap(), 1);
        p.free(0);
        assert_eq!(p.alloc().unwrap(), 2);
        assert_eq!(p.alloc().unwrap(), 3);
        // Ring wraps to the freed block last.
        assert_eq!(p.alloc().unwrap(), 0);
        assert_eq!(p.alloc().unwrap_err(), FsError::NoSpace);
    }

    #[test]
    fn alloc_many_is_atomic() {
        let mut p = BlockPool::new(3);
        assert_eq!(p.alloc_many(4).unwrap_err(), FsError::NoSpace);
        assert_eq!(p.free_count(), 3, "failed alloc_many must not consume");
        assert_eq!(p.alloc_many(3).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn counters() {
        let mut p = BlockPool::new(10);
        let _ = p.alloc_many(4).unwrap();
        assert_eq!(p.allocated(), 4);
        assert_eq!(p.free_count(), 6);
        assert_eq!(p.total(), 10);
    }

    #[test]
    fn encode_decode_preserves_ring_order() {
        let mut p = BlockPool::new(8);
        let a = p.alloc_many(5).unwrap();
        p.free(a[2]);
        p.free(a[0]);
        let bytes = p.encode();
        let (q, consumed) = BlockPool::decode(&bytes).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(p, q);
        // And the clone allocates identically (determinism for replay).
        let mut p2 = p.clone();
        let mut q2 = q;
        for _ in 0..5 {
            assert_eq!(p2.alloc().ok(), q2.alloc().ok());
        }
    }

    #[test]
    fn decode_rejects_truncation() {
        let p = BlockPool::new(4);
        let bytes = p.encode();
        assert!(BlockPool::decode(&bytes[..bytes.len() - 1]).is_err());
        assert!(BlockPool::decode(&bytes[..8]).is_err());
    }

    proptest! {
        /// Alloc/free sequences never lose or duplicate blocks.
        #[test]
        fn prop_conservation(ops in proptest::collection::vec(any::<bool>(), 1..200)) {
            let mut p = BlockPool::new(32);
            let mut held: Vec<u64> = Vec::new();
            for alloc in ops {
                if alloc {
                    if let Ok(b) = p.alloc() {
                        prop_assert!(!held.contains(&b), "double allocation of {}", b);
                        held.push(b);
                    }
                } else if let Some(b) = held.pop() {
                    p.free(b);
                }
                prop_assert_eq!(p.free_count() + held.len() as u64, 32);
            }
        }

        /// Replay determinism: the same op sequence on a decoded snapshot
        /// allocates the same blocks.
        #[test]
        fn prop_replay_determinism(seq in proptest::collection::vec(0u8..3, 1..100)) {
            let mut p = BlockPool::new(16);
            let mut held = Vec::new();
            // Drive to an arbitrary state.
            for op in &seq {
                match op {
                    0 | 1 => { if let Ok(b) = p.alloc() { held.push(b); } }
                    _ => { if let Some(b) = held.pop() { p.free(b); } }
                }
            }
            let (mut restored, _) = BlockPool::decode(&p.encode()).unwrap();
            // Same future ops -> same blocks.
            for op in &seq {
                match op {
                    0 | 1 => { prop_assert_eq!(p.alloc().ok(), restored.alloc().ok()); }
                    _ => {
                        if let Some(b) = held.pop() {
                            p.free(b);
                            restored.free(b);
                        }
                    }
                }
            }
        }
    }
}
