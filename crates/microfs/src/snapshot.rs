//! Atomic internal-state checkpoints (§III-E "Metadata Provenance").
//!
//! "To limit the size of the log, the runtime checkpoints internal DRAM
//! state (which includes the inodes, block pool, and B+Tree) to a reserved
//! region on the remote SSD... the checkpoint process is designed to be
//! atomic. Log records are only discarded once the checkpoint is complete."
//!
//! Atomicity uses two alternating slots: the payload is written first, the
//! small CRC-carrying header last, and recovery picks the valid header with
//! the highest sequence number. A crash mid-snapshot leaves the previous
//! slot intact, so durability is never compromised (§III-E).

use crate::block::BlockDevice;
use crate::block::BlockPool;
use crate::btree::BTree;
use crate::crc::crc32;
use crate::error::FsError;
use crate::inode::InodeTable;
use crate::layout::Layout;

const SNAPSHOT_MAGIC: u64 = 0x6D66_735F_636B_7074; // "mfs_ckpt"
const HEADER_LEN: u64 = 8 + 8 + 4 + 8 + 4; // magic, seq, generation, len, crc

/// The volatile filesystem state a snapshot captures.
#[derive(Debug, Clone)]
pub struct FsState {
    /// The inode table.
    pub inodes: InodeTable,
    /// The circular hugeblock pool.
    pub pool: BlockPool,
    /// The path → inode B+Tree.
    pub btree: BTree,
    /// Monotonic operation counter (mtime source).
    pub op_counter: u64,
}

impl FsState {
    fn encode(&self) -> Vec<u8> {
        let mut v = Vec::new();
        v.extend_from_slice(&self.op_counter.to_le_bytes());
        let sections = [
            self.inodes.encode(),
            self.pool.encode(),
            self.btree.encode(),
        ];
        for s in sections {
            v.extend_from_slice(&(s.len() as u64).to_le_bytes());
            v.extend_from_slice(&s);
        }
        v
    }

    fn decode(bytes: &[u8]) -> Result<FsState, FsError> {
        if bytes.len() < 8 {
            return Err(FsError::Io("snapshot payload truncated".into()));
        }
        let op_counter = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
        let mut pos = 8usize;
        let mut section = |bytes: &[u8]| -> Result<(usize, usize), FsError> {
            if bytes.len() < pos + 8 {
                return Err(FsError::Io("snapshot section truncated".into()));
            }
            let len = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap()) as usize;
            let start = pos + 8;
            if bytes.len() < start + len {
                return Err(FsError::Io("snapshot section truncated".into()));
            }
            pos = start + len;
            Ok((start, len))
        };
        let (is, il) = section(bytes)?;
        let (ps, pl) = section(bytes)?;
        let (bs, bl) = section(bytes)?;
        let (inodes, _) = InodeTable::decode(&bytes[is..is + il])?;
        let (pool, _) = BlockPool::decode(&bytes[ps..ps + pl])?;
        let (btree, _) = BTree::decode(&bytes[bs..bs + bl])?;
        Ok(FsState {
            inodes,
            pool,
            btree,
            op_counter,
        })
    }
}

/// Write a snapshot of `state` with sequence `seq`. `generation` names the
/// log generation whose records apply *on top of* this snapshot. Returns
/// bytes written (metadata-overhead accounting).
pub fn write_snapshot<D: BlockDevice>(
    dev: &mut D,
    layout: &Layout,
    state: &FsState,
    seq: u64,
    generation: u32,
) -> Result<u64, FsError> {
    let payload = state.encode();
    if HEADER_LEN + payload.len() as u64 > layout.snapshot_slot_size {
        return Err(FsError::Io(format!(
            "snapshot of {} bytes exceeds slot of {}",
            payload.len(),
            layout.snapshot_slot_size
        )));
    }
    let slot = seq % 2;
    let slot_off = layout.snapshot_offset + slot * layout.snapshot_slot_size;
    // Payload first...
    dev.write_at(slot_off + HEADER_LEN, &payload)
        .map_err(|e| FsError::Io(e.to_string()))?;
    dev.flush().map_err(|e| FsError::Io(e.to_string()))?;
    // ...then the commit header.
    let mut header = Vec::with_capacity(HEADER_LEN as usize);
    header.extend_from_slice(&SNAPSHOT_MAGIC.to_le_bytes());
    header.extend_from_slice(&seq.to_le_bytes());
    header.extend_from_slice(&generation.to_le_bytes());
    header.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    header.extend_from_slice(&crc32(&payload).to_le_bytes());
    dev.write_at(slot_off, &header)
        .map_err(|e| FsError::Io(e.to_string()))?;
    dev.flush().map_err(|e| FsError::Io(e.to_string()))?;
    Ok(HEADER_LEN + payload.len() as u64)
}

fn read_slot<D: BlockDevice>(
    dev: &mut D,
    layout: &Layout,
    slot: u64,
) -> Option<(u64, u32, FsState)> {
    let slot_off = layout.snapshot_offset + slot * layout.snapshot_slot_size;
    let header = dev.read_vec(slot_off, HEADER_LEN as usize).ok()?;
    let magic = u64::from_le_bytes(header[0..8].try_into().unwrap());
    if magic != SNAPSHOT_MAGIC {
        return None;
    }
    let seq = u64::from_le_bytes(header[8..16].try_into().unwrap());
    let generation = u32::from_le_bytes(header[16..20].try_into().unwrap());
    let len = u64::from_le_bytes(header[20..28].try_into().unwrap());
    let stored_crc = u32::from_le_bytes(header[28..32].try_into().unwrap());
    if HEADER_LEN + len > layout.snapshot_slot_size {
        return None;
    }
    let payload = dev.read_vec(slot_off + HEADER_LEN, len as usize).ok()?;
    if crc32(&payload) != stored_crc {
        return None;
    }
    FsState::decode(&payload).ok().map(|s| (seq, generation, s))
}

/// Read the newest valid snapshot: `(seq, generation, state)`.
pub fn read_latest<D: BlockDevice>(dev: &mut D, layout: &Layout) -> Option<(u64, u32, FsState)> {
    let a = read_slot(dev, layout, 0);
    let b = read_slot(dev, layout, 1);
    match (a, b) {
        (Some(x), Some(y)) => Some(if x.0 >= y.0 { x } else { y }),
        (Some(x), None) => Some(x),
        (None, Some(y)) => Some(y),
        (None, None) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::MemDevice;
    use crate::inode::Inode;

    fn layout_and_dev() -> (Layout, MemDevice) {
        let layout = Layout::compute(64 << 20, 32 << 10).unwrap();
        let dev = MemDevice::new(64 << 20);
        (layout, dev)
    }

    fn sample_state(n_files: u64) -> FsState {
        let mut inodes = InodeTable::new();
        let mut btree = BTree::new();
        let mut pool = BlockPool::new(1000);
        inodes.alloc(Inode::new_dir(0o755, 0, 0));
        btree.insert("/", 0);
        for i in 0..n_files {
            let mut f = Inode::new_file(0o644, 0, i);
            f.blocks = pool.alloc_many(2).unwrap();
            f.size = 2 * (32 << 10);
            let ino = inodes.alloc(f);
            btree.insert(&format!("/ckpt_{i}.dat"), ino);
        }
        FsState {
            inodes,
            pool,
            btree,
            op_counter: n_files + 1,
        }
    }

    fn assert_states_equal(a: &FsState, b: &FsState) {
        assert_eq!(a.op_counter, b.op_counter);
        assert_eq!(a.inodes, b.inodes);
        assert_eq!(a.pool, b.pool);
        assert_eq!(a.btree.entries(), b.btree.entries());
    }

    #[test]
    fn write_read_roundtrip() {
        let (layout, mut dev) = layout_and_dev();
        let state = sample_state(50);
        write_snapshot(&mut dev, &layout, &state, 1, 3).unwrap();
        let (seq, generation, restored) = read_latest(&mut dev, &layout).unwrap();
        assert_eq!((seq, generation), (1, 3));
        assert_states_equal(&state, &restored);
    }

    #[test]
    fn newer_sequence_wins_across_slots() {
        let (layout, mut dev) = layout_and_dev();
        write_snapshot(&mut dev, &layout, &sample_state(5), 4, 1).unwrap(); // slot 0
        write_snapshot(&mut dev, &layout, &sample_state(9), 5, 2).unwrap(); // slot 1
        let (seq, generation, state) = read_latest(&mut dev, &layout).unwrap();
        assert_eq!((seq, generation), (5, 2));
        assert_eq!(state.inodes.len(), 10); // 9 files + root
                                            // Writing seq 6 goes back to slot 0, atomically replacing seq 4.
        write_snapshot(&mut dev, &layout, &sample_state(2), 6, 3).unwrap();
        let (seq, _, state) = read_latest(&mut dev, &layout).unwrap();
        assert_eq!(seq, 6);
        assert_eq!(state.inodes.len(), 3);
    }

    #[test]
    fn empty_device_has_no_snapshot() {
        let (layout, mut dev) = layout_and_dev();
        assert!(read_latest(&mut dev, &layout).is_none());
    }

    #[test]
    fn torn_snapshot_falls_back_to_previous() {
        let (layout, mut dev) = layout_and_dev();
        write_snapshot(&mut dev, &layout, &sample_state(3), 2, 1).unwrap(); // slot 0
                                                                            // Simulate a crash mid-write of seq 3 (slot 1): payload written,
                                                                            // header half-written (header region stays garbage/zero).
        let state = sample_state(8);
        let payload = state.encode();
        dev.write_at(
            layout.snapshot_offset + layout.snapshot_slot_size + HEADER_LEN,
            &payload,
        )
        .unwrap();
        let (seq, _, restored) = read_latest(&mut dev, &layout).unwrap();
        assert_eq!(seq, 2);
        assert_eq!(restored.inodes.len(), 4);
    }

    #[test]
    fn corrupt_payload_is_rejected() {
        let (layout, mut dev) = layout_and_dev();
        write_snapshot(&mut dev, &layout, &sample_state(3), 2, 1).unwrap();
        // Flip a payload byte in slot 0.
        let off = layout.snapshot_offset + HEADER_LEN + 5;
        let b = dev.read_vec(off, 1).unwrap()[0];
        dev.write_at(off, &[b ^ 0xFF]).unwrap();
        assert!(read_latest(&mut dev, &layout).is_none());
    }

    #[test]
    fn oversized_snapshot_rejected() {
        let layout = Layout {
            snapshot_slot_size: 64,
            ..Layout::compute(64 << 20, 32 << 10).unwrap()
        };
        let mut dev = MemDevice::new(64 << 20);
        let err = write_snapshot(&mut dev, &layout, &sample_state(100), 0, 0).unwrap_err();
        assert!(matches!(err, FsError::Io(_)));
    }

    #[test]
    fn restored_allocators_behave_identically() {
        let (layout, mut dev) = layout_and_dev();
        let mut state = sample_state(20);
        write_snapshot(&mut dev, &layout, &state, 1, 0).unwrap();
        let (_, _, mut restored) = read_latest(&mut dev, &layout).unwrap();
        // Replay determinism: identical future allocations.
        for _ in 0..10 {
            assert_eq!(state.pool.alloc().ok(), restored.pool.alloc().ok());
            assert_eq!(
                state.inodes.alloc(Inode::new_file(0, 0, 0)),
                restored.inodes.alloc(Inode::new_file(0, 0, 0))
            );
        }
    }
}
