//! Typestate-guarded recovery: `Crashed` → `Replaying` → `Verified` →
//! serving.
//!
//! [`MicroFs::mount`] performs snapshot load, log scan, and replay in one
//! call, which means nothing in the types stops a caller from wiring up a
//! recovery path that reads file data before replay has run — the bug
//! class every crash-consistency paper warns about. This module makes the
//! recovery phases *distinct types* so the invalid orderings are compile
//! errors, not code review findings:
//!
//! ```text
//! Crashed ──begin_replay()──▶ Replaying ──replay_all()──▶ Verified ──serve()──▶ MicroFs
//! ```
//!
//! * [`Crashed`] holds only the device and config; nothing has been read.
//! * [`Replaying`] holds an instance whose in-memory state is the last
//!   snapshot plus a queue of *unapplied* log records. It exposes no file
//!   API and no way to extract the filesystem.
//! * [`Verified`] proves replay completed; [`Verified::serve`] is the only
//!   way to obtain a usable [`MicroFs`] through this path.
//!
//! Serving before replay does not compile:
//!
//! ```compile_fail
//! use microfs::recovery::Replaying;
//! use microfs::{MemDevice, MicroFs};
//!
//! fn premature(r: Replaying<MemDevice>) -> MicroFs<MemDevice> {
//!     r.serve() // ERROR: no method `serve` on `Replaying` — replay first
//! }
//! ```
//!
//! Neither does skipping straight from `Crashed` to a filesystem:
//!
//! ```compile_fail
//! use microfs::recovery::Crashed;
//! use microfs::{MemDevice, MicroFs};
//!
//! fn skip_replay(c: Crashed<MemDevice>) -> MicroFs<MemDevice> {
//!     c.serve() // ERROR: `Crashed` only offers `begin_replay`
//! }
//! ```
//!
//! The happy path:
//!
//! ```
//! use microfs::recovery::Crashed;
//! use microfs::{FsConfig, MemDevice, MicroFs, OpenFlags};
//!
//! let mut fs = MicroFs::format(MemDevice::new(64 << 20), FsConfig::default()).unwrap();
//! let fd = fs.create("/state.dat", 0o644).unwrap();
//! fs.write(fd, b"survives the crash").unwrap();
//! fs.close(fd).unwrap();
//! let dev = fs.into_device(); // crash: volatile state gone
//!
//! let replaying = Crashed::new(dev, FsConfig::default()).begin_replay().unwrap();
//! assert!(replaying.pending_records() > 0);
//! let mut fs = replaying.replay_all().unwrap().serve();
//! let fd = fs.open("/state.dat", OpenFlags::RDONLY, 0).unwrap();
//! let mut buf = [0u8; 18];
//! fs.read(fd, &mut buf).unwrap();
//! assert_eq!(&buf, b"survives the crash");
//! ```

use crate::block::BlockDevice;
use crate::error::FsError;
use crate::fs::{FsConfig, MicroFs};
use crate::wal::LogRecord;

/// A partition that just lost its process: a device full of durable bytes
/// and no in-memory state. The only move is [`begin_replay`]
/// (`Self::begin_replay`).
pub struct Crashed<D: BlockDevice> {
    dev: D,
    config: FsConfig,
}

impl<D: BlockDevice> Crashed<D> {
    /// Wrap a crashed partition's device for recovery.
    pub fn new(dev: D, config: FsConfig) -> Self {
        Crashed { dev, config }
    }

    /// Read the superblock, load the newest valid snapshot, and scan the
    /// operation log for records newer than it. No record has been applied
    /// yet when this returns.
    pub fn begin_replay(self) -> Result<Replaying<D>, FsError> {
        let (fs, records) = MicroFs::mount_prepare(self.dev, self.config)?;
        Ok(Replaying { fs, records })
    }
}

/// Snapshot state loaded, log scanned, records not yet applied. This type
/// deliberately exposes no file operations and no escape hatch to the
/// underlying [`MicroFs`]: the instance is *not consistent* until
/// [`replay_all`](Self::replay_all) runs.
pub struct Replaying<D: BlockDevice> {
    fs: MicroFs<D>,
    records: Vec<LogRecord>,
}

impl<D: BlockDevice> Replaying<D> {
    /// Log records waiting to be applied.
    pub fn pending_records(&self) -> usize {
        self.records.len()
    }

    /// Apply every scanned record. Replay is purely in-memory (allocation
    /// is deterministic, so file data already on the device re-attaches
    /// without being rewritten).
    pub fn replay_all(mut self) -> Result<Verified<D>, FsError> {
        self.fs.replay_records(&self.records)?;
        Ok(Verified { fs: self.fs })
    }
}

/// Replay completed: the in-memory state is consistent with the device.
pub struct Verified<D: BlockDevice> {
    fs: MicroFs<D>,
}

impl<D: BlockDevice> Verified<D> {
    /// Records that were replayed to reach this state.
    pub fn replayed_records(&self) -> u64 {
        self.fs.stats().replayed_records
    }

    /// Hand over the recovered filesystem for serving.
    pub fn serve(self) -> MicroFs<D> {
        self.fs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::MemDevice;
    use crate::error::OpenFlags;

    fn crashed_partition() -> MemDevice {
        let mut fs = MicroFs::format(MemDevice::new(64 << 20), FsConfig::default()).unwrap();
        let fd = fs.create("/a.dat", 0o644).unwrap();
        fs.write(fd, &[0xAB; 100_000]).unwrap();
        fs.close(fd).unwrap();
        fs.into_device()
    }

    #[test]
    fn typestate_chain_recovers_data() {
        let dev = crashed_partition();
        let replaying = Crashed::new(dev, FsConfig::default())
            .begin_replay()
            .unwrap();
        assert!(replaying.pending_records() > 0);
        let verified = replaying.replay_all().unwrap();
        assert!(verified.replayed_records() > 0);
        let mut fs = verified.serve();
        let fd = fs.open("/a.dat", OpenFlags::RDONLY, 0).unwrap();
        let mut buf = vec![0u8; 100_000];
        let mut got = 0;
        while got < buf.len() {
            let n = fs.read(fd, &mut buf[got..]).unwrap();
            if n == 0 {
                break;
            }
            got += n;
        }
        assert_eq!(got, 100_000);
        assert!(buf.iter().all(|&b| b == 0xAB));
    }

    #[test]
    fn typestate_chain_equals_plain_mount() {
        let dev = crashed_partition();
        let fs_a = Crashed::new(dev, FsConfig::default())
            .begin_replay()
            .unwrap()
            .replay_all()
            .unwrap()
            .serve();
        let dev_b = crashed_partition();
        let fs_b = MicroFs::mount(dev_b, FsConfig::default()).unwrap();
        assert_eq!(fs_a.stats().replayed_records, fs_b.stats().replayed_records);
        assert_eq!(fs_a.stat("/a.dat").unwrap(), fs_b.stat("/a.dat").unwrap());
    }

    #[test]
    fn begin_replay_surfaces_bad_superblock() {
        let dev = MemDevice::new(1 << 20); // never formatted
        assert!(Crashed::new(dev, FsConfig::default())
            .begin_replay()
            .is_err());
    }
}
