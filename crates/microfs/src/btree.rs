//! DRAM-resident B+Tree mapping names to inode numbers.
//!
//! §III-E: *"The directory hierarchy is constructed using a set of directory
//! files indexed by a DRAM resident B+Tree. The B+Tree contains mappings of
//! directory and file names to their root inode."* and *"An in-memory
//! B+Tree is used to keep mappings of filenames to their inodes allowing
//! fast lookups... The state of the B+Tree can also be reconstructed upon
//! recovery from a crash."*
//!
//! This is a real B+Tree (values only at leaves, separator routing,
//! split/borrow/merge rebalancing), not a wrapper over `std` — its
//! structure is part of what the paper's DRAM-footprint numbers (Table I)
//! measure, and the snapshot/recovery path serializes and rebuilds it.

use crate::error::FsError;

/// Minimum keys in a non-root node; maximum is `2 * MIN_KEYS`.
const MIN_KEYS: usize = 16;
const MAX_KEYS: usize = 2 * MIN_KEYS;

#[derive(Debug, Clone)]
enum Node {
    Internal {
        /// Separators: child `i` holds keys `< keys[i]`; child `i+1` holds
        /// keys `>= keys[i]`.
        keys: Vec<Box<str>>,
        children: Vec<Node>,
    },
    Leaf {
        keys: Vec<Box<str>>,
        vals: Vec<u64>,
    },
}

impl Node {
    fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    fn key_count(&self) -> usize {
        match self {
            Node::Internal { keys, .. } | Node::Leaf { keys, .. } => keys.len(),
        }
    }
}

/// What an insert did to a child: nothing, or a split producing a new right
/// sibling and the separator to route to it.
enum InsertResult {
    Done(Option<u64>),
    Split {
        sep: Box<str>,
        right: Node,
        old: Option<u64>,
    },
}

/// A B+Tree from string keys to `u64` values.
#[derive(Debug, Clone)]
pub struct BTree {
    root: Node,
    len: usize,
    key_bytes: usize,
}

impl Default for BTree {
    fn default() -> Self {
        Self::new()
    }
}

impl BTree {
    /// An empty tree.
    pub fn new() -> Self {
        BTree {
            root: Node::Leaf {
                keys: Vec::new(),
                vals: Vec::new(),
            },
            len: 0,
            key_bytes: 0,
        }
    }

    /// Number of mappings.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximate DRAM footprint in bytes (keys + per-entry overhead),
    /// reported in the Table I harness.
    pub fn approx_bytes(&self) -> usize {
        // Key bytes + value + Box<str> header + amortized node overhead.
        self.key_bytes + self.len * (8 + 16 + 8)
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<u64> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| k.as_ref() <= key);
                    node = &children[idx];
                }
                Node::Leaf { keys, vals } => {
                    return keys
                        .binary_search_by(|k| k.as_ref().cmp(key))
                        .ok()
                        .map(|i| vals[i]);
                }
            }
        }
    }

    /// Insert a mapping, returning the previous value if the key existed.
    pub fn insert(&mut self, key: &str, val: u64) -> Option<u64> {
        let result = Self::insert_rec(&mut self.root, key, val);
        let old = match result {
            InsertResult::Done(old) => old,
            InsertResult::Split { sep, right, old } => {
                // Grow the tree by one level.
                let left = std::mem::replace(
                    &mut self.root,
                    Node::Leaf {
                        keys: Vec::new(),
                        vals: Vec::new(),
                    },
                );
                self.root = Node::Internal {
                    keys: vec![sep],
                    children: vec![left, right],
                };
                old
            }
        };
        if old.is_none() {
            self.len += 1;
            self.key_bytes += key.len();
        }
        old
    }

    fn insert_rec(node: &mut Node, key: &str, val: u64) -> InsertResult {
        match node {
            Node::Leaf { keys, vals } => match keys.binary_search_by(|k| k.as_ref().cmp(key)) {
                Ok(i) => {
                    let old = vals[i];
                    vals[i] = val;
                    InsertResult::Done(Some(old))
                }
                Err(i) => {
                    keys.insert(i, key.into());
                    vals.insert(i, val);
                    if keys.len() > MAX_KEYS {
                        let mid = keys.len() / 2;
                        let rkeys: Vec<Box<str>> = keys.split_off(mid);
                        let rvals: Vec<u64> = vals.split_off(mid);
                        let sep = rkeys[0].clone();
                        InsertResult::Split {
                            sep,
                            right: Node::Leaf {
                                keys: rkeys,
                                vals: rvals,
                            },
                            old: None,
                        }
                    } else {
                        InsertResult::Done(None)
                    }
                }
            },
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|k| k.as_ref() <= key);
                match Self::insert_rec(&mut children[idx], key, val) {
                    InsertResult::Done(old) => InsertResult::Done(old),
                    InsertResult::Split { sep, right, old } => {
                        keys.insert(idx, sep);
                        children.insert(idx + 1, right);
                        if keys.len() > MAX_KEYS {
                            let mid = keys.len() / 2;
                            // The middle separator moves *up*, not right.
                            let up = keys[mid].clone();
                            let rkeys: Vec<Box<str>> = keys.split_off(mid + 1);
                            keys.pop(); // drop the promoted separator
                            let rchildren: Vec<Node> = children.split_off(mid + 1);
                            InsertResult::Split {
                                sep: up,
                                right: Node::Internal {
                                    keys: rkeys,
                                    children: rchildren,
                                },
                                old,
                            }
                        } else {
                            InsertResult::Done(old)
                        }
                    }
                }
            }
        }
    }

    /// Remove a key, returning its value if present.
    pub fn remove(&mut self, key: &str) -> Option<u64> {
        let removed = Self::remove_rec(&mut self.root, key);
        if removed.is_some() {
            self.len -= 1;
            self.key_bytes -= key.len();
            // Shrink the root if it degenerated to a single child.
            if let Node::Internal { keys, children } = &mut self.root {
                if keys.is_empty() {
                    debug_assert_eq!(children.len(), 1);
                    self.root = children.pop().expect("single child");
                }
            }
        }
        removed
    }

    fn remove_rec(node: &mut Node, key: &str) -> Option<u64> {
        match node {
            Node::Leaf { keys, vals } => match keys.binary_search_by(|k| k.as_ref().cmp(key)) {
                Ok(i) => {
                    keys.remove(i);
                    Some(vals.remove(i))
                }
                Err(_) => None,
            },
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|k| k.as_ref() <= key);
                let removed = Self::remove_rec(&mut children[idx], key)?;
                if children[idx].key_count() < MIN_KEYS {
                    Self::rebalance(keys, children, idx);
                }
                Some(removed)
            }
        }
    }

    /// Fix an underfull child `idx` by borrowing from a sibling or merging.
    fn rebalance(keys: &mut Vec<Box<str>>, children: &mut Vec<Node>, idx: usize) {
        // Try borrowing from the left sibling.
        if idx > 0 && children[idx - 1].key_count() > MIN_KEYS {
            let (left_slice, right_slice) = children.split_at_mut(idx);
            let left = &mut left_slice[idx - 1];
            let child = &mut right_slice[0];
            match (left, child) {
                (Node::Leaf { keys: lk, vals: lv }, Node::Leaf { keys: ck, vals: cv }) => {
                    let k = lk.pop().expect("left has spare");
                    let v = lv.pop().expect("left has spare");
                    ck.insert(0, k.clone());
                    cv.insert(0, v);
                    keys[idx - 1] = k;
                }
                (
                    Node::Internal {
                        keys: lk,
                        children: lc,
                    },
                    Node::Internal {
                        keys: ck,
                        children: cc,
                    },
                ) => {
                    // Rotate through the parent separator.
                    let sep = std::mem::replace(&mut keys[idx - 1], lk.pop().expect("spare"));
                    ck.insert(0, sep);
                    cc.insert(0, lc.pop().expect("spare child"));
                }
                _ => unreachable!("siblings are at the same level"),
            }
            return;
        }
        // Try borrowing from the right sibling.
        if idx + 1 < children.len() && children[idx + 1].key_count() > MIN_KEYS {
            let (left_slice, right_slice) = children.split_at_mut(idx + 1);
            let child = &mut left_slice[idx];
            let right = &mut right_slice[0];
            match (child, right) {
                (Node::Leaf { keys: ck, vals: cv }, Node::Leaf { keys: rk, vals: rv }) => {
                    ck.push(rk.remove(0));
                    cv.push(rv.remove(0));
                    keys[idx] = rk[0].clone();
                }
                (
                    Node::Internal {
                        keys: ck,
                        children: cc,
                    },
                    Node::Internal {
                        keys: rk,
                        children: rc,
                    },
                ) => {
                    let sep = std::mem::replace(&mut keys[idx], rk.remove(0));
                    ck.push(sep);
                    cc.push(rc.remove(0));
                }
                _ => unreachable!("siblings are at the same level"),
            }
            return;
        }
        // Merge with a sibling (prefer left so indices stay simple).
        let (merge_left_idx, sep_idx) = if idx > 0 {
            (idx - 1, idx - 1)
        } else {
            (idx, idx)
        };
        let right_node = children.remove(merge_left_idx + 1);
        let sep = keys.remove(sep_idx);
        let left_node = &mut children[merge_left_idx];
        match (left_node, right_node) {
            (Node::Leaf { keys: lk, vals: lv }, Node::Leaf { keys: rk, vals: rv }) => {
                lk.extend(rk);
                lv.extend(rv);
            }
            (
                Node::Internal {
                    keys: lk,
                    children: lc,
                },
                Node::Internal {
                    keys: rk,
                    children: rc,
                },
            ) => {
                lk.push(sep);
                lk.extend(rk);
                lc.extend(rc);
            }
            _ => unreachable!("siblings are at the same level"),
        }
    }

    /// All `(key, value)` pairs in key order.
    pub fn entries(&self) -> Vec<(String, u64)> {
        let mut out = Vec::with_capacity(self.len);
        Self::collect(&self.root, &mut |k, v| out.push((k.to_string(), v)));
        out
    }

    /// All pairs whose key starts with `prefix`, in key order (used by
    /// `readdir` to enumerate a directory's children).
    pub fn entries_with_prefix(&self, prefix: &str) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        Self::collect(&self.root, &mut |k, v| {
            if k.starts_with(prefix) {
                out.push((k.to_string(), v));
            }
        });
        out
    }

    fn collect(node: &Node, f: &mut impl FnMut(&str, u64)) {
        match node {
            Node::Leaf { keys, vals } => {
                for (k, v) in keys.iter().zip(vals) {
                    f(k, *v);
                }
            }
            Node::Internal { children, .. } => {
                for c in children {
                    Self::collect(c, f);
                }
            }
        }
    }

    /// Serialize as sorted `(key, value)` pairs.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::new();
        v.extend_from_slice(&(self.len as u64).to_le_bytes());
        Self::collect(&self.root, &mut |k, val| {
            v.extend_from_slice(&(k.len() as u32).to_le_bytes());
            v.extend_from_slice(k.as_bytes());
            v.extend_from_slice(&val.to_le_bytes());
        });
        v
    }

    /// Deserialize; inverse of [`encode`](Self::encode). Returns the tree
    /// and the bytes consumed.
    pub fn decode(bytes: &[u8]) -> Result<(BTree, usize), FsError> {
        if bytes.len() < 8 {
            return Err(FsError::Io("btree truncated".into()));
        }
        let n = u64::from_le_bytes(bytes[0..8].try_into().unwrap()) as usize;
        let mut tree = BTree::new();
        let mut pos = 8;
        for _ in 0..n {
            if bytes.len() < pos + 4 {
                return Err(FsError::Io("btree entry truncated".into()));
            }
            let klen = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 4;
            if bytes.len() < pos + klen + 8 {
                return Err(FsError::Io("btree entry truncated".into()));
            }
            let key = std::str::from_utf8(&bytes[pos..pos + klen])
                .map_err(|_| FsError::Io("btree key not utf-8".into()))?;
            pos += klen;
            let val = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
            pos += 8;
            tree.insert(key, val);
        }
        Ok((tree, pos))
    }

    /// Structural invariant check (tests and debug assertions): key order,
    /// separator routing, and fill factors.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        fn check(
            node: &Node,
            lo: Option<&str>,
            hi: Option<&str>,
            is_root: bool,
            depth: &mut Vec<usize>,
            d: usize,
        ) {
            match node {
                Node::Leaf { keys, vals } => {
                    assert_eq!(keys.len(), vals.len());
                    assert!(keys.windows(2).all(|w| w[0] < w[1]), "unsorted leaf");
                    if !is_root {
                        assert!(keys.len() >= MIN_KEYS, "underfull leaf");
                    }
                    assert!(keys.len() <= MAX_KEYS, "overfull leaf");
                    for k in keys {
                        if let Some(lo) = lo {
                            assert!(k.as_ref() >= lo, "key below bound");
                        }
                        if let Some(hi) = hi {
                            assert!(k.as_ref() < hi, "key above bound");
                        }
                    }
                    depth.push(d);
                }
                Node::Internal { keys, children } => {
                    assert_eq!(children.len(), keys.len() + 1);
                    assert!(keys.windows(2).all(|w| w[0] < w[1]), "unsorted internal");
                    if !is_root {
                        assert!(keys.len() >= MIN_KEYS, "underfull internal");
                    }
                    assert!(keys.len() <= MAX_KEYS, "overfull internal");
                    for (i, c) in children.iter().enumerate() {
                        let clo = if i == 0 {
                            lo
                        } else {
                            Some(keys[i - 1].as_ref())
                        };
                        let chi = if i == keys.len() {
                            hi
                        } else {
                            Some(keys[i].as_ref())
                        };
                        check(c, clo, chi, false, depth, d + 1);
                    }
                }
            }
        }
        let mut depths = Vec::new();
        check(&self.root, None, None, true, &mut depths, 0);
        assert!(
            depths.windows(2).all(|w| w[0] == w[1]),
            "leaves at different depths"
        );
        if !self.root.is_leaf() {
            assert!(self.root.key_count() >= 1, "internal root must have a key");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_remove_small() {
        let mut t = BTree::new();
        assert!(t.is_empty());
        assert_eq!(t.insert("/ckpt/rank0", 1), None);
        assert_eq!(t.insert("/ckpt/rank1", 2), None);
        assert_eq!(t.get("/ckpt/rank0"), Some(1));
        assert_eq!(t.insert("/ckpt/rank0", 9), Some(1));
        assert_eq!(t.get("/ckpt/rank0"), Some(9));
        assert_eq!(t.remove("/ckpt/rank0"), Some(9));
        assert_eq!(t.get("/ckpt/rank0"), None);
        assert_eq!(t.remove("/missing"), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn many_inserts_force_splits() {
        let mut t = BTree::new();
        for i in 0..10_000u64 {
            t.insert(&format!("/file{i:06}"), i);
        }
        t.check_invariants();
        assert_eq!(t.len(), 10_000);
        for i in (0..10_000u64).step_by(101) {
            assert_eq!(t.get(&format!("/file{i:06}")), Some(i));
        }
        let e = t.entries();
        assert_eq!(e.len(), 10_000);
        assert!(e.windows(2).all(|w| w[0].0 < w[1].0), "entries not sorted");
    }

    #[test]
    fn deletions_force_merges() {
        let mut t = BTree::new();
        for i in 0..5_000u64 {
            t.insert(&format!("k{i:05}"), i);
        }
        // Delete most keys, in an order that exercises both siblings.
        for i in 0..5_000u64 {
            if i % 10 != 0 {
                assert_eq!(t.remove(&format!("k{i:05}")), Some(i));
            }
            if i % 512 == 0 {
                t.check_invariants();
            }
        }
        t.check_invariants();
        assert_eq!(t.len(), 500);
        for i in (0..5_000u64).step_by(10) {
            assert_eq!(t.get(&format!("k{i:05}")), Some(i));
        }
    }

    #[test]
    fn delete_everything_returns_to_empty() {
        let mut t = BTree::new();
        for i in 0..2_000u64 {
            t.insert(&format!("x{i}"), i);
        }
        for i in 0..2_000u64 {
            assert_eq!(t.remove(&format!("x{i}")), Some(i));
        }
        t.check_invariants();
        assert!(t.is_empty());
        assert_eq!(t.approx_bytes(), 0);
    }

    #[test]
    fn prefix_scan_for_readdir() {
        let mut t = BTree::new();
        t.insert("/a/x", 1);
        t.insert("/a/y", 2);
        t.insert("/ab", 3);
        t.insert("/b/z", 4);
        let kids = t.entries_with_prefix("/a/");
        assert_eq!(kids, vec![("/a/x".into(), 1), ("/a/y".into(), 2)]);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut t = BTree::new();
        for i in 0..3_000u64 {
            t.insert(&format!("/d/f{i}"), i * 7);
        }
        let bytes = t.encode();
        let (u, consumed) = BTree::decode(&bytes).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(u.len(), t.len());
        u.check_invariants();
        assert_eq!(t.entries(), u.entries());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(BTree::decode(&[1, 2, 3]).is_err());
        let mut t = BTree::new();
        t.insert("abc", 1);
        let bytes = t.encode();
        assert!(BTree::decode(&bytes[..bytes.len() - 2]).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Full behavioural equivalence with std's BTreeMap under random
        /// interleaved insert/remove/get.
        #[test]
        fn prop_matches_btreemap(
            ops in proptest::collection::vec((0u8..3, 0u16..300, any::<u64>()), 1..800)
        ) {
            let mut ours = BTree::new();
            let mut model: BTreeMap<String, u64> = BTreeMap::new();
            for (op, key_n, val) in ops {
                let key = format!("k{key_n:03}");
                match op {
                    0 => {
                        prop_assert_eq!(ours.insert(&key, val), model.insert(key.clone(), val));
                    }
                    1 => {
                        prop_assert_eq!(ours.remove(&key), model.remove(&key));
                    }
                    _ => {
                        prop_assert_eq!(ours.get(&key), model.get(&key).copied());
                    }
                }
                prop_assert_eq!(ours.len(), model.len());
            }
            ours.check_invariants();
            let entries = ours.entries();
            let expected: Vec<(String, u64)> =
                model.into_iter().collect();
            prop_assert_eq!(entries, expected);
        }
    }
}
