//! Offline consistency checker (`fsck.microfs`).
//!
//! Mounts nothing and trusts nothing: reads the superblock, snapshot, and
//! log from the device, reconstructs the metadata exactly as recovery
//! would, and then cross-checks every invariant the runtime relies on:
//!
//! * block ownership: every inode's hugeblocks are in-range, owned by
//!   exactly one inode, and absent from the free pool;
//! * pool conservation: free + owned = data-region blocks;
//! * namespace: every B+Tree path resolves to a live inode, every live
//!   inode is reachable, parents of every path exist and are directories;
//! * directory files: the device-resident dirent streams parse and agree
//!   with the B+Tree's children.
//!
//! The checker is how the test suite proves that crash schedules can't
//! corrupt a partition silently — after any recovery, `fsck` must be clean.

use std::collections::{BTreeMap, BTreeSet};

use crate::block::BlockDevice;
use crate::dirent::Dirent;
use crate::error::FsError;
use crate::inode::{InodeKind, ROOT_INO};
use crate::layout::{Layout, SUPERBLOCK_LEN};
use crate::snapshot;
use crate::wal::{LogRecord, Wal};

/// One consistency violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsckIssue {
    /// A block index outside the data region.
    BlockOutOfRange {
        /// Owning inode.
        ino: u64,
        /// The offending block.
        block: u64,
    },
    /// A block owned by two inodes.
    DoubleOwnedBlock {
        /// The block.
        block: u64,
        /// First owner.
        first: u64,
        /// Second owner.
        second: u64,
    },
    /// A block both owned and on the free list.
    OwnedAndFree {
        /// The block.
        block: u64,
        /// Its inode.
        ino: u64,
    },
    /// Free + owned does not cover the data region.
    PoolLeak {
        /// Blocks neither owned nor free.
        missing: u64,
    },
    /// A B+Tree path maps to a dead inode.
    DanglingPath {
        /// The path.
        path: String,
    },
    /// A live inode unreachable from any path.
    OrphanInode {
        /// The inode.
        ino: u64,
    },
    /// A path whose parent is missing or not a directory.
    BadParent {
        /// The path.
        path: String,
    },
    /// A directory file's on-device entries disagree with the B+Tree.
    DirentMismatch {
        /// The directory path.
        dir: String,
    },
    /// The partition could not even be loaded.
    Unreadable(String),
}

/// Result of a check.
#[derive(Debug, Clone)]
pub struct FsckReport {
    /// All violations found (empty = clean).
    pub issues: Vec<FsckIssue>,
    /// Inodes examined.
    pub inodes: u64,
    /// Paths examined.
    pub paths: u64,
    /// Log records replayed to reach the checked state.
    pub replayed: u64,
}

impl FsckReport {
    /// Whether the partition is consistent.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }
}

/// Check the partition on `dev` without mutating it.
pub fn check<D: BlockDevice>(dev: &mut D) -> FsckReport {
    match check_inner(dev) {
        Ok(r) => r,
        Err(e) => FsckReport {
            issues: vec![FsckIssue::Unreadable(e.to_string())],
            inodes: 0,
            paths: 0,
            replayed: 0,
        },
    }
}

fn check_inner<D: BlockDevice>(dev: &mut D) -> Result<FsckReport, FsError> {
    // Reconstruct state exactly as mount() would, via a scratch MicroFs.
    // We re-derive rather than importing fs.rs internals so the checker
    // stays an independent witness of the on-device format.
    let sb = dev
        .read_vec(0, SUPERBLOCK_LEN as usize)
        .map_err(|e| FsError::Io(e.to_string()))?;
    let layout = Layout::decode_superblock(&sb)?;
    let (_seq, generation, mut state) = snapshot::read_latest(dev, &layout)
        .ok_or_else(|| FsError::Io("no valid snapshot".into()))?;
    let (records, _) = Wal::scan(dev, layout.log_offset, layout.log_size, generation)?;
    let replayed = records.len() as u64;
    replay_into(&mut state, &records, &layout)?;

    let mut issues = Vec::new();
    // --- Block ownership ---
    let mut owner: BTreeMap<u64, u64> = BTreeMap::new();
    let live: Vec<(u64, crate::inode::Inode)> = collect_live(&state);
    for (ino, node) in &live {
        for &b in &node.blocks {
            if b >= layout.data_blocks {
                issues.push(FsckIssue::BlockOutOfRange {
                    ino: *ino,
                    block: b,
                });
                continue;
            }
            if let Some(&first) = owner.get(&b) {
                issues.push(FsckIssue::DoubleOwnedBlock {
                    block: b,
                    first,
                    second: *ino,
                });
            } else {
                owner.insert(b, *ino);
            }
        }
    }
    // --- Pool conservation ---
    let mut free = BTreeSet::new();
    {
        // The pool's encode lists the ring in order; decode to enumerate.
        let bytes = state.pool.encode();
        let (pool, _) = crate::block::BlockPool::decode(&bytes)?;
        let mut p = pool;
        while let Ok(b) = p.alloc() {
            free.insert(b);
        }
    }
    for (&b, &ino) in &owner {
        if free.contains(&b) {
            issues.push(FsckIssue::OwnedAndFree { block: b, ino });
        }
    }
    let covered = owner.len() as u64 + free.len() as u64;
    if covered < layout.data_blocks {
        issues.push(FsckIssue::PoolLeak {
            missing: layout.data_blocks - covered,
        });
    }
    // --- Namespace ---
    let live_inos: BTreeSet<u64> = live.iter().map(|(i, _)| *i).collect();
    let entries = state.btree.entries();
    let path_set: BTreeSet<&str> = entries.iter().map(|(p, _)| p.as_str()).collect();
    let mut reachable: BTreeSet<u64> = BTreeSet::new();
    for (path, ino) in &entries {
        if !live_inos.contains(ino) {
            issues.push(FsckIssue::DanglingPath { path: path.clone() });
            continue;
        }
        reachable.insert(*ino);
        if path != "/" {
            let parent = match path.rfind('/') {
                Some(0) => "/",
                Some(i) => &path[..i],
                None => "",
            };
            let parent_ok = path_set.contains(parent)
                && entries
                    .iter()
                    .find(|(p, _)| p == parent)
                    .map(|(_, pi)| {
                        live.iter()
                            .find(|(i, _)| i == pi)
                            .map(|(_, n)| n.kind == InodeKind::Dir)
                            .unwrap_or(false)
                    })
                    .unwrap_or(false);
            if !parent_ok {
                issues.push(FsckIssue::BadParent { path: path.clone() });
            }
        }
    }
    for &ino in &live_inos {
        if !reachable.contains(&ino) && ino != ROOT_INO {
            issues.push(FsckIssue::OrphanInode { ino });
        }
    }
    // --- Directory files vs B+Tree ---
    for (path, ino) in &entries {
        let Some((_, node)) = live.iter().find(|(i, _)| i == ino) else {
            continue;
        };
        if node.kind != InodeKind::Dir {
            continue;
        }
        let mut raw = vec![0u8; node.size as usize];
        read_file(dev, &layout, node, &mut raw)?;
        let mut on_device = Dirent::replay_stream(&raw, raw.len())?;
        on_device.sort();
        let prefix = if path == "/" {
            "/".to_string()
        } else {
            format!("{path}/")
        };
        let mut expected: Vec<(String, u64)> = entries
            .iter()
            .filter(|(p, _)| {
                p.starts_with(&prefix) && p.len() > prefix.len() && !p[prefix.len()..].contains('/')
            })
            .map(|(p, i)| (p[prefix.len()..].to_string(), *i))
            .collect();
        expected.sort();
        if on_device != expected {
            issues.push(FsckIssue::DirentMismatch { dir: path.clone() });
        }
    }
    Ok(FsckReport {
        issues,
        inodes: live.len() as u64,
        paths: entries.len() as u64,
        replayed,
    })
}

fn collect_live(state: &snapshot::FsState) -> Vec<(u64, crate::inode::Inode)> {
    // The inode table doesn't expose iteration; round-trip its encoding,
    // which lists all slots.
    let bytes = state.inodes.encode();
    let n = u64::from_le_bytes(bytes[0..8].try_into().unwrap()) as usize;
    let mut pos = 8usize;
    let mut out = Vec::new();
    for ino in 0..n {
        let tag = bytes[pos];
        pos += 1;
        if tag == 1 {
            let node = crate::inode::Inode::decode(&bytes, &mut pos).expect("self-encoded");
            out.push((ino as u64, node));
        }
    }
    out
}

fn replay_into(
    state: &mut snapshot::FsState,
    records: &[LogRecord],
    layout: &Layout,
) -> Result<(), FsError> {
    // Metadata-only replay mirroring fs.rs (no device writes needed for
    // consistency checking, but allocations must match exactly).
    use crate::inode::Inode;
    let bs = layout.block_size;
    for rec in records {
        match rec {
            LogRecord::Mkdir { path, mode, uid } | LogRecord::Create { path, mode, uid } => {
                let op = state.op_counter;
                state.op_counter += 1;
                let is_dir = matches!(rec, LogRecord::Mkdir { .. });
                let node = if is_dir {
                    Inode::new_dir(*mode, *uid, op)
                } else {
                    Inode::new_file(*mode, *uid, op)
                };
                let ino = state.inodes.alloc(node);
                state.btree.insert(path, ino);
                // The dirent append extends the parent directory file.
                let parent = match path.rfind('/') {
                    Some(0) => "/".to_string(),
                    Some(i) => path[..i].to_string(),
                    None => continue,
                };
                let name_len = path.len() - path.rfind('/').unwrap() - 1;
                let rec_len = (1 + 2 + name_len + 8) as u64;
                if let Some(pino) = state.btree.get(&parent) {
                    extend(state, pino, rec_len, bs)?;
                }
            }
            LogRecord::Write { ino, offset, len } => {
                let end = offset + len;
                let needed = end.div_ceil(bs);
                let have = state.inodes.get(*ino)?.blocks.len() as u64;
                if needed > have {
                    let fresh = state.pool.alloc_many(needed - have)?;
                    state.inodes.get_mut(*ino)?.blocks.extend_from_slice(&fresh);
                }
                let node = state.inodes.get_mut(*ino)?;
                node.size = node.size.max(end);
            }
            LogRecord::Truncate { ino, size } => {
                let node_size = state.inodes.get(*ino)?.size;
                if *size > node_size {
                    let needed = size.div_ceil(bs);
                    let have = state.inodes.get(*ino)?.blocks.len() as u64;
                    if needed > have {
                        let fresh = state.pool.alloc_many(needed - have)?;
                        state.inodes.get_mut(*ino)?.blocks.extend_from_slice(&fresh);
                    }
                    state.inodes.get_mut(*ino)?.size = *size;
                } else {
                    let keep = size.div_ceil(bs) as usize;
                    let node = state.inodes.get_mut(*ino)?;
                    if node.blocks.len() > keep {
                        let released: Vec<u64> = node.blocks.split_off(keep);
                        state.pool.free_many(&released);
                    }
                    state.inodes.get_mut(*ino)?.size = *size;
                }
            }
            LogRecord::Unlink { path } => {
                if let Some(ino) = state.btree.get(path) {
                    // Tombstone append on the parent.
                    let parent = match path.rfind('/') {
                        Some(0) => "/".to_string(),
                        Some(i) => path[..i].to_string(),
                        None => continue,
                    };
                    let name_len = path.len() - path.rfind('/').unwrap() - 1;
                    let rec_len = (1 + 2 + name_len) as u64;
                    if let Some(pino) = state.btree.get(&parent) {
                        extend(state, pino, rec_len, bs)?;
                    }
                    let node = state.inodes.remove(ino)?;
                    state.pool.free_many(&node.blocks);
                    state.btree.remove(path);
                }
            }
            LogRecord::Rename { from, to } => {
                if let Some(ino) = state.btree.get(from) {
                    // Remove-tombstone on from's parent, add on to's.
                    for (p, extra) in [(from.clone(), 0u64), (to.clone(), 8u64)] {
                        let parent = match p.rfind('/') {
                            Some(0) => "/".to_string(),
                            Some(i) => p[..i].to_string(),
                            None => continue,
                        };
                        let name_len = p.len() - p.rfind('/').unwrap() - 1;
                        let rec_len = (1 + 2 + name_len) as u64 + extra;
                        if let Some(pino) = state.btree.get(&parent) {
                            extend(state, pino, rec_len, bs)?;
                        }
                    }
                    state.btree.remove(from);
                    state.btree.insert(to, ino);
                    let is_dir = state.inodes.get(ino)?.kind == InodeKind::Dir;
                    if is_dir {
                        let prefix = format!("{from}/");
                        for (old, sub) in state.btree.entries_with_prefix(&prefix) {
                            let newp = format!("{to}/{}", &old[prefix.len()..]);
                            state.btree.remove(&old);
                            state.btree.insert(&newp, sub);
                        }
                    }
                }
            }
            LogRecord::SetMode { ino, mode } => {
                state.inodes.get_mut(*ino)?.mode = *mode;
            }
        }
    }
    Ok(())
}

fn extend(state: &mut snapshot::FsState, ino: u64, len: u64, bs: u64) -> Result<(), FsError> {
    let offset = state.inodes.get(ino)?.size;
    let end = offset + len;
    let needed = end.div_ceil(bs);
    let have = state.inodes.get(ino)?.blocks.len() as u64;
    if needed > have {
        let fresh = state.pool.alloc_many(needed - have)?;
        state.inodes.get_mut(ino)?.blocks.extend_from_slice(&fresh);
    }
    let node = state.inodes.get_mut(ino)?;
    node.size = node.size.max(end);
    state.op_counter += 1;
    Ok(())
}

fn read_file<D: BlockDevice>(
    dev: &mut D,
    layout: &Layout,
    node: &crate::inode::Inode,
    buf: &mut [u8],
) -> Result<(), FsError> {
    let bs = layout.block_size;
    let mut pos = 0u64;
    let n = buf.len() as u64;
    while pos < n {
        let bi = pos / bs;
        let within = pos % bs;
        let take = (bs - within).min(n - pos);
        let blk = *node
            .blocks
            .get(bi as usize)
            .ok_or_else(|| FsError::Io("unmapped block in dir file".into()))?;
        dev.read_at(
            layout.block_addr(blk) + within,
            &mut buf[pos as usize..(pos + take) as usize],
        )
        .map_err(|e| FsError::Io(e.to_string()))?;
        pos += take;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::MemDevice;
    use crate::fs::{FsConfig, MicroFs};
    use crate::OpenFlags;

    fn busy_fs() -> MicroFs<MemDevice> {
        let mut fs = MicroFs::format(MemDevice::new(64 << 20), FsConfig::default()).unwrap();
        fs.mkdir("/a", 0o755).unwrap();
        fs.mkdir("/a/b", 0o755).unwrap();
        for i in 0..10 {
            let fd = fs.create(&format!("/a/b/f{i}"), 0o644).unwrap();
            fs.write(fd, &vec![i as u8; 40_000]).unwrap();
            fs.close(fd).unwrap();
        }
        fs.unlink("/a/b/f3").unwrap();
        fs.rename("/a/b/f4", "/a/moved").unwrap();
        fs.truncate("/a/b/f5", 10).unwrap();
        fs.chmod("/a/b/f6", 0o400).unwrap();
        fs
    }

    #[test]
    fn clean_partition_passes() {
        let dev = busy_fs().into_device();
        let mut dev = dev;
        let report = check(&mut dev);
        assert!(report.is_clean(), "issues: {:?}", report.issues);
        assert!(report.inodes >= 10);
        assert!(report.paths >= 11);
        assert!(report.replayed > 0);
    }

    #[test]
    fn clean_after_snapshot_too() {
        let mut fs = busy_fs();
        fs.snapshot_now().unwrap();
        let fd = fs.create("/late", 0o644).unwrap();
        fs.write(fd, &[1u8; 100]).unwrap();
        fs.close(fd).unwrap();
        let mut dev = fs.into_device();
        let report = check(&mut dev);
        assert!(report.is_clean(), "issues: {:?}", report.issues);
    }

    #[test]
    fn blank_device_reports_unreadable() {
        let mut dev = MemDevice::new(1 << 20);
        let report = check(&mut dev);
        assert!(!report.is_clean());
        assert!(matches!(report.issues[0], FsckIssue::Unreadable(_)));
    }

    #[test]
    fn corrupted_dirent_stream_is_detected() {
        let mut fs = busy_fs();
        // Locate the root directory file's first block and clobber it.
        fs.snapshot_now().unwrap(); // make state easily reloadable
        let layout = *fs.layout();
        let mut dev = fs.into_device();
        let (_, _, state) = snapshot::read_latest(&mut dev, &layout).unwrap();
        let root = state.inodes.get(ROOT_INO).unwrap();
        let addr = layout.block_addr(root.blocks[0]);
        dev.write_at(addr, &[0xFF; 64]).unwrap();
        let report = check(&mut dev);
        assert!(
            report.issues.iter().any(|i| matches!(
                i,
                FsckIssue::DirentMismatch { .. } | FsckIssue::Unreadable(_)
            )),
            "issues: {:?}",
            report.issues
        );
    }

    #[test]
    fn fsck_clean_after_crash_recovery_cycles() {
        // The invariant the checker exists for: any crash schedule leaves
        // a partition fsck declares clean.
        let mut fs = busy_fs();
        for round in 0..3 {
            let fd = fs.create(&format!("/round{round}"), 0o644).unwrap();
            fs.write(fd, &[round as u8; 50_000]).unwrap();
            // Crash without close on odd rounds.
            if round % 2 == 0 {
                fs.close(fd).unwrap();
            }
            let dev = fs.into_device();
            let mut dev2 = dev.clone();
            let report = check(&mut dev2);
            assert!(report.is_clean(), "round {round}: {:?}", report.issues);
            fs = MicroFs::mount(dev, FsConfig::default()).unwrap();
        }
        let _ = fs.open("/round0", OpenFlags::RDONLY, 0).unwrap();
    }
}
