//! The write-ahead operation log (metadata provenance, §III-E).
//!
//! The log occupies a fixed on-device region. Records are framed with a
//! generation number and CRC; appends are written through to the device
//! before the caller's operation is considered complete ("the log is
//! flushed before a subsequent operation is processed"). The device write
//! itself is the durability point: data lands in power-loss-protected
//! device RAM (§III-D), so no separate cache flush is issued. Coalescing
//! rewrites the previous record in place instead of appending when a write
//! sequentially continues a recent one.
//!
//! After the filesystem snapshots its internal state, [`Wal::reset`] bumps
//! the generation and restarts the region from the top; stale records from
//! the previous generation fail the generation+CRC check during scans.

pub mod coalesce;
pub mod record;

use chaos::{ChaosHandle, CrashOp, FaultAction, FaultSite};

use crate::block::BlockDevice;
use crate::error::FsError;
use crate::inode::Ino;

use coalesce::{CoalesceWindow, WindowEntry};
pub use record::LogRecord;
use record::{read_frame, HEADER_LEN, WRITE_PAYLOAD_LEN};

/// Append/coalesce statistics, feeding the recovery and Table I harnesses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records physically appended.
    pub appended: u64,
    /// Writes absorbed by in-place coalescing (no new record).
    pub coalesced: u64,
    /// Bytes written to the log region (appends + rewrites).
    pub bytes_written: u64,
    /// Log resets (generation bumps after snapshots).
    pub resets: u64,
}

/// The on-device operation log.
#[derive(Debug, Clone)]
pub struct Wal {
    region_off: u64,
    region_size: u64,
    generation: u32,
    /// Next append position, relative to the region start.
    pos: u64,
    window: CoalesceWindow,
    coalescing: bool,
    stats: WalStats,
    chaos: ChaosHandle,
}

impl Wal {
    /// Default sliding-window capacity.
    pub const DEFAULT_WINDOW: usize = 8;

    /// A fresh log over `[region_off, region_off + region_size)`.
    pub fn new(region_off: u64, region_size: u64, coalescing: bool) -> Self {
        Wal {
            region_off,
            region_size,
            generation: 0,
            pos: 0,
            window: CoalesceWindow::new(Self::DEFAULT_WINDOW),
            coalescing,
            stats: WalStats::default(),
            chaos: ChaosHandle::default(),
        }
    }

    /// Attach a fault-injection hook; fresh appends then consult the
    /// [`FaultSite::WalAppend`] site (one relaxed atomic load when
    /// disarmed).
    pub fn set_chaos(&mut self, chaos: ChaosHandle) {
        self.chaos = chaos;
    }

    /// A log resuming at a known generation with an empty region (used
    /// after recovery re-established state `generation`).
    pub fn resume(
        region_off: u64,
        region_size: u64,
        coalescing: bool,
        generation: u32,
        pos: u64,
    ) -> Self {
        Wal {
            generation,
            pos,
            ..Self::new(region_off, region_size, coalescing)
        }
    }

    /// Current generation.
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Bytes still available before the region is full.
    pub fn free_bytes(&self) -> u64 {
        self.region_size - self.pos
    }

    /// Fraction of the region still free, `0.0..=1.0`.
    pub fn free_fraction(&self) -> f64 {
        self.free_bytes() as f64 / self.region_size as f64
    }

    /// Statistics so far.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// Append (or coalesce) one record; the device write completes before
    /// this returns (durability via power-loss-protected device RAM).
    /// `Err(LogFull)` means the caller must checkpoint state and
    /// [`reset`](Self::reset) the log.
    pub fn append<D: BlockDevice>(&mut self, dev: &mut D, rec: &LogRecord) -> Result<(), FsError> {
        // Coalescing path: a Write continuing a windowed record rewrites it
        // in place with the extended length.
        if self.coalescing {
            if let LogRecord::Write { ino, offset, len } = *rec {
                if let Some(entry) = self.window.try_extend(ino, offset, len) {
                    let merged = LogRecord::Write {
                        ino,
                        offset: entry.start,
                        len: entry.end - entry.start,
                    };
                    let bytes = merged.encode(self.generation);
                    debug_assert_eq!(bytes.len(), HEADER_LEN + WRITE_PAYLOAD_LEN);
                    dev.write_at(entry.device_pos, &bytes)
                        .map_err(|e| FsError::Io(e.to_string()))?;
                    self.stats.coalesced += 1;
                    self.stats.bytes_written += bytes.len() as u64;
                    return Ok(());
                }
            }
        }
        let bytes = rec.encode(self.generation);
        if self.pos + bytes.len() as u64 > self.region_size {
            return Err(FsError::LogFull);
        }
        let device_pos = self.region_off + self.pos;
        // Torn-append injection: a power cut mid-append leaves only a prefix
        // of the frame on the device. The CRC framing makes the torn frame
        // invisible to `scan`, which self-truncates there; `pos` is not
        // advanced, modeling an append that never became durable. Only fresh
        // appends can tear — coalescing rewrites are sub-sector in-place
        // updates, atomic on real NVMe.
        if let Some(FaultAction::TornWrite { keep_bytes }) = self.chaos.decide(FaultSite::WalAppend)
        {
            let keep = (keep_bytes as usize).min(bytes.len());
            dev.write_at(device_pos, &bytes[..keep])
                .map_err(|e| FsError::Io(e.to_string()))?;
            return Err(FsError::Io("torn WAL append (injected power fail)".into()));
        }
        // Crash-universe gate: the append dies before any byte lands, so
        // recovery sees the log exactly as it was before this call. `pos`
        // is not advanced.
        if self.chaos.crash_fire(CrashOp::WalAppend) {
            return Err(FsError::Io("crash point: WAL append".into()));
        }
        dev.write_at(device_pos, &bytes)
            .map_err(|e| FsError::Io(e.to_string()))?;
        if let LogRecord::Write { ino, offset, len } = *rec {
            if self.coalescing {
                self.window.register(WindowEntry {
                    ino,
                    start: offset,
                    end: offset + len,
                    device_pos,
                });
            }
        }
        self.pos += bytes.len() as u64;
        self.stats.appended += 1;
        self.stats.bytes_written += bytes.len() as u64;
        Ok(())
    }

    /// Whether a record of this size would fit without a reset.
    pub fn would_fit(&self, rec: &LogRecord) -> bool {
        self.pos + rec.encode(self.generation).len() as u64 <= self.region_size
    }

    /// Drop coverage memory for an inode (unlink/truncate make extension
    /// unsound).
    pub fn invalidate(&mut self, ino: Ino) {
        self.window.invalidate(ino);
    }

    /// Restart the region under a new generation (after a state snapshot).
    pub fn reset(&mut self) {
        self.generation += 1;
        self.pos = 0;
        self.window.clear();
        self.stats.resets += 1;
    }

    /// Scan the region for generation `gen`, returning all valid records in
    /// order. Used by recovery; also the measure of "records that must be
    /// replayed" in the recovery-speed experiments.
    pub fn scan<D: BlockDevice>(
        dev: &mut D,
        region_off: u64,
        region_size: u64,
        gen: u32,
    ) -> Result<(Vec<LogRecord>, u64), FsError> {
        let raw = dev
            .read_vec(region_off, region_size as usize)
            .map_err(|e| FsError::Io(e.to_string()))?;
        let mut pos = 0usize;
        let mut out = Vec::new();
        while let Some(rec) = read_frame(&raw, &mut pos, gen)? {
            out.push(rec);
        }
        Ok((out, pos as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::MemDevice;

    fn setup(coalescing: bool) -> (MemDevice, Wal) {
        (MemDevice::new(64 << 10), Wal::new(0, 32 << 10, coalescing))
    }

    #[test]
    fn append_then_scan_roundtrip() {
        let (mut dev, mut wal) = setup(false);
        let recs = vec![
            LogRecord::Create {
                path: "/f".into(),
                mode: 0o644,
                uid: 0,
            },
            LogRecord::Write {
                ino: 1,
                offset: 0,
                len: 100,
            },
            LogRecord::Unlink { path: "/f".into() },
        ];
        for r in &recs {
            wal.append(&mut dev, r).unwrap();
        }
        let (scanned, _) = Wal::scan(&mut dev, 0, 32 << 10, 0).unwrap();
        assert_eq!(scanned, recs);
        assert_eq!(wal.stats().appended, 3);
    }

    #[test]
    fn sequential_writes_coalesce_into_one_record() {
        let (mut dev, mut wal) = setup(true);
        for i in 0..64u64 {
            wal.append(
                &mut dev,
                &LogRecord::Write {
                    ino: 5,
                    offset: i * 4096,
                    len: 4096,
                },
            )
            .unwrap();
        }
        let s = wal.stats();
        assert_eq!(s.appended, 1, "only the first write appends");
        assert_eq!(s.coalesced, 63);
        let (scanned, _) = Wal::scan(&mut dev, 0, 32 << 10, 0).unwrap();
        assert_eq!(
            scanned,
            vec![LogRecord::Write {
                ino: 5,
                offset: 0,
                len: 64 * 4096
            }]
        );
    }

    #[test]
    fn coalescing_disabled_appends_every_record() {
        let (mut dev, mut wal) = setup(false);
        for i in 0..10u64 {
            wal.append(
                &mut dev,
                &LogRecord::Write {
                    ino: 5,
                    offset: i * 10,
                    len: 10,
                },
            )
            .unwrap();
        }
        assert_eq!(wal.stats().appended, 10);
        assert_eq!(wal.stats().coalesced, 0);
        let (scanned, _) = Wal::scan(&mut dev, 0, 32 << 10, 0).unwrap();
        assert_eq!(scanned.len(), 10);
    }

    #[test]
    fn replay_equivalence_coalesced_vs_raw() {
        // The byte coverage expressed by the scanned records must be
        // identical with and without coalescing.
        let writes: Vec<(u64, u64, u64)> = vec![
            (1, 0, 100),
            (1, 100, 50),
            (2, 0, 10),
            (1, 150, 50),
            (2, 10, 30),
            (1, 500, 10), // gap: separate record
        ];
        let coverage = |recs: &[LogRecord]| {
            let mut cov: Vec<(u64, u64, u64)> = Vec::new();
            for r in recs {
                if let LogRecord::Write { ino, offset, len } = *r {
                    cov.push((ino, offset, offset + len));
                }
            }
            // Normalize into per-byte sets (files are small here).
            let mut bytes: Vec<(u64, u64)> = Vec::new();
            for (ino, s, e) in cov {
                for b in s..e {
                    bytes.push((ino, b));
                }
            }
            bytes.sort_unstable();
            bytes.dedup();
            bytes
        };
        let run = |coalescing: bool| {
            let (mut dev, mut wal) = setup(coalescing);
            for &(ino, offset, len) in &writes {
                wal.append(&mut dev, &LogRecord::Write { ino, offset, len })
                    .unwrap();
            }
            let (scanned, _) = Wal::scan(&mut dev, 0, 32 << 10, 0).unwrap();
            coverage(&scanned)
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn reset_starts_new_generation_and_hides_old_records() {
        let (mut dev, mut wal) = setup(false);
        wal.append(
            &mut dev,
            &LogRecord::Write {
                ino: 1,
                offset: 0,
                len: 8,
            },
        )
        .unwrap();
        wal.reset();
        assert_eq!(wal.generation(), 1);
        // Old-generation records are invisible to the new-generation scan.
        let (scanned, _) = Wal::scan(&mut dev, 0, 32 << 10, 1).unwrap();
        assert!(scanned.is_empty());
        // New appends are visible.
        wal.append(
            &mut dev,
            &LogRecord::Write {
                ino: 2,
                offset: 0,
                len: 8,
            },
        )
        .unwrap();
        let (scanned, _) = Wal::scan(&mut dev, 0, 32 << 10, 1).unwrap();
        assert_eq!(scanned.len(), 1);
    }

    #[test]
    fn log_full_is_reported() {
        let mut dev = MemDevice::new(4096);
        let mut wal = Wal::new(0, 128, false);
        let rec = LogRecord::Write {
            ino: 1,
            offset: 0,
            len: 1,
        };
        let mut appended = 0;
        loop {
            match wal.append(&mut dev, &rec) {
                Ok(()) => appended += 1,
                Err(FsError::LogFull) => break,
                Err(e) => panic!("unexpected {e}"),
            }
            // Non-coalescing, distinct records would be identical; that's
            // fine for capacity accounting.
            assert!(appended < 100, "region should fill");
        }
        assert!(appended >= 1);
        assert!(wal.free_bytes() < 35);
    }

    #[test]
    fn invalidate_prevents_stale_extension() {
        let (mut dev, mut wal) = setup(true);
        wal.append(
            &mut dev,
            &LogRecord::Write {
                ino: 1,
                offset: 0,
                len: 100,
            },
        )
        .unwrap();
        wal.invalidate(1);
        wal.append(
            &mut dev,
            &LogRecord::Write {
                ino: 1,
                offset: 100,
                len: 50,
            },
        )
        .unwrap();
        assert_eq!(wal.stats().appended, 2);
        assert_eq!(wal.stats().coalesced, 0);
    }

    #[test]
    fn torn_append_is_invisible_to_scan() {
        use chaos::FaultPlan;
        let (mut dev, mut wal) = setup(false);
        wal.append(
            &mut dev,
            &LogRecord::Write {
                ino: 1,
                offset: 0,
                len: 64,
            },
        )
        .unwrap();
        // Arm a torn write for the very next append: only 5 bytes of the
        // frame reach the device.
        let chaos = ChaosHandle::default();
        let t = telemetry::Telemetry::new();
        chaos.arm(
            FaultPlan::new(7).at_op(
                FaultSite::WalAppend,
                FaultAction::TornWrite { keep_bytes: 5 },
                0,
            ),
            &t,
        );
        wal.set_chaos(chaos.clone());
        let err = wal
            .append(
                &mut dev,
                &LogRecord::Write {
                    ino: 2,
                    offset: 0,
                    len: 64,
                },
            )
            .unwrap_err();
        assert!(matches!(err, FsError::Io(_)), "torn append surfaces as Io");
        // The torn frame fails the CRC check: scan self-truncates there and
        // only the prior record survives.
        let (scanned, _) = Wal::scan(&mut dev, 0, 32 << 10, 0).unwrap();
        assert_eq!(
            scanned,
            vec![LogRecord::Write {
                ino: 1,
                offset: 0,
                len: 64
            }]
        );
        // `pos` did not advance; after disarming, the next append overwrites
        // the torn prefix and the log is healthy again.
        chaos.disarm();
        wal.append(
            &mut dev,
            &LogRecord::Write {
                ino: 3,
                offset: 0,
                len: 8,
            },
        )
        .unwrap();
        let (scanned, _) = Wal::scan(&mut dev, 0, 32 << 10, 0).unwrap();
        assert_eq!(scanned.len(), 2);
        assert_eq!(
            scanned[1],
            LogRecord::Write {
                ino: 3,
                offset: 0,
                len: 8
            }
        );
    }

    #[test]
    fn free_fraction_decreases() {
        let (mut dev, mut wal) = setup(false);
        let f0 = wal.free_fraction();
        wal.append(
            &mut dev,
            &LogRecord::Write {
                ino: 1,
                offset: 0,
                len: 1,
            },
        )
        .unwrap();
        assert!(wal.free_fraction() < f0);
        assert!(wal.would_fit(&LogRecord::Write {
            ino: 1,
            offset: 0,
            len: 1
        }));
    }
}
