//! Operation-log records — metadata provenance (§III-E).
//!
//! "Each syscall that modifies an inode needs to be logged. Only the syscall
//! type and its parameters need to be added to the log." Records therefore
//! carry *no* block lists and no physical redo data: replay re-executes the
//! operation against deterministically-replayed allocators, reproducing the
//! exact block assignments. This is what keeps records compact (a `Write`
//! record is 25 payload bytes regardless of IO size) and the network
//! metadata traffic minimal.

use crate::crc::crc32;
use crate::error::FsError;
use crate::inode::Ino;

/// One logged metadata operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// `mkdir(path, mode)`.
    Mkdir {
        /// Absolute path.
        path: String,
        /// Permission bits.
        mode: u32,
        /// Creating uid.
        uid: u32,
    },
    /// `creat(path, mode)`.
    Create {
        /// Absolute path.
        path: String,
        /// Permission bits.
        mode: u32,
        /// Creating uid.
        uid: u32,
    },
    /// `write(ino, offset, len)` — parameters only; blocks are re-derived
    /// on replay.
    Write {
        /// Target inode.
        ino: Ino,
        /// File offset of the write.
        offset: u64,
        /// Length in bytes.
        len: u64,
    },
    /// `ftruncate(ino, size)`.
    Truncate {
        /// Target inode.
        ino: Ino,
        /// New size.
        size: u64,
    },
    /// `unlink(path)`.
    Unlink {
        /// Absolute path.
        path: String,
    },
    /// `rename(from, to)` — atomic within the private namespace.
    Rename {
        /// Old absolute path.
        from: String,
        /// New absolute path.
        to: String,
    },
    /// `chmod(ino, mode)`.
    SetMode {
        /// Target inode.
        ino: Ino,
        /// New permission bits.
        mode: u32,
    },
}

/// Fixed payload length of a `Write` record: tag + ino + offset + len.
/// Being fixed-size is what allows in-place coalescing rewrites.
pub const WRITE_PAYLOAD_LEN: usize = 1 + 8 + 8 + 8;

/// Record header: generation (u32) + payload length (u16) + CRC32 (u32).
pub const HEADER_LEN: usize = 4 + 2 + 4;

impl LogRecord {
    fn tag(&self) -> u8 {
        match self {
            LogRecord::Mkdir { .. } => 1,
            LogRecord::Create { .. } => 2,
            LogRecord::Write { .. } => 3,
            LogRecord::Truncate { .. } => 4,
            LogRecord::Unlink { .. } => 5,
            LogRecord::Rename { .. } => 6,
            LogRecord::SetMode { .. } => 7,
        }
    }

    /// Encode the payload (without header).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(32);
        v.push(self.tag());
        let put_str = |v: &mut Vec<u8>, s: &str| {
            v.extend_from_slice(&(s.len() as u16).to_le_bytes());
            v.extend_from_slice(s.as_bytes());
        };
        match self {
            LogRecord::Mkdir { path, mode, uid } | LogRecord::Create { path, mode, uid } => {
                put_str(&mut v, path);
                v.extend_from_slice(&mode.to_le_bytes());
                v.extend_from_slice(&uid.to_le_bytes());
            }
            LogRecord::Write { ino, offset, len } => {
                v.extend_from_slice(&ino.to_le_bytes());
                v.extend_from_slice(&offset.to_le_bytes());
                v.extend_from_slice(&len.to_le_bytes());
            }
            LogRecord::Truncate { ino, size } => {
                v.extend_from_slice(&ino.to_le_bytes());
                v.extend_from_slice(&size.to_le_bytes());
            }
            LogRecord::Unlink { path } => put_str(&mut v, path),
            LogRecord::Rename { from, to } => {
                put_str(&mut v, from);
                put_str(&mut v, to);
            }
            LogRecord::SetMode { ino, mode } => {
                v.extend_from_slice(&ino.to_le_bytes());
                v.extend_from_slice(&mode.to_le_bytes());
            }
        }
        v
    }

    /// Encode with header for generation `gen`.
    pub fn encode(&self, gen: u32) -> Vec<u8> {
        let payload = self.encode_payload();
        frame(gen, &payload)
    }

    /// Decode a payload.
    pub fn decode_payload(payload: &[u8]) -> Result<LogRecord, FsError> {
        if payload.is_empty() {
            return Err(FsError::Io("empty log payload".into()));
        }
        let tag = payload[0];
        let mut pos = 1;
        let get_str = |pos: &mut usize| -> Result<String, FsError> {
            if payload.len() < *pos + 2 {
                return Err(FsError::Io("log string truncated".into()));
            }
            let n = u16::from_le_bytes(payload[*pos..*pos + 2].try_into().unwrap()) as usize;
            *pos += 2;
            if payload.len() < *pos + n {
                return Err(FsError::Io("log string truncated".into()));
            }
            let s = std::str::from_utf8(&payload[*pos..*pos + n])
                .map_err(|_| FsError::Io("log string not utf-8".into()))?
                .to_string();
            *pos += n;
            Ok(s)
        };
        let get64 = |pos: &mut usize| -> Result<u64, FsError> {
            if payload.len() < *pos + 8 {
                return Err(FsError::Io("log field truncated".into()));
            }
            let v = u64::from_le_bytes(payload[*pos..*pos + 8].try_into().unwrap());
            *pos += 8;
            Ok(v)
        };
        let get32 = |pos: &mut usize| -> Result<u32, FsError> {
            if payload.len() < *pos + 4 {
                return Err(FsError::Io("log field truncated".into()));
            }
            let v = u32::from_le_bytes(payload[*pos..*pos + 4].try_into().unwrap());
            *pos += 4;
            Ok(v)
        };
        match tag {
            1 | 2 => {
                let path = get_str(&mut pos)?;
                let mode = get32(&mut pos)?;
                let uid = get32(&mut pos)?;
                Ok(if tag == 1 {
                    LogRecord::Mkdir { path, mode, uid }
                } else {
                    LogRecord::Create { path, mode, uid }
                })
            }
            3 => Ok(LogRecord::Write {
                ino: get64(&mut pos)?,
                offset: get64(&mut pos)?,
                len: get64(&mut pos)?,
            }),
            4 => Ok(LogRecord::Truncate {
                ino: get64(&mut pos)?,
                size: get64(&mut pos)?,
            }),
            5 => Ok(LogRecord::Unlink {
                path: get_str(&mut pos)?,
            }),
            6 => Ok(LogRecord::Rename {
                from: get_str(&mut pos)?,
                to: get_str(&mut pos)?,
            }),
            7 => Ok(LogRecord::SetMode {
                ino: get64(&mut pos)?,
                mode: get32(&mut pos)?,
            }),
            t => Err(FsError::Io(format!("bad log record tag {t}"))),
        }
    }
}

/// Frame a payload with the record header.
pub fn frame(gen: u32, payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= u16::MAX as usize);
    let mut v = Vec::with_capacity(HEADER_LEN + payload.len());
    v.extend_from_slice(&gen.to_le_bytes());
    v.extend_from_slice(&(payload.len() as u16).to_le_bytes());
    // CRC covers generation + payload so stale-generation records are
    // rejected even if their bytes are intact.
    let mut crc_input = Vec::with_capacity(4 + payload.len());
    crc_input.extend_from_slice(&gen.to_le_bytes());
    crc_input.extend_from_slice(payload);
    v.extend_from_slice(&crc32(&crc_input).to_le_bytes());
    v.extend_from_slice(payload);
    v
}

/// Try to read one framed record for generation `gen` at `bytes[pos..]`.
/// Returns `Ok(None)` at end-of-log (bad frame, wrong generation, or CRC
/// mismatch — all three mean "no more valid records").
pub fn read_frame(bytes: &[u8], pos: &mut usize, gen: u32) -> Result<Option<LogRecord>, FsError> {
    if bytes.len() < *pos + HEADER_LEN {
        return Ok(None);
    }
    let rgen = u32::from_le_bytes(bytes[*pos..*pos + 4].try_into().unwrap());
    if rgen != gen {
        return Ok(None);
    }
    let plen = u16::from_le_bytes(bytes[*pos + 4..*pos + 6].try_into().unwrap()) as usize;
    let stored_crc = u32::from_le_bytes(bytes[*pos + 6..*pos + 10].try_into().unwrap());
    if bytes.len() < *pos + HEADER_LEN + plen {
        return Ok(None);
    }
    let payload = &bytes[*pos + HEADER_LEN..*pos + HEADER_LEN + plen];
    let mut crc_input = Vec::with_capacity(4 + plen);
    crc_input.extend_from_slice(&rgen.to_le_bytes());
    crc_input.extend_from_slice(payload);
    if crc32(&crc_input) != stored_crc {
        return Ok(None);
    }
    let rec = LogRecord::decode_payload(payload)?;
    *pos += HEADER_LEN + plen;
    Ok(Some(rec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn samples() -> Vec<LogRecord> {
        vec![
            LogRecord::Mkdir {
                path: "/ckpt".into(),
                mode: 0o755,
                uid: 1000,
            },
            LogRecord::Create {
                path: "/ckpt/rank_007.dat".into(),
                mode: 0o644,
                uid: 1000,
            },
            LogRecord::Write {
                ino: 3,
                offset: 1 << 20,
                len: 32 << 10,
            },
            LogRecord::Truncate { ino: 3, size: 0 },
            LogRecord::Unlink {
                path: "/ckpt/rank_007.dat".into(),
            },
            LogRecord::Rename {
                from: "/ckpt/tmp".into(),
                to: "/ckpt/final".into(),
            },
            LogRecord::SetMode {
                ino: 3,
                mode: 0o600,
            },
        ]
    }

    #[test]
    fn payload_roundtrip() {
        for r in samples() {
            let p = r.encode_payload();
            assert_eq!(LogRecord::decode_payload(&p).unwrap(), r);
        }
    }

    #[test]
    fn write_record_is_compact_and_fixed() {
        let r = LogRecord::Write {
            ino: u64::MAX,
            offset: u64::MAX,
            len: u64::MAX,
        };
        assert_eq!(r.encode_payload().len(), WRITE_PAYLOAD_LEN);
        let small = LogRecord::Write {
            ino: 0,
            offset: 0,
            len: 1,
        };
        assert_eq!(small.encode_payload().len(), WRITE_PAYLOAD_LEN);
    }

    #[test]
    fn framed_stream_roundtrip() {
        let gen = 7;
        let mut buf = Vec::new();
        for r in samples() {
            buf.extend_from_slice(&r.encode(gen));
        }
        buf.extend_from_slice(&[0u8; 64]); // trailing garbage
        let mut pos = 0;
        let mut out = Vec::new();
        while let Some(r) = read_frame(&buf, &mut pos, gen).unwrap() {
            out.push(r);
        }
        assert_eq!(out, samples());
    }

    #[test]
    fn wrong_generation_stops_scan() {
        let r = LogRecord::Write {
            ino: 1,
            offset: 0,
            len: 10,
        };
        let buf = r.encode(3);
        let mut pos = 0;
        assert_eq!(read_frame(&buf, &mut pos, 4).unwrap(), None);
        assert_eq!(pos, 0);
    }

    #[test]
    fn corrupt_crc_stops_scan() {
        let r = LogRecord::Create {
            path: "/x".into(),
            mode: 0,
            uid: 0,
        };
        let mut buf = r.encode(0);
        let last = buf.len() - 1;
        buf[last] ^= 0x80; // flip a payload bit
        let mut pos = 0;
        assert_eq!(read_frame(&buf, &mut pos, 0).unwrap(), None);
    }

    #[test]
    fn stale_generation_crc_cannot_masquerade() {
        // A record written under gen 1 whose generation field is then
        // clobbered to 2 must fail the CRC (crc covers the generation).
        let r = LogRecord::Write {
            ino: 9,
            offset: 0,
            len: 5,
        };
        let mut buf = r.encode(1);
        buf[0..4].copy_from_slice(&2u32.to_le_bytes());
        let mut pos = 0;
        assert_eq!(read_frame(&buf, &mut pos, 2).unwrap(), None);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_any_record(
            which in 0u8..6,
            path in "/[a-z0-9/_.]{0,60}",
            a in any::<u64>(),
            b in any::<u64>(),
            mode in any::<u32>(),
            gen in any::<u32>(),
        ) {
            let r = match which {
                0 => LogRecord::Mkdir { path, mode, uid: mode ^ 7 },
                1 => LogRecord::Create { path, mode, uid: mode ^ 7 },
                2 => LogRecord::Write { ino: a, offset: b, len: a ^ b },
                3 => LogRecord::Truncate { ino: a, size: b },
                4 => LogRecord::Rename { from: path.clone(), to: format!("{path}.new") },
                _ => LogRecord::Unlink { path },
            };
            let buf = r.encode(gen);
            let mut pos = 0;
            prop_assert_eq!(read_frame(&buf, &mut pos, gen).unwrap(), Some(r));
            prop_assert_eq!(pos, buf.len());
        }

        /// Arbitrary bytes never panic the frame reader.
        #[test]
        fn prop_reader_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128), gen in any::<u32>()) {
            let mut pos = 0;
            let _ = read_frame(&bytes, &mut pos, gen);
        }
    }
}
