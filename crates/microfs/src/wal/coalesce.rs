//! Log record coalescing — the sliding window of Figure 5.
//!
//! "We take advantage of the sequential nature of checkpoint IO to combine
//! near-adjacent log records as long as they represent consecutive writes
//! to the same checkpoint file... We use a sliding window to find the log
//! record for the previous write and update it accordingly." (§III-E)
//!
//! The window remembers the device position and coverage of the most recent
//! `Write` records. When a new write to inode `i` starts exactly where a
//! windowed record for `i` ends, the existing on-device record is rewritten
//! in place with an extended length instead of appending a new record —
//! lowering the log fill-up rate and the replay length at recovery.
//!
//! Atomicity assumption: the in-place rewrite is a single ≤45-byte device
//! write, which NVMe devices complete atomically (it is far below the
//! atomic-write unit). A torn rewrite would invalidate the record's CRC
//! and with it coverage of *earlier, already-durable* writes — so the
//! design is only sound on devices with that guarantee, the same class of
//! power-loss-protected hardware §III-D already requires.

use std::collections::VecDeque;

use crate::inode::Ino;

/// One remembered `Write` record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowEntry {
    /// Inode the record targets.
    pub ino: Ino,
    /// File offset where the record's coverage starts.
    pub start: u64,
    /// File offset one past the record's coverage.
    pub end: u64,
    /// Device byte position of the record's frame (for in-place rewrite).
    pub device_pos: u64,
}

/// The sliding window.
#[derive(Debug, Clone)]
pub struct CoalesceWindow {
    entries: VecDeque<WindowEntry>,
    capacity: usize,
}

impl CoalesceWindow {
    /// A window remembering up to `capacity` recent write records. The
    /// paper does not publish its window size; 8 covers interleaved writes
    /// to several open checkpoint files. A zero capacity (a degenerate
    /// but representable configuration) clamps to 1 instead of panicking.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        CoalesceWindow {
            entries: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// If a windowed record for `ino` ends exactly at `offset`, extend it by
    /// `len` and return it (post-extension) for in-place rewrite. Otherwise
    /// return `None`; the caller appends a fresh record and registers it.
    pub fn try_extend(&mut self, ino: Ino, offset: u64, len: u64) -> Option<WindowEntry> {
        for e in self.entries.iter_mut().rev() {
            if e.ino == ino && e.end == offset {
                e.end = offset + len;
                return Some(*e);
            }
        }
        None
    }

    /// Register a freshly appended record, evicting the oldest if full.
    pub fn register(&mut self, entry: WindowEntry) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(entry);
    }

    /// Forget records for `ino` (after unlink/truncate the coverage is
    /// stale and must not be extended).
    pub fn invalidate(&mut self, ino: Ino) {
        self.entries.retain(|e| e.ino != ino);
    }

    /// Drop all window state (after a log reset).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Current window occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(ino: Ino, start: u64, end: u64, pos: u64) -> WindowEntry {
        WindowEntry {
            ino,
            start,
            end,
            device_pos: pos,
        }
    }

    #[test]
    fn sequential_writes_coalesce() {
        let mut w = CoalesceWindow::new(8);
        w.register(entry(1, 0, 100, 10));
        let e = w
            .try_extend(1, 100, 50)
            .expect("sequential write must extend");
        assert_eq!((e.start, e.end, e.device_pos), (0, 150, 10));
        // And again, continuing the extended coverage.
        let e = w.try_extend(1, 150, 50).unwrap();
        assert_eq!(e.end, 200);
    }

    #[test]
    fn non_adjacent_writes_do_not_coalesce() {
        let mut w = CoalesceWindow::new(8);
        w.register(entry(1, 0, 100, 0));
        assert_eq!(w.try_extend(1, 150, 10), None); // gap
        assert_eq!(w.try_extend(1, 50, 10), None); // overlap/rewind
        assert_eq!(w.try_extend(2, 100, 10), None); // different file
    }

    #[test]
    fn interleaved_files_both_coalesce_within_window() {
        let mut w = CoalesceWindow::new(8);
        w.register(entry(1, 0, 10, 0));
        w.register(entry(2, 0, 20, 40));
        assert!(w.try_extend(1, 10, 5).is_some());
        assert!(w.try_extend(2, 20, 5).is_some());
    }

    #[test]
    fn eviction_limits_lookback() {
        let mut w = CoalesceWindow::new(2);
        w.register(entry(1, 0, 10, 0));
        w.register(entry(2, 0, 10, 40));
        w.register(entry(3, 0, 10, 80)); // evicts ino 1
        assert_eq!(w.try_extend(1, 10, 5), None);
        assert!(w.try_extend(2, 10, 5).is_some());
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn zero_capacity_clamps_instead_of_panicking() {
        let mut w = CoalesceWindow::new(0);
        w.register(entry(1, 0, 10, 0));
        assert!(w.try_extend(1, 10, 5).is_some());
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn most_recent_match_wins() {
        // Two records for the same inode can both be in the window (e.g.
        // after a seek); extension must apply to the most recent one whose
        // end matches.
        let mut w = CoalesceWindow::new(4);
        w.register(entry(1, 0, 100, 0));
        w.register(entry(1, 500, 600, 40));
        let e = w.try_extend(1, 600, 10).unwrap();
        assert_eq!(e.device_pos, 40);
        let e = w.try_extend(1, 100, 10).unwrap();
        assert_eq!(e.device_pos, 0);
    }

    #[test]
    fn invalidate_removes_inode_records() {
        let mut w = CoalesceWindow::new(4);
        w.register(entry(1, 0, 10, 0));
        w.register(entry(2, 0, 10, 40));
        w.invalidate(1);
        assert_eq!(w.try_extend(1, 10, 5), None);
        assert!(w.try_extend(2, 10, 5).is_some());
        w.clear();
        assert!(w.is_empty());
    }
}
