//! # microfs — the paper's coordination-free filesystem abstraction
//!
//! A *micro filesystem* (§III-A) is a per-process, private-namespace,
//! userspace filesystem designed for ephemeral checkpoint data. This crate
//! is a complete, functional implementation operating on real bytes through
//! a [`block::BlockDevice`]; the NVMe-CR runtime instantiates one `MicroFs`
//! per application process over its remote SSD partition.
//!
//! Design principles implemented here, mapped to the paper:
//!
//! | Paper concept | Module |
//! |---|---|
//! | Hugeblocks + circular block pool, O(1) allocation (§III-E) | [`block::pool`] |
//! | DRAM B+Tree of name → inode mappings (§III-E) | [`btree`] |
//! | Inodes, directory files, POSIX-ish API (§III-E) | [`inode`], [`dirent`], [`fs`] |
//! | Metadata provenance: compact operation log (§III-E) | [`wal`] |
//! | Log record coalescing, sliding window (§III-E, Fig. 5) | [`wal::coalesce`] |
//! | Atomic internal-state checkpoint to a reserved region (§III-E) | [`snapshot`] |
//! | Replay recovery, near-instantaneous (§III-E) | [`fs::MicroFs::mount`] |
//! | No write buffering — data durable on return (§III-D) | [`fs`] write path |
//!
//! ```
//! use microfs::{FsConfig, MemDevice, MicroFs, OpenFlags};
//!
//! let mut fs = MicroFs::format(MemDevice::new(64 << 20), FsConfig::default()).unwrap();
//! let fd = fs.create("/ckpt.dat", 0o644).unwrap();
//! fs.write(fd, b"application state").unwrap(); // durable on return
//! fs.close(fd).unwrap();
//!
//! // Crash: drop all volatile state, keep the device...
//! let device = fs.into_device();
//! // ...and recover by replaying the operation log.
//! let mut fs = MicroFs::mount(device, FsConfig::default()).unwrap();
//! let fd = fs.open("/ckpt.dat", OpenFlags::RDONLY, 0).unwrap();
//! let mut buf = [0u8; 17];
//! fs.read(fd, &mut buf).unwrap();
//! assert_eq!(&buf, b"application state");
//! ```
//!
//! A crucial property of the provenance design is reproduced faithfully:
//! log records carry **only the syscall type and parameters** (no block
//! lists, no physical redo data). Replay re-executes allocation against the
//! replayed circular pool, which is deterministic, so the same blocks are
//! reassigned and file data already on the device is re-attached intact.
//! The crash-recovery test suite verifies this byte-for-byte.

pub mod block;
pub mod btree;
pub mod cow;
pub mod crc;
pub mod dirent;
pub mod error;
pub mod fs;
pub mod fsck;
pub mod inode;
pub mod layout;
pub mod manifest;
pub mod recovery;
pub mod snapshot;
pub mod wal;

pub use block::{BlockDevice, MemDevice};
pub use cow::{CowTracker, IntervalSet};
pub use error::{FsError, OpenFlags};
pub use fs::{FsConfig, FsStats, MicroFs};
pub use fsck::{check as fsck, FsckIssue, FsckReport};
pub use layout::Layout;
pub use manifest::{EpochManifest, ExtentMap, ManifestError, ManifestExtent, ManifestLayout};
