//! On-device layout of one microfs partition.
//!
//! ```text
//! +--------------+-----------------+---------------------+----------------+
//! | superblock   | operation log   | snapshot region     | hugeblock data |
//! | (4 KiB)      | (wal::Wal)      | (2 slots, A/B)      | region         |
//! +--------------+-----------------+---------------------+----------------+
//! ```
//!
//! The superblock records the geometry and is CRC-protected; `mount`
//! validates it before trusting anything else on the partition.

use crate::crc::crc32;
use crate::error::FsError;

const SUPERBLOCK_MAGIC: u64 = 0x6D69_6372_6F66_7321; // "microfs!"
const SUPERBLOCK_VERSION: u32 = 1;
/// Serialized superblock size (one hardware block).
pub const SUPERBLOCK_LEN: u64 = 4096;

/// Partition geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Hugeblock size in bytes (§III-E; default 32 KiB).
    pub block_size: u64,
    /// Byte offset of the operation-log region.
    pub log_offset: u64,
    /// Size of the operation-log region.
    pub log_size: u64,
    /// Byte offset of the snapshot region (two slots).
    pub snapshot_offset: u64,
    /// Size of *each* snapshot slot.
    pub snapshot_slot_size: u64,
    /// Byte offset of the data region.
    pub data_offset: u64,
    /// Number of hugeblocks in the data region.
    pub data_blocks: u64,
}

impl Layout {
    /// Compute a layout for a partition of `partition_size` bytes with the
    /// given hugeblock size. Reserves ~1% (min 256 KiB) for the log and two
    /// snapshot slots of 4% (min 1 MiB) each.
    pub fn compute(partition_size: u64, block_size: u64) -> Result<Layout, FsError> {
        if !block_size.is_power_of_two() || block_size < 4096 {
            return Err(FsError::Invalid(format!(
                "hugeblock size {block_size} must be a power of two >= 4096"
            )));
        }
        let log_size = (partition_size / 100).max(256 << 10);
        let snapshot_slot_size = (partition_size / 25).max(1 << 20);
        let data_offset_raw = SUPERBLOCK_LEN + log_size + 2 * snapshot_slot_size;
        // Align the data region to the hugeblock size.
        let data_offset = data_offset_raw.div_ceil(block_size) * block_size;
        if data_offset + block_size > partition_size {
            return Err(FsError::Invalid(format!(
                "partition of {partition_size} bytes too small for block size {block_size}"
            )));
        }
        let data_blocks = (partition_size - data_offset) / block_size;
        Ok(Layout {
            block_size,
            log_offset: SUPERBLOCK_LEN,
            log_size,
            snapshot_offset: SUPERBLOCK_LEN + log_size,
            snapshot_slot_size,
            data_offset,
            data_blocks,
        })
    }

    /// Device offset of hugeblock `idx`.
    pub fn block_addr(&self, idx: u64) -> u64 {
        debug_assert!(idx < self.data_blocks, "block {idx} out of range");
        self.data_offset + idx * self.block_size
    }

    /// Serialize to superblock bytes (fixed [`SUPERBLOCK_LEN`]).
    pub fn encode_superblock(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(SUPERBLOCK_LEN as usize);
        v.extend_from_slice(&SUPERBLOCK_MAGIC.to_le_bytes());
        v.extend_from_slice(&SUPERBLOCK_VERSION.to_le_bytes());
        for field in [
            self.block_size,
            self.log_offset,
            self.log_size,
            self.snapshot_offset,
            self.snapshot_slot_size,
            self.data_offset,
            self.data_blocks,
        ] {
            v.extend_from_slice(&field.to_le_bytes());
        }
        let crc = crc32(&v);
        v.extend_from_slice(&crc.to_le_bytes());
        v.resize(SUPERBLOCK_LEN as usize, 0);
        v
    }

    /// Parse and validate a superblock.
    pub fn decode_superblock(bytes: &[u8]) -> Result<Layout, FsError> {
        if bytes.len() < 8 + 4 + 7 * 8 + 4 {
            return Err(FsError::Io("superblock truncated".into()));
        }
        let body_len = 8 + 4 + 7 * 8;
        let stored_crc = u32::from_le_bytes(bytes[body_len..body_len + 4].try_into().unwrap());
        if crc32(&bytes[..body_len]) != stored_crc {
            return Err(FsError::Io("superblock checksum mismatch".into()));
        }
        let magic = u64::from_le_bytes(bytes[..8].try_into().unwrap());
        if magic != SUPERBLOCK_MAGIC {
            return Err(FsError::Io(format!("bad superblock magic {magic:#x}")));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != SUPERBLOCK_VERSION {
            return Err(FsError::Io(format!("unsupported version {version}")));
        }
        let mut fields = [0u64; 7];
        for (i, f) in fields.iter_mut().enumerate() {
            let s = 12 + i * 8;
            *f = u64::from_le_bytes(bytes[s..s + 8].try_into().unwrap());
        }
        Ok(Layout {
            block_size: fields[0],
            log_offset: fields[1],
            log_size: fields[2],
            snapshot_offset: fields[3],
            snapshot_slot_size: fields[4],
            data_offset: fields[5],
            data_blocks: fields[6],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_partitions_sanely() {
        let l = Layout::compute(1 << 30, 32 << 10).unwrap();
        assert_eq!(l.block_size, 32 << 10);
        assert!(l.log_size >= 256 << 10);
        assert!(l.data_offset.is_multiple_of(l.block_size));
        assert!(l.data_blocks > 29_000); // ~1 GiB / 32 KiB minus reserves
                                         // Regions do not overlap.
        assert!(l.log_offset >= SUPERBLOCK_LEN);
        assert!(l.snapshot_offset >= l.log_offset + l.log_size);
        assert!(l.data_offset >= l.snapshot_offset + 2 * l.snapshot_slot_size);
    }

    #[test]
    fn superblock_roundtrip() {
        let l = Layout::compute(256 << 20, 32 << 10).unwrap();
        let sb = l.encode_superblock();
        assert_eq!(sb.len() as u64, SUPERBLOCK_LEN);
        assert_eq!(Layout::decode_superblock(&sb).unwrap(), l);
    }

    #[test]
    fn corrupt_superblock_rejected() {
        let l = Layout::compute(256 << 20, 32 << 10).unwrap();
        let mut sb = l.encode_superblock();
        sb[20] ^= 0xFF;
        assert!(matches!(
            Layout::decode_superblock(&sb),
            Err(FsError::Io(_))
        ));
    }

    #[test]
    fn bad_block_sizes_rejected() {
        assert!(Layout::compute(1 << 30, 1000).is_err()); // not a power of two
        assert!(Layout::compute(1 << 30, 2048).is_err()); // < 4096
    }

    #[test]
    fn tiny_partition_rejected() {
        assert!(Layout::compute(1 << 20, 1 << 20).is_err());
    }

    #[test]
    fn block_addr_math() {
        let l = Layout::compute(1 << 30, 32 << 10).unwrap();
        assert_eq!(l.block_addr(0), l.data_offset);
        assert_eq!(l.block_addr(5), l.data_offset + 5 * (32 << 10));
    }

    #[test]
    fn hugeblock_size_sweep_all_valid() {
        // Figure 7a sweeps 4 KiB .. 1 MiB; all must lay out on a 4 GiB
        // partition.
        for shift in 12..=20 {
            let l = Layout::compute(4 << 30, 1 << shift).unwrap();
            assert!(l.data_blocks > 0);
        }
    }
}
