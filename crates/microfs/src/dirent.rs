//! Directory-file records.
//!
//! Each directory is a regular microfs file whose content is an append-only
//! stream of entry records ("for each file create, a corresponding entry
//! must be added to the directory file stored on the remote SSD", §IV-G).
//! Removals append tombstones. The DRAM B+Tree is the fast index; the
//! directory file is the on-device ground truth that makes a create cost
//! one hugeblock-resident append — which is why create throughput is
//! "limited only by hardware bandwidth and not software latency".

use crate::error::FsError;
use crate::inode::Ino;

/// One record in a directory file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Dirent {
    /// A name now maps to an inode.
    Add {
        /// Entry name (a single path component).
        name: String,
        /// The entry's inode.
        ino: Ino,
    },
    /// A name was removed (tombstone).
    Remove {
        /// Entry name.
        name: String,
    },
}

impl Dirent {
    /// Append the record's bytes to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Dirent::Add { name, ino } => {
                out.push(1);
                out.extend_from_slice(&(name.len() as u16).to_le_bytes());
                out.extend_from_slice(name.as_bytes());
                out.extend_from_slice(&ino.to_le_bytes());
            }
            Dirent::Remove { name } => {
                out.push(2);
                out.extend_from_slice(&(name.len() as u16).to_le_bytes());
                out.extend_from_slice(name.as_bytes());
            }
        }
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        match self {
            Dirent::Add { name, .. } => 1 + 2 + name.len() + 8,
            Dirent::Remove { name } => 1 + 2 + name.len(),
        }
    }

    /// Parse one record from `bytes[pos..]`, advancing `pos`.
    pub fn decode(bytes: &[u8], pos: &mut usize) -> Result<Dirent, FsError> {
        if bytes.len() < *pos + 3 {
            return Err(FsError::Io("dirent truncated".into()));
        }
        let tag = bytes[*pos];
        let nlen = u16::from_le_bytes(bytes[*pos + 1..*pos + 3].try_into().unwrap()) as usize;
        *pos += 3;
        if bytes.len() < *pos + nlen {
            return Err(FsError::Io("dirent name truncated".into()));
        }
        let name = std::str::from_utf8(&bytes[*pos..*pos + nlen])
            .map_err(|_| FsError::Io("dirent name not utf-8".into()))?
            .to_string();
        *pos += nlen;
        match tag {
            1 => {
                if bytes.len() < *pos + 8 {
                    return Err(FsError::Io("dirent ino truncated".into()));
                }
                let ino = u64::from_le_bytes(bytes[*pos..*pos + 8].try_into().unwrap());
                *pos += 8;
                Ok(Dirent::Add { name, ino })
            }
            2 => Ok(Dirent::Remove { name }),
            t => Err(FsError::Io(format!("bad dirent tag {t}"))),
        }
    }

    /// Replay a record stream of `len` bytes into the live entry map.
    pub fn replay_stream(bytes: &[u8], len: usize) -> Result<Vec<(String, Ino)>, FsError> {
        let bytes = &bytes[..len.min(bytes.len())];
        let mut live: Vec<(String, Ino)> = Vec::new();
        let mut pos = 0;
        while pos < len {
            match Dirent::decode(bytes, &mut pos)? {
                Dirent::Add { name, ino } => {
                    live.retain(|(n, _)| *n != name);
                    live.push((name, ino));
                }
                Dirent::Remove { name } => live.retain(|(n, _)| *n != name),
            }
        }
        Ok(live)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_add_and_remove() {
        let recs = vec![
            Dirent::Add {
                name: "ckpt_0.dat".into(),
                ino: 5,
            },
            Dirent::Remove {
                name: "ckpt_0.dat".into(),
            },
        ];
        let mut buf = Vec::new();
        for r in &recs {
            r.encode(&mut buf);
            assert_eq!(r.encoded_len(), buf.len() - (buf.len() - r.encoded_len()));
        }
        let mut pos = 0;
        let a = Dirent::decode(&buf, &mut pos).unwrap();
        let b = Dirent::decode(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        assert_eq!(vec![a, b], recs);
    }

    #[test]
    fn replay_applies_adds_and_tombstones() {
        let mut buf = Vec::new();
        Dirent::Add {
            name: "a".into(),
            ino: 1,
        }
        .encode(&mut buf);
        Dirent::Add {
            name: "b".into(),
            ino: 2,
        }
        .encode(&mut buf);
        Dirent::Remove { name: "a".into() }.encode(&mut buf);
        Dirent::Add {
            name: "b".into(),
            ino: 9,
        }
        .encode(&mut buf);
        let live = Dirent::replay_stream(&buf, buf.len()).unwrap();
        assert_eq!(live, vec![("b".to_string(), 9)]);
    }

    #[test]
    fn truncated_stream_rejected() {
        let mut buf = Vec::new();
        Dirent::Add {
            name: "file".into(),
            ino: 3,
        }
        .encode(&mut buf);
        assert!(Dirent::replay_stream(&buf, buf.len() - 1).is_err());
    }

    proptest! {
        #[test]
        fn prop_roundtrip(name in "[a-z0-9_.]{1,40}", ino in any::<u64>(), add in any::<bool>()) {
            let r = if add {
                Dirent::Add { name, ino }
            } else {
                Dirent::Remove { name }
            };
            let mut buf = Vec::new();
            r.encode(&mut buf);
            prop_assert_eq!(buf.len(), r.encoded_len());
            let mut pos = 0;
            prop_assert_eq!(Dirent::decode(&buf, &mut pos).unwrap(), r);
        }
    }
}
