//! Checkpoint epoch manifests — the on-device commit protocol of the
//! replicated checkpoint path.
//!
//! Every replicated rank reserves a small manifest region at the tail of
//! its segment (on both copies). A checkpoint epoch commits in two
//! phases into one of two ping-pong slots (`epoch % 2`): first the
//! **body** — epoch sequence number plus one `(offset, len, crc32)`
//! entry per live extent of the filesystem image — then a CRC-sealed
//! **commit record** at the slot head. A slot whose record is missing,
//! torn, or corrupt is simply not committed, so restore can always
//! identify the latest *complete* epoch on either copy: the other slot
//! still holds the previous one.
//!
//! [`ExtentMap`] is the in-memory side: a cumulative map of every byte
//! ever mirrored, with per-extent CRCs maintained incrementally —
//! adjacent extents merge via [`crc32_concat`] without re-reading data;
//! partially overwritten extents leave *dirty* (CRC-unknown) fragments
//! that the committer re-reads lazily.

use std::collections::BTreeMap;
use std::fmt;

use crate::crc::{crc32, crc32_concat};

/// Bytes reserved per manifest slot.
pub const SLOT_BYTES: u64 = 512 << 10;
/// Bytes of the whole manifest region (two ping-pong slots).
pub const REGION_BYTES: u64 = 2 * SLOT_BYTES;
/// Bytes of the sealed commit record at the head of a slot.
pub const COMMIT_RECORD_BYTES: u64 = 32;
/// Slots in the chained layout: the same [`REGION_BYTES`] region divided
/// into a ring of smaller slots so a lineage of delta epochs (plus the
/// full epoch anchoring it) stays addressable.
pub const CHAIN_SLOTS: u64 = 8;
/// Longest delta lineage the chained ring supports: a complete chain is
/// `full + MAX_DELTA_CHAIN` deltas, and one more slot stays free for the
/// in-progress commit that will overwrite the oldest entry.
pub const MAX_DELTA_CHAIN: u32 = (CHAIN_SLOTS - 2) as u32;

const BODY_MAGIC: u32 = 0x4E43_4D42; // "BMCN"
const DELTA_MAGIC: u32 = 0x4E43_4D44; // "DMCN"
const COMMIT_MAGIC: u32 = 0x4E43_4D43; // "CMCN"
const BODY_HEADER: usize = 16; // magic u32 | epoch u64 | count u32
const DELTA_EXTRA: usize = 12; // parent_epoch u64 | whiteout count u32
const EXTENT_BYTES: usize = 20; // offset u64 | len u64 | crc u32
const WHITEOUT_BYTES: usize = 16; // offset u64 | len u64

/// Slot offset (within the manifest region) for `epoch`.
pub fn slot_offset(epoch: u64) -> u64 {
    (epoch % 2) * SLOT_BYTES
}

/// Most extents a slot body can hold.
pub fn max_extents() -> usize {
    (SLOT_BYTES as usize - COMMIT_RECORD_BYTES as usize - BODY_HEADER) / EXTENT_BYTES
}

/// Geometry of the manifest region: how [`REGION_BYTES`] is divided into
/// slots. The standard layout is the two-slot ping-pong pair (bit-for-bit
/// today's format); the chained layout divides the same region into
/// [`CHAIN_SLOTS`] smaller slots so delta epochs keep their ancestors
/// addressable until the next compaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ManifestLayout {
    /// Slots in the ring.
    pub slots: u64,
    /// Bytes per slot (`slots * slot_bytes == REGION_BYTES`).
    pub slot_bytes: u64,
}

impl ManifestLayout {
    /// The two-slot ping-pong layout of full epoch manifests.
    pub fn standard() -> Self {
        ManifestLayout {
            slots: 2,
            slot_bytes: SLOT_BYTES,
        }
    }

    /// The delta-chain ring: more, smaller slots in the same region.
    pub fn chained() -> Self {
        ManifestLayout {
            slots: CHAIN_SLOTS,
            slot_bytes: REGION_BYTES / CHAIN_SLOTS,
        }
    }

    /// True when this is the delta-chain ring.
    pub fn is_chained(&self) -> bool {
        self.slots > 2
    }

    /// Slot offset (within the manifest region) for `epoch`.
    pub fn slot_offset(&self, epoch: u64) -> u64 {
        (epoch % self.slots) * self.slot_bytes
    }

    /// Most body bytes one slot can carry.
    pub fn body_capacity(&self) -> usize {
        (self.slot_bytes - COMMIT_RECORD_BYTES) as usize
    }
}

impl Default for ManifestLayout {
    fn default() -> Self {
        ManifestLayout::standard()
    }
}

/// Manifest encode/decode failures. Decode errors all mean "this slot
/// holds no complete epoch" — the caller falls back to the other slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestError {
    /// The slot is shorter than its framing claims (torn write).
    Truncated,
    /// No commit record (or not a manifest at all).
    BadMagic,
    /// A CRC check failed — record or body bytes rotted or tore.
    Corrupt { expected: u32, actual: u32 },
    /// The record and body disagree on the epoch.
    EpochMismatch { record: u64, body: u64 },
    /// Encoding: the extent map no longer fits one slot.
    TooLarge { extents: usize },
    /// Encoding: an extent's CRC is unresolved (dirty) — the caller must
    /// re-read and [`ExtentMap::set_crc`] it first.
    Dirty { offset: u64 },
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Truncated => write!(f, "manifest slot truncated"),
            ManifestError::BadMagic => write!(f, "manifest slot has no commit record"),
            ManifestError::Corrupt { expected, actual } => {
                write!(
                    f,
                    "manifest CRC mismatch: expected {expected:#010x}, got {actual:#010x}"
                )
            }
            ManifestError::EpochMismatch { record, body } => {
                write!(f, "manifest epoch mismatch: record {record}, body {body}")
            }
            ManifestError::TooLarge { extents } => {
                write!(f, "{extents} extents exceed one manifest slot")
            }
            ManifestError::Dirty { offset } => {
                write!(f, "extent at {offset} has an unresolved CRC")
            }
        }
    }
}

impl std::error::Error for ManifestError {}

/// One verified extent of the mirrored image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ManifestExtent {
    /// Byte offset within the filesystem image.
    pub offset: u64,
    /// Extent length in bytes.
    pub len: u64,
    /// CRC-32 of the extent's contents.
    pub crc: u32,
}

/// A committed checkpoint epoch: sequence number plus the extents (and
/// their checksums) that make up the image — the whole image for a full
/// epoch, only the changed part for a delta epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochManifest {
    /// Monotonic epoch sequence number (first commit is 1).
    pub epoch: u64,
    /// Parent epoch of a delta manifest; `0` marks a full (self-contained)
    /// manifest. A delta's parent is always `epoch - 1` — every commit
    /// seals a manifest, so the lineage has no holes.
    pub parent_epoch: u64,
    /// Image extents, in offset order. For a delta: only the extents whose
    /// `(offset, len, crc)` tuple changed since the parent epoch.
    pub extents: Vec<ManifestExtent>,
    /// Spans discarded since the parent epoch (file deletes/truncates
    /// propagated down as device discards). During chain materialization
    /// a whiteout shadows any ancestor extents beneath it.
    pub whiteouts: Vec<(u64, u64)>,
}

impl EpochManifest {
    /// A full (self-contained) manifest — the only kind the standard
    /// two-slot layout ever writes.
    pub fn full(epoch: u64, extents: Vec<ManifestExtent>) -> Self {
        EpochManifest {
            epoch,
            parent_epoch: 0,
            extents,
            whiteouts: Vec::new(),
        }
    }

    /// True for a delta manifest (has a parent in the lineage chain).
    pub fn is_delta(&self) -> bool {
        self.parent_epoch != 0
    }

    /// Encode the phase-1 **body**: written at `slot + COMMIT_RECORD_BYTES`
    /// *before* the commit record so a crash between the phases leaves the
    /// slot uncommitted rather than half-sealed. Full manifests keep the
    /// v1 encoding bit-for-bit; deltas use the extended header carrying
    /// `parent_epoch` and the whiteout list.
    pub fn encode_body(&self) -> Result<Vec<u8>, ManifestError> {
        if self.extents.len() > max_extents() {
            return Err(ManifestError::TooLarge {
                extents: self.extents.len(),
            });
        }
        let delta = self.is_delta() || !self.whiteouts.is_empty();
        let cap = BODY_HEADER
            + if delta { DELTA_EXTRA } else { 0 }
            + self.extents.len() * EXTENT_BYTES
            + self.whiteouts.len() * WHITEOUT_BYTES;
        let mut out = Vec::with_capacity(cap);
        let magic = if delta { DELTA_MAGIC } else { BODY_MAGIC };
        out.extend_from_slice(&magic.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&(self.extents.len() as u32).to_le_bytes());
        if delta {
            out.extend_from_slice(&self.parent_epoch.to_le_bytes());
            out.extend_from_slice(&(self.whiteouts.len() as u32).to_le_bytes());
        }
        for e in &self.extents {
            out.extend_from_slice(&e.offset.to_le_bytes());
            out.extend_from_slice(&e.len.to_le_bytes());
            out.extend_from_slice(&e.crc.to_le_bytes());
        }
        if delta {
            for &(offset, len) in &self.whiteouts {
                out.extend_from_slice(&offset.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
            }
        }
        Ok(out)
    }

    /// Encode the phase-2 **commit record** sealing `body`: written at the
    /// slot head only after the body write completed.
    pub fn encode_commit(&self, body: &[u8]) -> [u8; COMMIT_RECORD_BYTES as usize] {
        let mut rec = [0u8; COMMIT_RECORD_BYTES as usize];
        rec[0..4].copy_from_slice(&COMMIT_MAGIC.to_le_bytes());
        rec[4..12].copy_from_slice(&self.epoch.to_le_bytes());
        rec[12..16].copy_from_slice(&(body.len() as u32).to_le_bytes());
        rec[16..20].copy_from_slice(&crc32(body).to_le_bytes());
        let seal = crc32(&rec[0..20]);
        rec[20..24].copy_from_slice(&seal.to_le_bytes());
        rec
    }

    /// Decode one slot (commit record + body). Any framing, CRC, or epoch
    /// inconsistency — truncation and single-bit corruption included —
    /// returns an error: the slot holds no complete epoch.
    pub fn decode_slot(slot: &[u8]) -> Result<EpochManifest, ManifestError> {
        let rec_len = COMMIT_RECORD_BYTES as usize;
        if slot.len() < rec_len {
            return Err(ManifestError::Truncated);
        }
        let u32_at = |b: &[u8], i: usize| u32::from_le_bytes(b[i..i + 4].try_into().unwrap());
        let u64_at = |b: &[u8], i: usize| u64::from_le_bytes(b[i..i + 8].try_into().unwrap());
        if u32_at(slot, 0) != COMMIT_MAGIC {
            return Err(ManifestError::BadMagic);
        }
        if slot[24..rec_len].iter().any(|&b| b != 0) {
            return Err(ManifestError::BadMagic);
        }
        let seal = u32_at(slot, 20);
        let actual = crc32(&slot[0..20]);
        if seal != actual {
            return Err(ManifestError::Corrupt {
                expected: seal,
                actual,
            });
        }
        let rec_epoch = u64_at(slot, 4);
        let body_len = u32_at(slot, 12) as usize;
        let body = slot
            .get(rec_len..rec_len + body_len)
            .ok_or(ManifestError::Truncated)?;
        let body_crc = u32_at(slot, 16);
        let actual = crc32(body);
        if body_crc != actual {
            return Err(ManifestError::Corrupt {
                expected: body_crc,
                actual,
            });
        }
        if body.len() < BODY_HEADER {
            return Err(ManifestError::BadMagic);
        }
        let delta = match u32_at(body, 0) {
            BODY_MAGIC => false,
            DELTA_MAGIC => true,
            _ => return Err(ManifestError::BadMagic),
        };
        let body_epoch = u64_at(body, 4);
        if body_epoch != rec_epoch {
            return Err(ManifestError::EpochMismatch {
                record: rec_epoch,
                body: body_epoch,
            });
        }
        let count = u32_at(body, 12) as usize;
        let header = BODY_HEADER + if delta { DELTA_EXTRA } else { 0 };
        if body.len() < header {
            return Err(ManifestError::Truncated);
        }
        let (parent_epoch, wcount) = if delta {
            (u64_at(body, 16), u32_at(body, 24) as usize)
        } else {
            (0, 0)
        };
        if body.len() != header + count * EXTENT_BYTES + wcount * WHITEOUT_BYTES {
            return Err(ManifestError::Truncated);
        }
        let mut extents = Vec::with_capacity(count);
        for i in 0..count {
            let at = header + i * EXTENT_BYTES;
            extents.push(ManifestExtent {
                offset: u64_at(body, at),
                len: u64_at(body, at + 8),
                crc: u32_at(body, at + 16),
            });
        }
        let wbase = header + count * EXTENT_BYTES;
        let mut whiteouts = Vec::with_capacity(wcount);
        for i in 0..wcount {
            let at = wbase + i * WHITEOUT_BYTES;
            whiteouts.push((u64_at(body, at), u64_at(body, at + 8)));
        }
        Ok(EpochManifest {
            epoch: rec_epoch,
            parent_epoch,
            extents,
            whiteouts,
        })
    }

    /// Total image bytes the manifest covers.
    pub fn bytes(&self) -> u64 {
        self.extents.iter().map(|e| e.len).sum()
    }
}

#[derive(Debug, Clone, Copy)]
struct MapEntry {
    len: u64,
    /// `None` marks a dirty fragment: its bytes are on both copies but
    /// its CRC must be re-read before the next commit can cover it.
    crc: Option<u32>,
}

/// Cumulative map of every mirrored byte, with incremental CRCs.
#[derive(Debug, Clone)]
pub struct ExtentMap {
    map: BTreeMap<u64, MapEntry>,
    /// Largest extent adjacent merges may produce. Unlimited by default
    /// (today's behavior); the delta-chain path caps it so extents stay
    /// close to write granularity and delta diffs stay sparse.
    merge_limit: u64,
}

impl Default for ExtentMap {
    fn default() -> Self {
        ExtentMap {
            map: BTreeMap::new(),
            merge_limit: u64::MAX,
        }
    }
}

impl ExtentMap {
    /// An empty map.
    pub fn new() -> Self {
        ExtentMap::default()
    }

    /// Rebuild a map from a committed manifest (restart path).
    pub fn from_manifest(m: &EpochManifest) -> Self {
        Self::from_extents(&m.extents)
    }

    /// Rebuild a map from disjoint extents (chain materialization).
    pub fn from_extents(extents: &[ManifestExtent]) -> Self {
        let mut map = BTreeMap::new();
        for e in extents {
            map.insert(
                e.offset,
                MapEntry {
                    len: e.len,
                    crc: Some(e.crc),
                },
            );
        }
        ExtentMap {
            map,
            merge_limit: u64::MAX,
        }
    }

    /// Cap adjacent merges at `limit` bytes. Existing extents are left
    /// as-is; only future merges respect the cap.
    pub fn set_merge_limit(&mut self, limit: u64) {
        self.merge_limit = limit.max(1);
    }

    /// Record a mirrored write of `len` bytes at `offset` whose payload
    /// CRC is `crc`.
    pub fn record(&mut self, offset: u64, len: u64, crc: u32) {
        self.insert_extent(offset, len, Some(crc));
    }

    /// Mark `[offset, offset+len)` dirty — used when a mirrored window
    /// failed partway and the replica's contents for the range are
    /// uncertain (they will be copied, not CRC-verified, on restore).
    pub fn mark_dirty(&mut self, offset: u64, len: u64) {
        self.insert_extent(offset, len, None);
    }

    /// Drop `[offset, offset+len)` from the map — a whiteout. Extents
    /// reaching across either boundary keep their outside fragments, whose
    /// CRCs go dirty and are re-read at the next commit (the same rule as
    /// an overlapping write).
    pub fn remove(&mut self, offset: u64, len: u64) {
        if len == 0 {
            return;
        }
        let end = offset + len;
        let mut hit: Vec<(u64, MapEntry)> = Vec::new();
        if let Some((&k, &e)) = self.map.range(..offset).next_back() {
            if k + e.len > offset {
                hit.push((k, e));
            }
        }
        for (&k, &e) in self.map.range(offset..end) {
            hit.push((k, e));
        }
        for (k, e) in hit {
            self.map.remove(&k);
            if k < offset {
                self.map.insert(
                    k,
                    MapEntry {
                        len: offset - k,
                        crc: None,
                    },
                );
            }
            if k + e.len > end {
                self.map.insert(
                    end,
                    MapEntry {
                        len: k + e.len - end,
                        crc: None,
                    },
                );
            }
        }
    }

    fn insert_extent(&mut self, offset: u64, len: u64, crc: Option<u32>) {
        if len == 0 {
            return;
        }
        let end = offset + len;
        // Collect every existing extent overlapping [offset, end): the
        // predecessor (which may reach in) plus all starting inside.
        let mut hit: Vec<(u64, MapEntry)> = Vec::new();
        if let Some((&k, &e)) = self.map.range(..offset).next_back() {
            if k + e.len > offset {
                hit.push((k, e));
            }
        }
        for (&k, &e) in self.map.range(offset..end) {
            hit.push((k, e));
        }
        for (k, e) in hit {
            self.map.remove(&k);
            // A surviving fragment's CRC is not derivable from the whole
            // extent's — it goes dirty and is re-read at the next commit.
            if k < offset {
                self.map.insert(
                    k,
                    MapEntry {
                        len: offset - k,
                        crc: None,
                    },
                );
            }
            if k + e.len > end {
                self.map.insert(
                    end,
                    MapEntry {
                        len: k + e.len - end,
                        crc: None,
                    },
                );
            }
        }
        self.map.insert(offset, MapEntry { len, crc });
        self.merge_around(offset);
    }

    /// Merge the extent at `offset` with exactly-adjacent neighbours whose
    /// CRCs are known, composing checksums with [`crc32_concat`] instead
    /// of re-reading bytes.
    fn merge_around(&mut self, mut offset: u64) {
        let Some(mut cur) = self.map.get(&offset).copied() else {
            return;
        };
        if let Some((&pk, &pe)) = self.map.range(..offset).next_back() {
            if pk + pe.len == offset && pe.len + cur.len <= self.merge_limit {
                if let (Some(a), Some(b)) = (pe.crc, cur.crc) {
                    self.map.remove(&offset);
                    cur = MapEntry {
                        len: pe.len + cur.len,
                        crc: Some(crc32_concat(a, b, cur.len)),
                    };
                    self.map.insert(pk, cur);
                    offset = pk;
                }
            }
        }
        let next = offset + cur.len;
        if let Some(&ne) = self.map.get(&next) {
            if cur.len + ne.len <= self.merge_limit {
                if let (Some(a), Some(b)) = (cur.crc, ne.crc) {
                    self.map.remove(&next);
                    self.map.insert(
                        offset,
                        MapEntry {
                            len: cur.len + ne.len,
                            crc: Some(crc32_concat(a, b, ne.len)),
                        },
                    );
                }
            }
        }
    }

    /// Dirty fragments, in offset order — the committer re-reads exactly
    /// these before encoding a manifest.
    pub fn dirty_fragments(&self) -> Vec<(u64, u64)> {
        self.map
            .iter()
            .filter(|(_, e)| e.crc.is_none())
            .map(|(&k, e)| (k, e.len))
            .collect()
    }

    /// Resolve a dirty fragment's CRC after re-reading it. Returns false
    /// if no fragment starts at `offset` with exactly `len` bytes.
    pub fn set_crc(&mut self, offset: u64, len: u64, crc: u32) -> bool {
        match self.map.get_mut(&offset) {
            Some(e) if e.len == len => {
                e.crc = Some(crc);
                self.merge_around(offset);
                true
            }
            _ => false,
        }
    }

    /// All extents as `(offset, len, crc)` — `crc` is `None` for dirty
    /// fragments.
    pub fn entries(&self) -> Vec<(u64, u64, Option<u32>)> {
        self.map.iter().map(|(&k, e)| (k, e.len, e.crc)).collect()
    }

    /// Number of extents tracked.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing was mirrored yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total bytes tracked.
    pub fn bytes(&self) -> u64 {
        self.map.values().map(|e| e.len).sum()
    }

    /// Build the full manifest for `epoch`. Every extent's CRC must be
    /// resolved first (see [`ExtentMap::dirty_fragments`]).
    pub fn to_manifest(&self, epoch: u64) -> Result<EpochManifest, ManifestError> {
        let mut extents = Vec::with_capacity(self.map.len());
        for (&offset, e) in &self.map {
            let crc = e.crc.ok_or(ManifestError::Dirty { offset })?;
            extents.push(ManifestExtent {
                offset,
                len: e.len,
                crc,
            });
        }
        Ok(EpochManifest::full(epoch, extents))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(m: &EpochManifest) -> Vec<u8> {
        let body = m.encode_body().unwrap();
        let rec = m.encode_commit(&body);
        let mut slot = rec.to_vec();
        slot.extend_from_slice(&body);
        slot
    }

    #[test]
    fn encode_decode_roundtrips() {
        let m = EpochManifest::full(
            7,
            vec![
                ManifestExtent {
                    offset: 0,
                    len: 4096,
                    crc: 0xDEAD_BEEF,
                },
                ManifestExtent {
                    offset: 1 << 20,
                    len: 123,
                    crc: 42,
                },
            ],
        );
        assert_eq!(EpochManifest::decode_slot(&roundtrip(&m)).unwrap(), m);
        assert_eq!(m.bytes(), 4096 + 123);
    }

    #[test]
    fn missing_record_is_uncommitted() {
        // Phase 1 only: body in place, record never sealed.
        let m = EpochManifest::full(1, vec![]);
        let body = m.encode_body().unwrap();
        let mut slot = vec![0u8; COMMIT_RECORD_BYTES as usize];
        slot.extend_from_slice(&body);
        assert_eq!(
            EpochManifest::decode_slot(&slot),
            Err(ManifestError::BadMagic)
        );
        assert_eq!(
            EpochManifest::decode_slot(&[]),
            Err(ManifestError::Truncated)
        );
    }

    #[test]
    fn slot_alternates_by_epoch() {
        assert_eq!(slot_offset(1), SLOT_BYTES);
        assert_eq!(slot_offset(2), 0);
        assert_eq!(slot_offset(3), SLOT_BYTES);
    }

    #[test]
    fn map_merges_sequential_writes() {
        let mut map = ExtentMap::new();
        let a = b"sequential ";
        let b = b"append stream";
        map.record(0, a.len() as u64, crc32(a));
        map.record(a.len() as u64, b.len() as u64, crc32(b));
        let mut joined = a.to_vec();
        joined.extend_from_slice(b);
        assert_eq!(
            map.entries(),
            vec![(0, joined.len() as u64, Some(crc32(&joined)))]
        );
    }

    #[test]
    fn overwrite_splits_and_dirties_fragments() {
        let mut map = ExtentMap::new();
        map.record(0, 100, 1);
        map.record(40, 20, 2); // punches a hole in the middle
        let entries = map.entries();
        assert_eq!(
            entries,
            vec![(0, 40, None), (40, 20, Some(2)), (60, 40, None)]
        );
        assert_eq!(map.dirty_fragments(), vec![(0, 40), (60, 40)]);
        assert_eq!(map.bytes(), 100);
        // Resolving the dirty CRCs makes the map committable again.
        assert!(map.to_manifest(1).is_err());
        assert!(map.set_crc(0, 40, 7));
        assert!(map.set_crc(60, 40, 9));
        assert!(map.to_manifest(1).is_ok());
    }

    #[test]
    fn exact_overwrite_replaces_crc() {
        let mut map = ExtentMap::new();
        map.record(10, 50, 1);
        map.record(10, 50, 2);
        assert_eq!(map.entries(), vec![(10, 50, Some(2))]);
    }

    #[test]
    fn manifest_rebuild_matches() {
        let mut map = ExtentMap::new();
        map.record(0, 64, 11);
        map.record(128, 32, 22);
        let m = map.to_manifest(3).unwrap();
        let rebuilt = ExtentMap::from_manifest(&m);
        assert_eq!(rebuilt.entries(), map.entries());
    }

    #[test]
    fn delta_manifest_roundtrips_with_parent_and_whiteouts() {
        let m = EpochManifest {
            epoch: 12,
            parent_epoch: 11,
            extents: vec![ManifestExtent {
                offset: 4096,
                len: 8192,
                crc: 0xC0FF_EE00,
            }],
            whiteouts: vec![(1 << 20, 64 << 10), (3 << 20, 4096)],
        };
        let decoded = EpochManifest::decode_slot(&roundtrip(&m)).unwrap();
        assert_eq!(decoded, m);
        assert!(decoded.is_delta());
        // A full manifest's encoding is byte-identical to the v1 format:
        // no parent/whiteout fields on the wire.
        let full = EpochManifest::full(12, m.extents.clone());
        let v1 = full.encode_body().unwrap();
        assert_eq!(v1.len(), 16 + 20);
        assert!(!EpochManifest::decode_slot(&roundtrip(&full))
            .unwrap()
            .is_delta());
    }

    #[test]
    fn chained_layout_divides_the_same_region() {
        let std_l = ManifestLayout::standard();
        let chain = ManifestLayout::chained();
        assert_eq!(std_l.slots * std_l.slot_bytes, REGION_BYTES);
        assert_eq!(chain.slots * chain.slot_bytes, REGION_BYTES);
        assert!(!std_l.is_chained() && chain.is_chained());
        // Standard layout matches the free function bit-for-bit.
        for e in 0..10u64 {
            assert_eq!(std_l.slot_offset(e), slot_offset(e));
        }
        assert_eq!(chain.slot_offset(CHAIN_SLOTS), 0);
        assert_eq!(chain.slot_offset(1), chain.slot_bytes);
        assert!(u64::from(MAX_DELTA_CHAIN) + 2 <= chain.slots);
    }

    #[test]
    fn remove_punches_whiteout_holes() {
        let mut map = ExtentMap::new();
        map.record(0, 100, 1);
        map.remove(40, 20);
        assert_eq!(map.entries(), vec![(0, 40, None), (60, 40, None)]);
        assert_eq!(map.bytes(), 80);
        // Removing a whole extent leaves nothing behind.
        map.remove(0, 40);
        assert_eq!(map.entries(), vec![(60, 40, None)]);
        // Removing beyond mapped space is a no-op.
        map.remove(500, 100);
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn merge_limit_bounds_extent_growth() {
        let mut map = ExtentMap::new();
        map.set_merge_limit(64);
        for i in 0..4u64 {
            map.record(i * 32, 32, i as u32 + 1);
        }
        // Adjacent 32-byte extents merge pairwise to 64 and stop there.
        assert_eq!(map.len(), 2);
        assert!(map.entries().iter().all(|&(_, len, _)| len <= 64));
        assert_eq!(map.bytes(), 128);
    }

    proptest! {
        /// Encode/decode round-trips arbitrary manifests.
        #[test]
        fn prop_roundtrip(
            epoch in 1u64..1_000_000,
            lens in proptest::collection::vec(1u64..10_000, 0..64),
        ) {
            let mut offset = 0;
            let extents: Vec<ManifestExtent> = lens
                .iter()
                .map(|&len| {
                    let e = ManifestExtent { offset, len, crc: crc32(&offset.to_le_bytes()) };
                    offset += len + 1;
                    e
                })
                .collect();
            let m = EpochManifest::full(epoch, extents);
            prop_assert_eq!(EpochManifest::decode_slot(&roundtrip(&m)).unwrap(), m);
        }

        /// Truncating an encoded slot anywhere is detected.
        #[test]
        fn prop_truncation_detected(
            cut in 0usize..200,
        ) {
            let m = EpochManifest::full(
                9,
                (0..8u64)
                    .map(|i| ManifestExtent { offset: i * 64, len: 64, crc: i as u32 })
                    .collect(),
            );
            let slot = roundtrip(&m);
            let cut = cut % slot.len();
            prop_assert!(EpochManifest::decode_slot(&slot[..cut]).is_err());
        }

        /// Flipping any single bit of an encoded slot is detected
        /// (mirrors the crc.rs bit-flip property).
        #[test]
        fn prop_single_bit_corruption_detected(
            idx_seed in any::<u64>(),
            bit in 0usize..8,
        ) {
            let m = EpochManifest::full(
                5,
                (0..4u64)
                    .map(|i| ManifestExtent { offset: i * 4096, len: 4096, crc: 0xA5A5 + i as u32 })
                    .collect(),
            );
            let mut slot = roundtrip(&m);
            let idx = (idx_seed as usize) % slot.len();
            slot[idx] ^= 1 << bit;
            prop_assert_ne!(EpochManifest::decode_slot(&slot).as_ref(), Ok(&m));
        }

        /// The map's composed CRCs always equal a direct CRC of the image
        /// bytes, under arbitrary overlapping writes (dirty fragments are
        /// resolved against the image, as the committer does).
        #[test]
        fn prop_map_crcs_match_image(
            writes in proptest::collection::vec((0u64..500, 1u64..300, any::<u8>()), 1..24),
        ) {
            let mut image = vec![0u8; 1024];
            let mut map = ExtentMap::new();
            for (offset, len, fill) in writes {
                let end = ((offset + len) as usize).min(image.len());
                let offset = offset as usize;
                let data = vec![fill; end - offset];
                image[offset..end].copy_from_slice(&data);
                map.record(offset as u64, data.len() as u64, crc32(&data));
            }
            for (offset, len) in map.dirty_fragments() {
                let (o, l) = (offset as usize, len as usize);
                prop_assert!(map.set_crc(offset, len, crc32(&image[o..o + l])));
            }
            let m = map.to_manifest(1).unwrap();
            for e in &m.extents {
                let (o, l) = (e.offset as usize, e.len as usize);
                prop_assert_eq!(e.crc, crc32(&image[o..o + l]));
            }
        }
    }
}
