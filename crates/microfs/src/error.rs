//! Errno-like error type and POSIX open flags.

use std::fmt;

/// Filesystem errors, mirroring the POSIX errno values the intercepted
//  syscalls would return.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// ENOENT — path component does not exist.
    NotFound(String),
    /// EEXIST — create of an existing name without O_TRUNC semantics.
    AlreadyExists(String),
    /// ENOTDIR — a non-final path component is not a directory.
    NotADirectory(String),
    /// EISDIR — file operation on a directory.
    IsADirectory(String),
    /// ENOTEMPTY — unlink/rmdir of a non-empty directory.
    NotEmpty(String),
    /// EBADF — bad or closed file descriptor.
    BadFd(u32),
    /// EACCES — permission denied.
    PermissionDenied(String),
    /// ENOSPC — out of hugeblocks or inodes.
    NoSpace,
    /// EINVAL — malformed argument (bad path, bad flags).
    Invalid(String),
    /// EIO — device-level failure or corruption detected.
    Io(String),
    /// Log region exhausted even after checkpointing (fatal).
    LogFull,
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "ENOENT: {p}"),
            FsError::AlreadyExists(p) => write!(f, "EEXIST: {p}"),
            FsError::NotADirectory(p) => write!(f, "ENOTDIR: {p}"),
            FsError::IsADirectory(p) => write!(f, "EISDIR: {p}"),
            FsError::NotEmpty(p) => write!(f, "ENOTEMPTY: {p}"),
            FsError::BadFd(fd) => write!(f, "EBADF: fd {fd}"),
            FsError::PermissionDenied(p) => write!(f, "EACCES: {p}"),
            FsError::NoSpace => write!(f, "ENOSPC"),
            FsError::Invalid(m) => write!(f, "EINVAL: {m}"),
            FsError::Io(m) => write!(f, "EIO: {m}"),
            FsError::LogFull => write!(f, "operation log exhausted"),
        }
    }
}

impl std::error::Error for FsError {}

/// Open flags (a subset of `fcntl.h`, enough for checkpoint IO).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenFlags {
    /// Open for reading.
    pub read: bool,
    /// Open for writing.
    pub write: bool,
    /// Create if missing.
    pub create: bool,
    /// Truncate to zero length on open.
    pub truncate: bool,
    /// All writes go to end of file.
    pub append: bool,
    /// With `create`: fail if the file already exists (`O_EXCL`).
    pub excl: bool,
}

impl OpenFlags {
    /// `O_RDONLY`.
    pub const RDONLY: OpenFlags = OpenFlags {
        read: true,
        write: false,
        create: false,
        truncate: false,
        append: false,
        excl: false,
    };
    /// `O_WRONLY | O_CREAT | O_TRUNC` — the checkpoint dump pattern.
    pub const CREATE_TRUNC: OpenFlags = OpenFlags {
        read: false,
        write: true,
        create: true,
        truncate: true,
        append: false,
        excl: false,
    };
    /// `O_RDWR`.
    pub const RDWR: OpenFlags = OpenFlags {
        read: true,
        write: true,
        create: false,
        truncate: false,
        append: false,
        excl: false,
    };
    /// `O_WRONLY | O_CREAT | O_APPEND`.
    pub const APPEND: OpenFlags = OpenFlags {
        read: false,
        write: true,
        create: true,
        truncate: false,
        append: true,
        excl: false,
    };
    /// `O_WRONLY | O_CREAT | O_EXCL` — create a fresh file or fail.
    pub const CREATE_EXCL: OpenFlags = OpenFlags {
        read: false,
        write: true,
        create: true,
        truncate: false,
        append: false,
        excl: true,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_errno_name() {
        assert!(FsError::NotFound("/a".into())
            .to_string()
            .contains("ENOENT"));
        assert!(FsError::NoSpace.to_string().contains("ENOSPC"));
        assert!(FsError::BadFd(3).to_string().contains("EBADF"));
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // presets are consts by design
    fn flag_presets() {
        assert!(OpenFlags::CREATE_TRUNC.create && OpenFlags::CREATE_TRUNC.truncate);
        assert!(!OpenFlags::RDONLY.write);
        assert!(OpenFlags::APPEND.append && OpenFlags::APPEND.write);
        assert!(OpenFlags::CREATE_EXCL.excl && OpenFlags::CREATE_EXCL.create);
    }
}
