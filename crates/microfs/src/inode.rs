//! Inodes and the DRAM inode table.
//!
//! §III-E: microfs borrows "conventional filesystem concepts... such as
//! *inodes* to store file metadata and *directory files* to store directory
//! entries", but keeps them entirely in compute-node DRAM — only the
//! operation log (and periodic snapshots) touch the device.

use crate::error::FsError;

/// Inode number. The root directory is always inode 0.
pub type Ino = u64;

/// Root directory inode number.
pub const ROOT_INO: Ino = 0;

/// File type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InodeKind {
    /// Regular file.
    File,
    /// Directory (its data blocks hold dirent records).
    Dir,
}

/// One inode: metadata plus the hugeblock map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inode {
    /// File or directory.
    pub kind: InodeKind,
    /// Logical size in bytes.
    pub size: u64,
    /// Hugeblocks backing the file, in file order (block `i` covers file
    /// bytes `[i * block_size, (i+1) * block_size)`).
    pub blocks: Vec<u64>,
    /// POSIX mode bits (permissions only; type lives in `kind`).
    pub mode: u32,
    /// Owning uid, checked by the control plane's access control (§III-F).
    pub uid: u32,
    /// Logical modification stamp (monotonic operation counter).
    pub mtime_op: u64,
}

impl Inode {
    /// A fresh empty file.
    pub fn new_file(mode: u32, uid: u32, op: u64) -> Self {
        Inode {
            kind: InodeKind::File,
            size: 0,
            blocks: Vec::new(),
            mode,
            uid,
            mtime_op: op,
        }
    }

    /// A fresh empty directory.
    pub fn new_dir(mode: u32, uid: u32, op: u64) -> Self {
        Inode {
            kind: InodeKind::Dir,
            size: 0,
            blocks: Vec::new(),
            mode,
            uid,
            mtime_op: op,
        }
    }

    /// Serialized bytes.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self.kind {
            InodeKind::File => 0,
            InodeKind::Dir => 1,
        });
        out.extend_from_slice(&self.size.to_le_bytes());
        out.extend_from_slice(&self.mode.to_le_bytes());
        out.extend_from_slice(&self.uid.to_le_bytes());
        out.extend_from_slice(&self.mtime_op.to_le_bytes());
        out.extend_from_slice(&(self.blocks.len() as u64).to_le_bytes());
        for b in &self.blocks {
            out.extend_from_slice(&b.to_le_bytes());
        }
    }

    /// Parse from `bytes[pos..]`, advancing `pos`.
    pub fn decode(bytes: &[u8], pos: &mut usize) -> Result<Inode, FsError> {
        let need = |p: usize, n: usize| {
            if bytes.len() < p + n {
                Err(FsError::Io("inode truncated".into()))
            } else {
                Ok(())
            }
        };
        need(*pos, 1 + 8 + 4 + 4 + 8 + 8)?;
        let kind = match bytes[*pos] {
            0 => InodeKind::File,
            1 => InodeKind::Dir,
            k => return Err(FsError::Io(format!("bad inode kind {k}"))),
        };
        *pos += 1;
        let rd64 = |p: &mut usize| {
            let v = u64::from_le_bytes(bytes[*p..*p + 8].try_into().unwrap());
            *p += 8;
            v
        };
        let rd32 = |p: &mut usize| {
            let v = u32::from_le_bytes(bytes[*p..*p + 4].try_into().unwrap());
            *p += 4;
            v
        };
        let size = rd64(pos);
        let mode = rd32(pos);
        let uid = rd32(pos);
        let mtime_op = rd64(pos);
        let nblocks = rd64(pos) as usize;
        need(*pos, nblocks * 8)?;
        let mut blocks = Vec::with_capacity(nblocks);
        for _ in 0..nblocks {
            blocks.push(rd64(pos));
        }
        Ok(Inode {
            kind,
            size,
            blocks,
            mode,
            uid,
            mtime_op,
        })
    }

    /// Approximate DRAM footprint.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Inode>() + self.blocks.len() * 8
    }
}

/// The DRAM inode table: a slab with an O(1) free list. Inode numbers are
/// allocated deterministically (most-recently-freed first), which replay
/// relies on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InodeTable {
    slots: Vec<Option<Inode>>,
    free: Vec<Ino>,
    live: usize,
}

impl InodeTable {
    /// An empty table (no root yet — `MicroFs::format` creates it).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live inodes.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no inodes are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Allocate an inode number for `inode` (most-recently-freed first,
    /// else a fresh slot).
    pub fn alloc(&mut self, inode: Inode) -> Ino {
        self.live += 1;
        if let Some(ino) = self.free.pop() {
            self.slots[ino as usize] = Some(inode);
            ino
        } else {
            self.slots.push(Some(inode));
            (self.slots.len() - 1) as Ino
        }
    }

    /// Fetch an inode.
    pub fn get(&self, ino: Ino) -> Result<&Inode, FsError> {
        self.slots
            .get(ino as usize)
            .and_then(|s| s.as_ref())
            .ok_or_else(|| FsError::Io(format!("dangling inode {ino}")))
    }

    /// Fetch an inode mutably.
    pub fn get_mut(&mut self, ino: Ino) -> Result<&mut Inode, FsError> {
        self.slots
            .get_mut(ino as usize)
            .and_then(|s| s.as_mut())
            .ok_or_else(|| FsError::Io(format!("dangling inode {ino}")))
    }

    /// Free an inode, returning it (the caller releases its blocks).
    pub fn remove(&mut self, ino: Ino) -> Result<Inode, FsError> {
        let slot = self
            .slots
            .get_mut(ino as usize)
            .ok_or_else(|| FsError::Io(format!("dangling inode {ino}")))?;
        let inode = slot
            .take()
            .ok_or_else(|| FsError::Io(format!("dangling inode {ino}")))?;
        self.free.push(ino);
        self.live -= 1;
        Ok(inode)
    }

    /// Approximate DRAM footprint (Table I accounting).
    pub fn approx_bytes(&self) -> usize {
        self.slots
            .iter()
            .flatten()
            .map(Inode::approx_bytes)
            .sum::<usize>()
            + self.free.len() * 8
    }

    /// Serialize the whole table (slots, including holes, plus free list —
    /// the free-list order is allocator state, like the block pool's ring).
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::new();
        v.extend_from_slice(&(self.slots.len() as u64).to_le_bytes());
        for slot in &self.slots {
            match slot {
                Some(inode) => {
                    v.push(1);
                    inode.encode(&mut v);
                }
                None => v.push(0),
            }
        }
        v.extend_from_slice(&(self.free.len() as u64).to_le_bytes());
        for f in &self.free {
            v.extend_from_slice(&f.to_le_bytes());
        }
        v
    }

    /// Deserialize; inverse of [`encode`](Self::encode).
    pub fn decode(bytes: &[u8]) -> Result<(InodeTable, usize), FsError> {
        if bytes.len() < 8 {
            return Err(FsError::Io("inode table truncated".into()));
        }
        let n = u64::from_le_bytes(bytes[0..8].try_into().unwrap()) as usize;
        let mut pos = 8;
        let mut slots = Vec::with_capacity(n);
        let mut live = 0;
        for _ in 0..n {
            if bytes.len() < pos + 1 {
                return Err(FsError::Io("inode table truncated".into()));
            }
            let tag = bytes[pos];
            pos += 1;
            match tag {
                0 => slots.push(None),
                1 => {
                    slots.push(Some(Inode::decode(bytes, &mut pos)?));
                    live += 1;
                }
                t => return Err(FsError::Io(format!("bad inode slot tag {t}"))),
            }
        }
        if bytes.len() < pos + 8 {
            return Err(FsError::Io("inode free list truncated".into()));
        }
        let nf = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap()) as usize;
        pos += 8;
        if bytes.len() < pos + nf * 8 {
            return Err(FsError::Io("inode free list truncated".into()));
        }
        let mut free = Vec::with_capacity(nf);
        for _ in 0..nf {
            free.push(u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap()));
            pos += 8;
        }
        Ok((InodeTable { slots, free, live }, pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn alloc_reuses_freed_numbers_deterministically() {
        let mut t = InodeTable::new();
        let a = t.alloc(Inode::new_dir(0o755, 0, 0));
        let b = t.alloc(Inode::new_file(0o644, 0, 1));
        let c = t.alloc(Inode::new_file(0o644, 0, 2));
        assert_eq!((a, b, c), (0, 1, 2));
        t.remove(b).unwrap();
        // LIFO reuse: next alloc takes the most recently freed number.
        assert_eq!(t.alloc(Inode::new_file(0o600, 0, 3)), 1);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut t = InodeTable::new();
        let ino = t.alloc(Inode::new_file(0o644, 42, 0));
        {
            let i = t.get_mut(ino).unwrap();
            i.size = 1024;
            i.blocks.push(7);
        }
        let i = t.get(ino).unwrap();
        assert_eq!(i.size, 1024);
        assert_eq!(i.blocks, vec![7]);
        assert_eq!(i.uid, 42);
    }

    #[test]
    fn dangling_access_is_an_error() {
        let mut t = InodeTable::new();
        let ino = t.alloc(Inode::new_file(0, 0, 0));
        t.remove(ino).unwrap();
        assert!(t.get(ino).is_err());
        assert!(t.get_mut(ino).is_err());
        assert!(t.remove(ino).is_err());
        assert!(t.get(999).is_err());
    }

    #[test]
    fn inode_encode_decode() {
        let mut i = Inode::new_file(0o640, 7, 99);
        i.size = 123_456;
        i.blocks = vec![5, 9, 2];
        let mut buf = Vec::new();
        i.encode(&mut buf);
        let mut pos = 0;
        let j = Inode::decode(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        assert_eq!(i, j);
    }

    #[test]
    fn table_encode_decode_with_holes() {
        let mut t = InodeTable::new();
        let _r = t.alloc(Inode::new_dir(0o755, 0, 0));
        let f1 = t.alloc(Inode::new_file(0o644, 0, 1));
        let _f2 = t.alloc(Inode::new_file(0o644, 0, 2));
        t.remove(f1).unwrap();
        let bytes = t.encode();
        let (u, consumed) = InodeTable::decode(&bytes).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(t, u);
        // Allocation determinism survives the round trip.
        let mut t2 = t.clone();
        let mut u2 = u;
        assert_eq!(
            t2.alloc(Inode::new_file(0, 0, 9)),
            u2.alloc(Inode::new_file(0, 0, 9))
        );
    }

    #[test]
    fn corrupt_table_bytes_rejected() {
        let mut t = InodeTable::new();
        t.alloc(Inode::new_file(0o644, 0, 0));
        let bytes = t.encode();
        assert!(InodeTable::decode(&bytes[..4]).is_err());
        let mut bad = bytes.clone();
        bad[8] = 7; // invalid slot tag
        assert!(InodeTable::decode(&bad).is_err());
    }

    proptest! {
        /// The table round-trips through encode/decode after arbitrary
        /// alloc/remove interleavings.
        #[test]
        fn prop_roundtrip(ops in proptest::collection::vec(any::<bool>(), 1..100)) {
            let mut t = InodeTable::new();
            let mut live = Vec::new();
            for (i, alloc) in ops.into_iter().enumerate() {
                if alloc || live.is_empty() {
                    live.push(t.alloc(Inode::new_file(0o644, 0, i as u64)));
                } else {
                    let ino = live.swap_remove(i % live.len());
                    t.remove(ino).unwrap();
                }
            }
            let (u, _) = InodeTable::decode(&t.encode()).unwrap();
            prop_assert_eq!(t, u);
        }
    }
}
