//! `MicroFs` — the per-process private-namespace filesystem.
//!
//! One instance per application process, mounted on that process's device
//! partition. All metadata lives in DRAM (inode table, block pool, B+Tree);
//! the device sees only file data (in hugeblock units), compact operation-log
//! records, directory-file appends, and periodic state snapshots.
//!
//! Durability contract (§III-D/E): data writes go straight to the device
//! (no buffering) and the operation log is flushed before an operation
//! returns — so a returned `write` is durable, and "a completely written
//! checkpoint file will never hold corrupted data".

use std::sync::Arc;

use telemetry::{Counter, FlightKind, FlightRecorder, Histogram, Telemetry};

use crate::block::{BlockDevice, BlockPool};
use crate::btree::BTree;
use crate::dirent::Dirent;
use crate::error::{FsError, OpenFlags};
use crate::inode::{Ino, Inode, InodeKind, InodeTable, ROOT_INO};
use crate::layout::{Layout, SUPERBLOCK_LEN};
use crate::snapshot::{self, FsState};
use crate::wal::{LogRecord, Wal, WalStats};

/// Tunables for one microfs instance.
#[derive(Debug, Clone)]
pub struct FsConfig {
    /// Hugeblock size (power of two, ≥ 4096). The paper selects 32 KiB.
    pub block_size: u64,
    /// The uid this instance acts as (access-control checks, §III-F).
    pub uid: u32,
    /// Enable log record coalescing (ablation flag; §III-E, Figure 5).
    pub coalescing: bool,
    /// Snapshot internal state when the log's free fraction drops below
    /// this threshold and no files are open (§III-E background trigger).
    pub snapshot_threshold: f64,
    /// Where this instance reports its `microfs.*` metrics.
    pub telemetry: Telemetry,
    /// Fault-injection hook; the WAL consults it on fresh appends. Disarmed
    /// (the default) it costs one relaxed atomic load per append.
    pub chaos: chaos::ChaosHandle,
    /// Track copy-on-write dirty extents per epoch and emit whiteout
    /// discards for freed block spans. Off (the default) the write path is
    /// bit-for-bit today's behavior.
    pub cow_epochs: bool,
}

impl Default for FsConfig {
    fn default() -> Self {
        FsConfig {
            block_size: 32 << 10,
            uid: 1000,
            coalescing: true,
            snapshot_threshold: 0.25,
            telemetry: Telemetry::default(),
            chaos: chaos::ChaosHandle::default(),
            cow_epochs: false,
        }
    }
}

/// Resolved telemetry handles for the filesystem hot paths (one registry
/// lookup each at mount time, never per operation).
struct FsMetrics {
    /// Operation-log append latency (including the snapshot-on-full
    /// fallback when it fires).
    wal_append_ns: Arc<Histogram>,
    /// Log records physically appended.
    wal_appended: Arc<Counter>,
    /// Writes absorbed by in-place record coalescing.
    wal_coalesced: Arc<Counter>,
    /// DRAM B+Tree operation latency (lookups and inserts).
    btree_op_ns: Arc<Histogram>,
    /// Full `pwrite` path latency: extent allocation + device IO + log.
    write_ns: Arc<Histogram>,
    /// Full `pread` path latency.
    read_ns: Arc<Histogram>,
    /// Metadata snapshot (checkpoint-internal-state) latency.
    snapshot_ns: Arc<Histogram>,
    /// Mount-time log replay latency (whole replay pass).
    replay_ns: Arc<Histogram>,
    /// Records replayed across all mounts.
    replay_records: Arc<Counter>,
    /// Flight recorder: WAL appends land here so a dump ties metadata
    /// durability to the fabric commands that carried it.
    flight: Arc<FlightRecorder>,
}

impl FsMetrics {
    fn new(t: &Telemetry) -> Self {
        FsMetrics {
            wal_append_ns: t.histogram("microfs.wal_append_ns"),
            wal_appended: t.counter("microfs.wal_appended"),
            wal_coalesced: t.counter("microfs.wal_coalesced"),
            btree_op_ns: t.histogram("microfs.btree_op_ns"),
            write_ns: t.histogram("microfs.write_ns"),
            read_ns: t.histogram("microfs.read_ns"),
            snapshot_ns: t.histogram("microfs.snapshot_ns"),
            replay_ns: t.histogram("microfs.replay_ns"),
            replay_records: t.counter("microfs.replay_records"),
            flight: t.recorder(),
        }
    }
}

/// Operation counters, exposed for the experiment harnesses.
#[derive(Debug, Clone, Copy, Default)]
pub struct FsStats {
    /// Files created.
    pub creates: u64,
    /// Directories created.
    pub mkdirs: u64,
    /// Unlinks.
    pub unlinks: u64,
    /// Write calls.
    pub writes: u64,
    /// Read calls.
    pub reads: u64,
    /// File data bytes written.
    pub bytes_written: u64,
    /// File data bytes read.
    pub bytes_read: u64,
    /// Directory-file bytes appended (device-resident metadata).
    pub dirent_bytes: u64,
    /// Snapshots taken.
    pub snapshots: u64,
    /// Bytes written by snapshots.
    pub snapshot_bytes: u64,
    /// Records replayed at the last mount.
    pub replayed_records: u64,
    /// WAL statistics.
    pub wal: WalStats,
}

impl FsStats {
    /// Total device-resident metadata bytes (log + snapshots + directory
    /// files) — the per-runtime number Table I reports.
    pub fn metadata_device_bytes(&self) -> u64 {
        self.wal.bytes_written + self.snapshot_bytes + self.dirent_bytes
    }
}

/// One open file description.
#[derive(Debug, Clone)]
struct OpenFile {
    ino: Ino,
    pos: u64,
    flags: OpenFlags,
}

/// File metadata returned by [`MicroFs::stat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileStat {
    /// File or directory.
    pub kind: InodeKind,
    /// Size in bytes.
    pub size: u64,
    /// Permission bits.
    pub mode: u32,
    /// Owner uid.
    pub uid: u32,
}

/// Filesystem space totals returned by [`MicroFs::statfs`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FsSpace {
    /// Hugeblock size in bytes.
    pub block_size: u64,
    /// Total hugeblocks in the data region.
    pub total_blocks: u64,
    /// Hugeblocks currently free.
    pub free_blocks: u64,
    /// Live inodes.
    pub live_inodes: u64,
    /// Fraction of the operation log still free.
    pub log_free_fraction: f64,
}

/// A mounted microfs instance over a [`BlockDevice`].
pub struct MicroFs<D: BlockDevice> {
    dev: D,
    layout: Layout,
    config: FsConfig,
    state: FsState,
    wal: Wal,
    fds: Vec<Option<OpenFile>>,
    open_count: usize,
    snapshot_seq: u64,
    stats: FsStats,
    metrics: FsMetrics,
    /// Reusable all-zero buffer for gap zeroing (grown on demand, never
    /// reallocated per block).
    zero_scratch: Vec<u8>,
    /// Reusable encode buffer for dirent records.
    enc_scratch: Vec<u8>,
    /// Copy-on-write dirty tracking, present iff `config.cow_epochs`.
    cow: Option<crate::cow::CowTracker>,
}

impl<D: BlockDevice> MicroFs<D> {
    // ------------------------------------------------------------------
    // Lifecycle
    // ------------------------------------------------------------------

    /// Format `dev` as a fresh microfs partition and mount it.
    pub fn format(mut dev: D, config: FsConfig) -> Result<Self, FsError> {
        let layout = Layout::compute(dev.size(), config.block_size)?;
        dev.write_at(0, &layout.encode_superblock())
            .map_err(|e| FsError::Io(e.to_string()))?;
        let mut inodes = InodeTable::new();
        let root = inodes.alloc(Inode::new_dir(0o755, config.uid, 0));
        debug_assert_eq!(root, ROOT_INO);
        let mut btree = BTree::new();
        btree.insert("/", ROOT_INO);
        let state = FsState {
            inodes,
            pool: BlockPool::new(layout.data_blocks),
            btree,
            op_counter: 1,
        };
        // Initial snapshot (seq 0, generation 0) makes the empty state
        // recoverable before any log records exist.
        let snap_bytes = snapshot::write_snapshot(&mut dev, &layout, &state, 0, 0)?;
        let mut wal = Wal::new(layout.log_offset, layout.log_size, config.coalescing);
        wal.set_chaos(config.chaos.clone());
        let metrics = FsMetrics::new(&config.telemetry);
        let cow = config
            .cow_epochs
            .then(|| crate::cow::CowTracker::new(&config.telemetry));
        let mut fs = MicroFs {
            dev,
            layout,
            config,
            state,
            wal,
            fds: Vec::new(),
            open_count: 0,
            snapshot_seq: 0,
            stats: FsStats::default(),
            metrics,
            zero_scratch: Vec::new(),
            enc_scratch: Vec::new(),
            cow,
        };
        fs.stats.snapshots = 1;
        fs.stats.snapshot_bytes = snap_bytes;
        Ok(fs)
    }

    /// Mount an existing partition: load the newest snapshot and replay the
    /// operation log — the recovery path of §III-E.
    ///
    /// Equivalent to driving the [typestate recovery
    /// API](crate::recovery::Crashed) end to end; use that instead when the
    /// caller needs the replay boundary to be visible in the types (e.g. to
    /// interpose replica verification before the instance serves reads).
    pub fn mount(dev: D, config: FsConfig) -> Result<Self, FsError> {
        let (mut fs, records) = Self::mount_prepare(dev, config)?;
        fs.replay_records(&records)?;
        Ok(fs)
    }

    /// First half of `mount`: read the superblock, load the newest
    /// snapshot, scan the log. The returned instance holds the snapshot
    /// state only — the scanned records are *not yet applied*, so the
    /// instance must not serve reads until [`replay_records`]
    /// (`Self::replay_records`) runs.
    pub(crate) fn mount_prepare(
        mut dev: D,
        config: FsConfig,
    ) -> Result<(Self, Vec<LogRecord>), FsError> {
        let sb = dev
            .read_vec(0, SUPERBLOCK_LEN as usize)
            .map_err(|e| FsError::Io(e.to_string()))?;
        let layout = Layout::decode_superblock(&sb)?;
        if layout.block_size != config.block_size {
            return Err(FsError::Invalid(format!(
                "partition formatted with block size {}, config says {}",
                layout.block_size, config.block_size
            )));
        }
        if config.chaos.recovery_fire(chaos::RecoveryOp::SnapshotLoad) {
            return Err(FsError::Io("crash point: recovery snapshot load".into()));
        }
        let (seq, generation, state) = snapshot::read_latest(&mut dev, &layout)
            .ok_or_else(|| FsError::Io("no valid snapshot found".into()))?;
        if config.chaos.recovery_fire(chaos::RecoveryOp::LogScan) {
            return Err(FsError::Io("crash point: recovery log scan".into()));
        }
        let (records, scan_end) =
            Wal::scan(&mut dev, layout.log_offset, layout.log_size, generation)?;
        let metrics = FsMetrics::new(&config.telemetry);
        let fs = MicroFs {
            dev,
            layout,
            config: config.clone(),
            state,
            wal: {
                let mut wal = Wal::resume(
                    layout.log_offset,
                    layout.log_size,
                    config.coalescing,
                    generation,
                    scan_end,
                );
                wal.set_chaos(config.chaos.clone());
                wal
            },
            fds: Vec::new(),
            open_count: 0,
            snapshot_seq: seq,
            stats: FsStats::default(),
            metrics,
            zero_scratch: Vec::new(),
            enc_scratch: Vec::new(),
            cow: config
                .cow_epochs
                .then(|| crate::cow::CowTracker::new(&config.telemetry)),
        };
        Ok((fs, records))
    }

    /// Second half of `mount`: apply the scanned log records to the
    /// snapshot state. Replay is purely in-memory (every device write in
    /// the shared mutation helpers is gated on `live`), so it is safe to
    /// run before any mirror is attached to the device.
    pub(crate) fn replay_records(&mut self, records: &[LogRecord]) -> Result<(), FsError> {
        let replayed = records.len() as u64;
        {
            let _span = telemetry::span("microfs", "replay").arg("records", replayed);
            let replay_ns = Arc::clone(&self.metrics.replay_ns);
            let _t = replay_ns.time();
            for rec in records {
                if self
                    .config
                    .chaos
                    .recovery_fire(chaos::RecoveryOp::ReplayApply)
                {
                    return Err(FsError::Io("crash point: recovery replay".into()));
                }
                self.replay(rec)?;
            }
        }
        self.metrics.replay_records.add(replayed);
        self.stats.replayed_records = replayed;
        Ok(())
    }

    /// The device (for inspection in tests; consumes nothing).
    pub fn device(&self) -> &D {
        &self.dev
    }

    /// Mutable device access for runtime maintenance passes (epoch
    /// commit, scrub, replica rebuild) that drive device-level IO between
    /// filesystem operations. Callers must not mutate blocks the
    /// filesystem owns.
    pub fn device_mut(&mut self) -> &mut D {
        &mut self.dev
    }

    /// Take the device back, dropping all volatile state — the test-suite
    /// idiom for simulating a process crash.
    pub fn into_device(self) -> D {
        self.dev
    }

    /// The partition layout in effect.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Start a new CoW epoch: forget this epoch's dirty spans and
    /// whiteouts. Call right after an epoch manifest commits. No-op when
    /// `cow_epochs` is off.
    pub fn cow_epoch_begin(&mut self) {
        if let Some(cow) = self.cow.as_mut() {
            cow.begin_epoch();
        }
    }

    /// Device spans written since the last [`Self::cow_epoch_begin`],
    /// coalesced and in offset order. Empty when `cow_epochs` is off.
    pub fn cow_dirty_spans(&self) -> Vec<(u64, u64)> {
        self.cow
            .as_ref()
            .map(|c| c.dirty_spans())
            .unwrap_or_default()
    }

    /// Whiteouts recorded since the last [`Self::cow_epoch_begin`].
    pub fn cow_whiteout_spans(&self) -> Vec<(u64, u64)> {
        self.cow
            .as_ref()
            .map(|c| c.whiteout_spans().to_vec())
            .unwrap_or_default()
    }

    /// Bytes dirtied this epoch (each byte counted once).
    pub fn cow_dirty_bytes(&self) -> u64 {
        self.cow
            .as_ref()
            .map(|c| c.dirty_bytes())
            .unwrap_or_default()
    }

    /// Operation statistics (WAL counters merged in).
    pub fn stats(&self) -> FsStats {
        FsStats {
            wal: self.wal.stats(),
            ..self.stats
        }
    }

    /// Approximate DRAM footprint of the metadata structures (inodes +
    /// B+Tree + pool), for the Table I harness.
    pub fn dram_footprint(&self) -> u64 {
        (self.state.inodes.approx_bytes()
            + self.state.btree.approx_bytes()
            + self.state.pool.free_count() as usize * 8) as u64
    }

    /// Number of currently open file descriptors.
    pub fn open_files(&self) -> usize {
        self.open_count
    }

    /// Hugeblocks currently free.
    pub fn free_blocks(&self) -> u64 {
        self.state.pool.free_count()
    }

    // ------------------------------------------------------------------
    // Path helpers
    // ------------------------------------------------------------------

    fn validate_path(path: &str) -> Result<(), FsError> {
        if path == "/" {
            return Ok(());
        }
        if !path.starts_with('/') || path.ends_with('/') {
            return Err(FsError::Invalid(format!("bad path {path:?}")));
        }
        if path.split('/').skip(1).any(str::is_empty) {
            return Err(FsError::Invalid(format!("empty component in {path:?}")));
        }
        Ok(())
    }

    /// Split a path into its parent directory and final component. A path
    /// without `/` is malformed input and surfaces as a typed error — the
    /// public entry points validate first, but a panic here would turn a
    /// caller's bad string into a crashed rank.
    fn parent_of(path: &str) -> Result<(&str, &str), FsError> {
        let idx = path
            .rfind('/')
            .ok_or_else(|| FsError::Invalid(format!("path {path:?} lacks '/'")))?;
        let parent = if idx == 0 { "/" } else { &path[..idx] };
        Ok((parent, &path[idx + 1..]))
    }

    fn lookup(&self, path: &str) -> Option<Ino> {
        let _t = self.metrics.btree_op_ns.time();
        self.state.btree.get(path)
    }

    fn resolve_parent_dir(&self, path: &str) -> Result<(Ino, String), FsError> {
        let (parent, name) = Self::parent_of(path)?;
        let pino = self
            .lookup(parent)
            .ok_or_else(|| FsError::NotFound(parent.to_string()))?;
        if self.state.inodes.get(pino)?.kind != InodeKind::Dir {
            return Err(FsError::NotADirectory(parent.to_string()));
        }
        Ok((pino, name.to_string()))
    }

    fn check_access(&self, inode: &Inode, write: bool) -> Result<(), FsError> {
        if inode.uid == self.config.uid {
            return Ok(());
        }
        let bit = if write { 0o002 } else { 0o004 };
        if inode.mode & bit == 0 {
            return Err(FsError::PermissionDenied(format!(
                "uid {} denied on inode owned by {}",
                self.config.uid, inode.uid
            )));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Core mutation helpers (shared by the live path and replay)
    // ------------------------------------------------------------------

    /// Extend `ino` so blocks cover `[0, offset+len)`, then (live only)
    /// write `data` at `offset`. Allocation order is deterministic, which
    /// is what lets replay reproduce block assignments from parameters.
    fn write_extent(
        &mut self,
        ino: Ino,
        offset: u64,
        len: u64,
        data: Option<&[u8]>,
    ) -> Result<(), FsError> {
        let bs = self.layout.block_size;
        let end = offset
            .checked_add(len)
            .ok_or_else(|| FsError::Invalid("write range overflow".into()))?;
        let needed = end.div_ceil(bs);
        let have = self.state.inodes.get(ino)?.blocks.len() as u64;
        let old_size = self.state.inodes.get(ino)?.size;
        if needed > have {
            let fresh = self.state.pool.alloc_many(needed - have)?;
            self.state
                .inodes
                .get_mut(ino)?
                .blocks
                .extend_from_slice(&fresh);
        }
        // Live mode: zero any gap between the old size and the write start,
        // both in recycled fresh blocks and in the stale tail of existing
        // blocks (a shrink may have left old bytes there), so sparse reads
        // return zeros per POSIX. Replay relies on the zeros the live run
        // already put on the device.
        if data.is_some() && offset > old_size {
            let gap_start_blk = old_size / bs;
            // Resolve the zero segments first, then issue them as one
            // vectored batch so a pipelined device overlaps them.
            let mut segs: Vec<(u64, usize)> = Vec::new();
            let mut max_n = 0usize;
            for bi in gap_start_blk..needed {
                let blk_lo = bi * bs;
                let blk_hi = blk_lo + bs;
                let zero_lo = blk_lo.max(old_size);
                let zero_hi = blk_hi.min(offset);
                if zero_lo < zero_hi {
                    let addr = self.block_addr_of(ino, bi)? + (zero_lo - blk_lo);
                    let n = (zero_hi - zero_lo) as usize;
                    segs.push((addr, n));
                    max_n = max_n.max(n);
                }
            }
            if !segs.is_empty() {
                if self.zero_scratch.len() < max_n {
                    self.zero_scratch.resize(max_n, 0);
                }
                let writes: Vec<(u64, &[u8])> = segs
                    .iter()
                    .map(|&(addr, n)| (addr, &self.zero_scratch[..n]))
                    .collect();
                self.dev
                    .write_vectored_at(&writes)
                    .map_err(|e| FsError::Io(e.to_string()))?;
                if let Some(cow) = self.cow.as_mut() {
                    for &(addr, n) in &segs {
                        cow.note_write(addr, n as u64);
                    }
                }
            }
        }
        if let Some(data) = data {
            debug_assert_eq!(data.len() as u64, len);
            // Split the write at hugeblock boundaries ("we submit NVMe IO
            // requests in hugeblock units", §III-E), then hand the whole
            // batch to the device: a pipelined device keeps `queue_depth`
            // of these block writes in flight instead of one.
            let mut segs: Vec<(u64, u64, u64)> = Vec::new();
            let mut cursor = 0u64;
            while cursor < len {
                let file_off = offset + cursor;
                let bi = file_off / bs;
                let within = file_off % bs;
                let n = (bs - within).min(len - cursor);
                let addr = self.block_addr_of(ino, bi)? + within;
                segs.push((addr, cursor, n));
                cursor += n;
            }
            let writes: Vec<(u64, &[u8])> = segs
                .iter()
                .map(|&(addr, c, n)| (addr, &data[c as usize..(c + n) as usize]))
                .collect();
            self.dev
                .write_vectored_at(&writes)
                .map_err(|e| FsError::Io(e.to_string()))?;
            if let Some(cow) = self.cow.as_mut() {
                for &(addr, _, n) in &segs {
                    cow.note_write(addr, n);
                }
            }
        }
        let node = self.state.inodes.get_mut(ino)?;
        node.size = node.size.max(end);
        node.mtime_op = self.state.op_counter;
        self.state.op_counter += 1;
        Ok(())
    }

    fn block_addr_of(&self, ino: Ino, block_index: u64) -> Result<u64, FsError> {
        let node = self.state.inodes.get(ino)?;
        let blk = *node
            .blocks
            .get(block_index as usize)
            .ok_or_else(|| FsError::Io(format!("block {block_index} unmapped")))?;
        Ok(self.layout.block_addr(blk))
    }

    /// Record whiteouts for freed hugeblocks and hint the device to drop
    /// them. Live mode only — replay re-frees the same blocks but the
    /// device-side extent state was already updated by the original run.
    fn whiteout_blocks(&mut self, released: &[u64], live: bool) {
        if !live || self.cow.is_none() || released.is_empty() {
            return;
        }
        let bs = self.layout.block_size;
        let mut blocks: Vec<u64> = released.to_vec();
        blocks.sort_unstable();
        let mut spans: Vec<(u64, u64)> = Vec::new();
        let mut run_start = blocks[0];
        let mut run_len = 1u64;
        for &b in &blocks[1..] {
            if b == run_start + run_len {
                run_len += 1;
            } else {
                spans.push((self.layout.block_addr(run_start), run_len * bs));
                run_start = b;
                run_len = 1;
            }
        }
        spans.push((self.layout.block_addr(run_start), run_len * bs));
        let Some(cow) = self.cow.as_mut() else {
            return;
        };
        for &(addr, len) in &spans {
            cow.note_whiteout(addr, len);
            // Advisory: devices without extent state ignore the hint.
            let _ = self.dev.discard_at(addr, len);
        }
    }

    /// Append a dirent record to a directory file (allocating as needed).
    fn append_dirent(&mut self, dir: Ino, rec: &Dirent, live: bool) -> Result<(), FsError> {
        // Encode into the reusable buffer (taken out of self so
        // write_extent can borrow &mut self, put back after).
        let mut bytes = std::mem::take(&mut self.enc_scratch);
        bytes.clear();
        rec.encode(&mut bytes);
        let offset = self.state.inodes.get(dir)?.size;
        let len = bytes.len() as u64;
        let res = self.write_extent(dir, offset, len, live.then_some(bytes.as_slice()));
        self.enc_scratch = bytes;
        res?;
        if live {
            self.stats.dirent_bytes += len;
        }
        Ok(())
    }

    fn do_mkdir(&mut self, path: &str, mode: u32, uid: u32, live: bool) -> Result<Ino, FsError> {
        let (pino, name) = self.resolve_parent_dir(path)?;
        if self.lookup(path).is_some() {
            return Err(FsError::AlreadyExists(path.to_string()));
        }
        let op = self.state.op_counter;
        self.state.op_counter += 1;
        let ino = self.state.inodes.alloc(Inode::new_dir(mode, uid, op));
        {
            let _t = self.metrics.btree_op_ns.time();
            self.state.btree.insert(path, ino);
        }
        self.append_dirent(pino, &Dirent::Add { name, ino }, live)?;
        Ok(ino)
    }

    fn do_create(&mut self, path: &str, mode: u32, uid: u32, live: bool) -> Result<Ino, FsError> {
        let (pino, name) = self.resolve_parent_dir(path)?;
        if self.lookup(path).is_some() {
            return Err(FsError::AlreadyExists(path.to_string()));
        }
        let op = self.state.op_counter;
        self.state.op_counter += 1;
        let ino = self.state.inodes.alloc(Inode::new_file(mode, uid, op));
        {
            let _t = self.metrics.btree_op_ns.time();
            self.state.btree.insert(path, ino);
        }
        self.append_dirent(pino, &Dirent::Add { name, ino }, live)?;
        Ok(ino)
    }

    fn do_truncate(&mut self, ino: Ino, size: u64, live: bool) -> Result<(), FsError> {
        let old_size = self.state.inodes.get(ino)?.size;
        if size > old_size {
            // POSIX extension: the new range reads as zeros. Live mode
            // zero-fills freshly allocated (possibly recycled) blocks;
            // replay relies on the original run having written the zeros.
            self.write_extent(ino, size, 0, live.then_some(&[] as &[u8]))?;
            return Ok(());
        }
        let bs = self.layout.block_size;
        let keep = size.div_ceil(bs) as usize;
        let node = self.state.inodes.get_mut(ino)?;
        if node.blocks.len() > keep {
            let released: Vec<u64> = node.blocks.split_off(keep);
            self.state.pool.free_many(&released);
            self.whiteout_blocks(&released, live);
        }
        let node = self.state.inodes.get_mut(ino)?;
        node.size = size;
        node.mtime_op = self.state.op_counter;
        self.state.op_counter += 1;
        self.wal.invalidate(ino);
        Ok(())
    }

    fn do_rename(&mut self, from: &str, to: &str, live: bool) -> Result<(), FsError> {
        if from == to {
            return Ok(());
        }
        if to.starts_with(&format!("{from}/")) {
            return Err(FsError::Invalid(format!("cannot move {from} into itself")));
        }
        let ino = self
            .lookup(from)
            .ok_or_else(|| FsError::NotFound(from.to_string()))?;
        if self.lookup(to).is_some() {
            return Err(FsError::AlreadyExists(to.to_string()));
        }
        let (to_parent, to_name) = self.resolve_parent_dir(to)?;
        let (from_parent, from_name) = self.resolve_parent_dir(from)?;
        // Directory-file updates: tombstone in the old parent, entry in the
        // new one (two device-resident appends, still zero coordination).
        self.append_dirent(from_parent, &Dirent::Remove { name: from_name }, live)?;
        self.append_dirent(to_parent, &Dirent::Add { name: to_name, ino }, live)?;
        // Re-key the B+Tree: the path itself and, for directories, every
        // descendant path.
        self.state.btree.remove(from);
        self.state.btree.insert(to, ino);
        if self.state.inodes.get(ino)?.kind == InodeKind::Dir {
            let prefix = format!("{from}/");
            for (old_path, sub_ino) in self.state.btree.entries_with_prefix(&prefix) {
                let new_path = format!("{to}/{}", &old_path[prefix.len()..]);
                self.state.btree.remove(&old_path);
                self.state.btree.insert(&new_path, sub_ino);
            }
        }
        let node = self.state.inodes.get_mut(ino)?;
        node.mtime_op = self.state.op_counter;
        self.state.op_counter += 1;
        Ok(())
    }

    fn do_unlink(&mut self, path: &str, live: bool) -> Result<(), FsError> {
        let ino = self
            .lookup(path)
            .ok_or_else(|| FsError::NotFound(path.to_string()))?;
        let kind = self.state.inodes.get(ino)?.kind;
        if kind == InodeKind::Dir {
            // rmdir semantics: only empty directories.
            let prefix = format!("{path}/");
            if !self.state.btree.entries_with_prefix(&prefix).is_empty() {
                return Err(FsError::NotEmpty(path.to_string()));
            }
        }
        let (pino, name) = self.resolve_parent_dir(path)?;
        self.append_dirent(pino, &Dirent::Remove { name }, live)?;
        let node = self.state.inodes.remove(ino)?;
        self.state.pool.free_many(&node.blocks);
        self.whiteout_blocks(&node.blocks, live);
        self.state.btree.remove(path);
        self.wal.invalidate(ino);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Logging with snapshot-on-full
    // ------------------------------------------------------------------

    fn log(&mut self, rec: &LogRecord) -> Result<(), FsError> {
        // Clone the Arc so the RAII timer doesn't hold a borrow of self.
        let wal_append_ns = Arc::clone(&self.metrics.wal_append_ns);
        let _t = wal_append_ns.time();
        let before = self.wal.stats();
        let res = match self.wal.append(&mut self.dev, rec) {
            Ok(()) => Ok(()),
            Err(FsError::LogFull) => {
                // Synchronous fallback of the background cleaner: snapshot
                // state, reset the log, retry once.
                self.snapshot_now()?;
                self.wal.append(&mut self.dev, rec)
            }
            Err(e) => Err(e),
        };
        let after = self.wal.stats();
        let appended = after.appended.saturating_sub(before.appended);
        let coalesced = after.coalesced.saturating_sub(before.coalesced);
        self.metrics.wal_appended.add(appended);
        self.metrics.wal_coalesced.add(coalesced);
        if appended > 0 {
            self.metrics
                .flight
                .record(FlightKind::WalAppend, 0, 0, appended, coalesced);
        }
        res
    }

    /// Checkpoint internal DRAM state to the reserved region and reset the
    /// log. Atomic: records are only discarded after the snapshot commits.
    pub fn snapshot_now(&mut self) -> Result<(), FsError> {
        let _span = telemetry::span("microfs", "snapshot").arg("seq", self.snapshot_seq + 1);
        let snapshot_ns = Arc::clone(&self.metrics.snapshot_ns);
        let _t = snapshot_ns.time();
        let seq = self.snapshot_seq + 1;
        let next_gen = self.wal.generation() + 1;
        let bytes =
            snapshot::write_snapshot(&mut self.dev, &self.layout, &self.state, seq, next_gen)?;
        self.snapshot_seq = seq;
        self.wal.reset();
        debug_assert_eq!(self.wal.generation(), next_gen);
        self.stats.snapshots += 1;
        self.stats.snapshot_bytes += bytes;
        Ok(())
    }

    /// The background-cleaner trigger (§III-E): snapshot when nothing is
    /// open and log space runs low. Called from `close`; exposed for tests.
    pub fn maybe_background_snapshot(&mut self) -> Result<bool, FsError> {
        if self.open_count == 0 && self.wal.free_fraction() < self.config.snapshot_threshold {
            self.snapshot_now()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    // ------------------------------------------------------------------
    // Replay (recovery)
    // ------------------------------------------------------------------

    fn replay(&mut self, rec: &LogRecord) -> Result<(), FsError> {
        match rec {
            LogRecord::Mkdir { path, mode, uid } => {
                self.do_mkdir(path, *mode, *uid, false).map(|_| ())
            }
            LogRecord::Create { path, mode, uid } => {
                self.do_create(path, *mode, *uid, false).map(|_| ())
            }
            LogRecord::Write { ino, offset, len } => self.write_extent(*ino, *offset, *len, None),
            LogRecord::Truncate { ino, size } => self.do_truncate(*ino, *size, false),
            LogRecord::Unlink { path } => self.do_unlink(path, false),
            LogRecord::Rename { from, to } => self.do_rename(from, to, false),
            LogRecord::SetMode { ino, mode } => {
                let node = self.state.inodes.get_mut(*ino)?;
                node.mode = *mode;
                node.mtime_op = self.state.op_counter;
                self.state.op_counter += 1;
                Ok(())
            }
        }
    }

    // ------------------------------------------------------------------
    // Public POSIX-ish API
    // ------------------------------------------------------------------

    /// `mkdir(path, mode)`.
    pub fn mkdir(&mut self, path: &str, mode: u32) -> Result<(), FsError> {
        Self::validate_path(path)?;
        let uid = self.config.uid;
        self.do_mkdir(path, mode, uid, true)?;
        self.log(&LogRecord::Mkdir {
            path: path.to_string(),
            mode,
            uid,
        })?;
        self.stats.mkdirs += 1;
        Ok(())
    }

    /// `open(path, flags, mode)` → fd.
    pub fn open(&mut self, path: &str, flags: OpenFlags, mode: u32) -> Result<u32, FsError> {
        Self::validate_path(path)?;
        if path == "/" {
            return Err(FsError::IsADirectory("/".into()));
        }
        let uid = self.config.uid;
        let ino = match self.lookup(path) {
            Some(ino) => {
                if flags.create && flags.excl {
                    return Err(FsError::AlreadyExists(path.to_string()));
                }
                let node = self.state.inodes.get(ino)?;
                if node.kind == InodeKind::Dir {
                    return Err(FsError::IsADirectory(path.to_string()));
                }
                self.check_access(node, flags.write)?;
                if flags.truncate && node.size > 0 {
                    self.do_truncate(ino, 0, true)?;
                    self.log(&LogRecord::Truncate { ino, size: 0 })?;
                }
                ino
            }
            None => {
                if !flags.create {
                    return Err(FsError::NotFound(path.to_string()));
                }
                let ino = self.do_create(path, mode, uid, true)?;
                self.log(&LogRecord::Create {
                    path: path.to_string(),
                    mode,
                    uid,
                })?;
                self.stats.creates += 1;
                ino
            }
        };
        let of = OpenFile { ino, pos: 0, flags };
        let fd = match self.fds.iter().position(Option::is_none) {
            Some(i) => {
                self.fds[i] = Some(of);
                i as u32
            }
            None => {
                self.fds.push(Some(of));
                (self.fds.len() - 1) as u32
            }
        };
        self.open_count += 1;
        Ok(fd)
    }

    /// `creat(path, mode)` — shorthand for create+truncate+write-only.
    pub fn create(&mut self, path: &str, mode: u32) -> Result<u32, FsError> {
        self.open(path, OpenFlags::CREATE_TRUNC, mode)
    }

    fn fd_state(&self, fd: u32) -> Result<&OpenFile, FsError> {
        self.fds
            .get(fd as usize)
            .and_then(|s| s.as_ref())
            .ok_or(FsError::BadFd(fd))
    }

    /// `write(fd, data)` at the current position.
    pub fn write(&mut self, fd: u32, data: &[u8]) -> Result<usize, FsError> {
        let (ino, pos, flags) = {
            let of = self.fd_state(fd)?;
            (of.ino, of.pos, of.flags)
        };
        if !flags.write {
            return Err(FsError::PermissionDenied(format!("fd {fd} not writable")));
        }
        let offset = if flags.append {
            self.state.inodes.get(ino)?.size
        } else {
            pos
        };
        let n = self.pwrite_ino(ino, offset, data)?;
        if let Some(of) = self.fds[fd as usize].as_mut() {
            of.pos = offset + n as u64;
        }
        Ok(n)
    }

    /// `pwrite(fd, data, offset)` — position untouched.
    pub fn pwrite(&mut self, fd: u32, offset: u64, data: &[u8]) -> Result<usize, FsError> {
        let (ino, flags) = {
            let of = self.fd_state(fd)?;
            (of.ino, of.flags)
        };
        if !flags.write {
            return Err(FsError::PermissionDenied(format!("fd {fd} not writable")));
        }
        self.pwrite_ino(ino, offset, data)
    }

    fn pwrite_ino(&mut self, ino: Ino, offset: u64, data: &[u8]) -> Result<usize, FsError> {
        if data.is_empty() {
            return Ok(0);
        }
        let write_ns = Arc::clone(&self.metrics.write_ns);
        let _t = write_ns.time();
        let len = data.len() as u64;
        self.write_extent(ino, offset, len, Some(data))?;
        self.log(&LogRecord::Write { ino, offset, len })?;
        self.stats.writes += 1;
        self.stats.bytes_written += len;
        Ok(data.len())
    }

    /// `read(fd, buf)` at the current position; returns bytes read (short
    /// at EOF).
    pub fn read(&mut self, fd: u32, buf: &mut [u8]) -> Result<usize, FsError> {
        let (ino, pos, flags) = {
            let of = self.fd_state(fd)?;
            (of.ino, of.pos, of.flags)
        };
        if !flags.read {
            return Err(FsError::PermissionDenied(format!("fd {fd} not readable")));
        }
        let n = self.pread_ino(ino, pos, buf)?;
        if let Some(of) = self.fds[fd as usize].as_mut() {
            of.pos = pos + n as u64;
        }
        Ok(n)
    }

    /// `pread(fd, buf, offset)`.
    pub fn pread(&mut self, fd: u32, offset: u64, buf: &mut [u8]) -> Result<usize, FsError> {
        let (ino, flags) = {
            let of = self.fd_state(fd)?;
            (of.ino, of.flags)
        };
        if !flags.read {
            return Err(FsError::PermissionDenied(format!("fd {fd} not readable")));
        }
        self.pread_ino(ino, offset, buf)
    }

    fn pread_ino(&mut self, ino: Ino, offset: u64, buf: &mut [u8]) -> Result<usize, FsError> {
        let _t = self.metrics.read_ns.time();
        let size = self.state.inodes.get(ino)?.size;
        if offset >= size {
            return Ok(0);
        }
        let n = (buf.len() as u64).min(size - offset);
        let bs = self.layout.block_size;
        // Resolve the per-hugeblock segments, carve `buf` into matching
        // sub-buffers, and issue the whole batch at once: a pipelined
        // device (replay reads, checkpoint verification) keeps
        // `queue_depth` block reads in flight.
        let mut segs: Vec<(u64, u64)> = Vec::new();
        let mut cursor = 0u64;
        while cursor < n {
            let file_off = offset + cursor;
            let bi = file_off / bs;
            let within = file_off % bs;
            let take = (bs - within).min(n - cursor);
            let addr = self.block_addr_of(ino, bi)? + within;
            segs.push((addr, take));
            cursor += take;
        }
        let mut reads: Vec<(u64, &mut [u8])> = Vec::with_capacity(segs.len());
        let mut rest = &mut buf[..n as usize];
        for &(addr, take) in &segs {
            let (head, tail) = rest.split_at_mut(take as usize);
            reads.push((addr, head));
            rest = tail;
        }
        self.dev
            .read_vectored_at(&mut reads)
            .map_err(|e| FsError::Io(e.to_string()))?;
        self.stats.reads += 1;
        self.stats.bytes_read += n;
        Ok(n as usize)
    }

    /// `lseek(fd, offset)` (absolute).
    pub fn seek(&mut self, fd: u32, pos: u64) -> Result<(), FsError> {
        self.fd_state(fd)?;
        if let Some(of) = self.fds[fd as usize].as_mut() {
            of.pos = pos;
        }
        Ok(())
    }

    /// `fsync(fd)` — data is already on the device; this flushes the device
    /// write buffer (a capacitor-backed no-op on protected SSDs).
    pub fn fsync(&mut self, fd: u32) -> Result<(), FsError> {
        self.fd_state(fd)?;
        self.dev.flush().map_err(|e| FsError::Io(e.to_string()))
    }

    /// `close(fd)`; may trigger the background snapshot (§III-E).
    pub fn close(&mut self, fd: u32) -> Result<(), FsError> {
        self.fd_state(fd)?;
        self.fds[fd as usize] = None;
        self.open_count -= 1;
        self.maybe_background_snapshot()?;
        Ok(())
    }

    /// `unlink(path)` (files) / `rmdir(path)` (empty directories).
    pub fn unlink(&mut self, path: &str) -> Result<(), FsError> {
        Self::validate_path(path)?;
        if path == "/" {
            return Err(FsError::Invalid("cannot unlink root".into()));
        }
        // Refuse if open.
        if let Some(ino) = self.lookup(path) {
            if self.fds.iter().flatten().any(|of| of.ino == ino) {
                return Err(FsError::Invalid(format!("{path} is open")));
            }
        }
        self.do_unlink(path, true)?;
        self.log(&LogRecord::Unlink {
            path: path.to_string(),
        })?;
        self.stats.unlinks += 1;
        Ok(())
    }

    /// `rename(from, to)` — atomic within this private namespace; fails
    /// with `EEXIST` if `to` exists (checkpointers use fresh names).
    pub fn rename(&mut self, from: &str, to: &str) -> Result<(), FsError> {
        Self::validate_path(from)?;
        Self::validate_path(to)?;
        if from == "/" || to == "/" {
            return Err(FsError::Invalid("cannot rename the root".into()));
        }
        self.do_rename(from, to, true)?;
        if from != to {
            self.log(&LogRecord::Rename {
                from: from.to_string(),
                to: to.to_string(),
            })?;
        }
        Ok(())
    }

    /// `truncate(path, size)` — shrink frees hugeblocks back to the pool;
    /// extension zero-fills.
    pub fn truncate(&mut self, path: &str, size: u64) -> Result<(), FsError> {
        Self::validate_path(path)?;
        let ino = self
            .lookup(path)
            .ok_or_else(|| FsError::NotFound(path.to_string()))?;
        let node = self.state.inodes.get(ino)?;
        if node.kind == InodeKind::Dir {
            return Err(FsError::IsADirectory(path.to_string()));
        }
        self.check_access(node, true)?;
        if node.size == size {
            return Ok(());
        }
        self.do_truncate(ino, size, true)?;
        self.log(&LogRecord::Truncate { ino, size })?;
        Ok(())
    }

    /// `ftruncate(fd, size)`.
    pub fn ftruncate(&mut self, fd: u32, size: u64) -> Result<(), FsError> {
        let (ino, flags) = {
            let of = self.fd_state(fd)?;
            (of.ino, of.flags)
        };
        if !flags.write {
            return Err(FsError::PermissionDenied(format!("fd {fd} not writable")));
        }
        if self.state.inodes.get(ino)?.size == size {
            return Ok(());
        }
        self.do_truncate(ino, size, true)?;
        self.log(&LogRecord::Truncate { ino, size })?;
        Ok(())
    }

    /// `chmod(path, mode)` — only the owner may change permissions.
    pub fn chmod(&mut self, path: &str, mode: u32) -> Result<(), FsError> {
        Self::validate_path(path)?;
        let ino = self
            .lookup(path)
            .ok_or_else(|| FsError::NotFound(path.to_string()))?;
        let node = self.state.inodes.get(ino)?;
        if node.uid != self.config.uid {
            return Err(FsError::PermissionDenied(format!(
                "uid {} cannot chmod inode owned by {}",
                self.config.uid, node.uid
            )));
        }
        let node = self.state.inodes.get_mut(ino)?;
        node.mode = mode;
        node.mtime_op = self.state.op_counter;
        self.state.op_counter += 1;
        self.log(&LogRecord::SetMode { ino, mode })?;
        Ok(())
    }

    /// `access(path, write)` — would this instance's uid be allowed?
    pub fn access(&self, path: &str, write: bool) -> Result<bool, FsError> {
        Self::validate_path(path)?;
        let ino = self
            .lookup(path)
            .ok_or_else(|| FsError::NotFound(path.to_string()))?;
        let node = self.state.inodes.get(ino)?;
        Ok(self.check_access(node, write).is_ok())
    }

    /// `statvfs`-style filesystem totals.
    pub fn statfs(&self) -> FsSpace {
        FsSpace {
            block_size: self.layout.block_size,
            total_blocks: self.state.pool.total(),
            free_blocks: self.state.pool.free_count(),
            live_inodes: self.state.inodes.len() as u64,
            log_free_fraction: self.wal.free_fraction(),
        }
    }

    /// `stat(path)`.
    pub fn stat(&self, path: &str) -> Result<FileStat, FsError> {
        Self::validate_path(path)?;
        let ino = self
            .lookup(path)
            .ok_or_else(|| FsError::NotFound(path.to_string()))?;
        let node = self.state.inodes.get(ino)?;
        Ok(FileStat {
            kind: node.kind,
            size: node.size,
            mode: node.mode,
            uid: node.uid,
        })
    }

    /// `readdir(path)` — immediate children names, sorted.
    pub fn readdir(&self, path: &str) -> Result<Vec<String>, FsError> {
        Self::validate_path(path)?;
        let ino = self
            .lookup(path)
            .ok_or_else(|| FsError::NotFound(path.to_string()))?;
        if self.state.inodes.get(ino)?.kind != InodeKind::Dir {
            return Err(FsError::NotADirectory(path.to_string()));
        }
        let prefix = if path == "/" {
            "/".to_string()
        } else {
            format!("{path}/")
        };
        let mut names: Vec<String> = self
            .state
            .btree
            .entries_with_prefix(&prefix)
            .into_iter()
            .filter_map(|(k, _)| {
                let rest = &k[prefix.len()..];
                (!rest.is_empty() && !rest.contains('/')).then(|| rest.to_string())
            })
            .collect();
        names.sort_unstable();
        Ok(names)
    }

    /// Cross-check: parse the on-device directory file and return its live
    /// entries. Test suites compare this against [`readdir`](Self::readdir)
    /// to prove the device-resident metadata matches the DRAM index.
    pub fn readdir_from_device(&mut self, path: &str) -> Result<Vec<(String, Ino)>, FsError> {
        let ino = self
            .lookup(path)
            .ok_or_else(|| FsError::NotFound(path.to_string()))?;
        let size = self.state.inodes.get(ino)?.size;
        let mut raw = vec![0u8; size as usize];
        self.pread_ino(ino, 0, &mut raw)?;
        let mut live = Dirent::replay_stream(&raw, raw.len())?;
        live.sort();
        Ok(live)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::MemDevice;

    const DEV_SIZE: u64 = 64 << 20;

    fn fresh() -> MicroFs<MemDevice> {
        MicroFs::format(MemDevice::new(DEV_SIZE), FsConfig::default()).unwrap()
    }

    #[test]
    fn create_write_read_roundtrip() {
        let mut fs = fresh();
        let fd = fs.create("/ckpt.dat", 0o644).unwrap();
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        assert_eq!(fs.write(fd, &data).unwrap(), data.len());
        fs.close(fd).unwrap();
        let fd = fs.open("/ckpt.dat", OpenFlags::RDONLY, 0).unwrap();
        let mut buf = vec![0u8; data.len()];
        assert_eq!(fs.read(fd, &mut buf).unwrap(), data.len());
        assert_eq!(buf, data);
        // EOF: next read returns 0.
        let mut tail = [0u8; 16];
        assert_eq!(fs.read(fd, &mut tail).unwrap(), 0);
        fs.close(fd).unwrap();
    }

    #[test]
    fn path_without_slash_is_typed_error_not_panic() {
        // The internal splitter itself refuses slash-less input...
        assert!(matches!(
            MicroFs::<MemDevice>::parent_of("noslash"),
            Err(FsError::Invalid(_))
        ));
        assert!(MicroFs::<MemDevice>::parent_of("/ok").is_ok());
        // ...and every public entry point surfaces it as FsError::Invalid.
        let mut fs = fresh();
        assert!(matches!(
            fs.create("noslash", 0o644),
            Err(FsError::Invalid(_))
        ));
        assert!(matches!(
            fs.mkdir("noslash", 0o755),
            Err(FsError::Invalid(_))
        ));
        assert!(matches!(
            fs.open("noslash", OpenFlags::RDONLY, 0),
            Err(FsError::Invalid(_))
        ));
    }

    #[test]
    fn mkdir_hierarchy_and_readdir() {
        let mut fs = fresh();
        fs.mkdir("/a", 0o755).unwrap();
        fs.mkdir("/a/b", 0o755).unwrap();
        let fd = fs.create("/a/b/f1", 0o644).unwrap();
        fs.close(fd).unwrap();
        let fd = fs.create("/a/b/f2", 0o644).unwrap();
        fs.close(fd).unwrap();
        assert_eq!(fs.readdir("/").unwrap(), vec!["a"]);
        assert_eq!(fs.readdir("/a").unwrap(), vec!["b"]);
        assert_eq!(fs.readdir("/a/b").unwrap(), vec!["f1", "f2"]);
        // Device-resident directory file agrees with the DRAM index.
        let dev_entries = fs.readdir_from_device("/a/b").unwrap();
        assert_eq!(dev_entries.len(), 2);
        assert_eq!(dev_entries[0].0, "f1");
    }

    #[test]
    fn posix_error_cases() {
        let mut fs = fresh();
        assert!(matches!(
            fs.open("/nope", OpenFlags::RDONLY, 0),
            Err(FsError::NotFound(_))
        ));
        assert!(matches!(fs.mkdir("/a/b", 0o755), Err(FsError::NotFound(_))));
        fs.mkdir("/a", 0o755).unwrap();
        assert!(matches!(
            fs.mkdir("/a", 0o755),
            Err(FsError::AlreadyExists(_))
        ));
        let fd = fs.create("/a/f", 0o644).unwrap();
        fs.close(fd).unwrap();
        assert!(matches!(
            fs.mkdir("/a/f/x", 0o755),
            Err(FsError::NotADirectory(_))
        ));
        assert!(matches!(
            fs.open("/a", OpenFlags::RDONLY, 0),
            Err(FsError::IsADirectory(_))
        ));
        assert!(matches!(fs.unlink("/a"), Err(FsError::NotEmpty(_))));
        assert!(matches!(
            fs.read(99, &mut [0u8; 4]),
            Err(FsError::BadFd(99))
        ));
        assert!(matches!(
            fs.open("//x", OpenFlags::RDONLY, 0),
            Err(FsError::Invalid(_))
        ));
    }

    #[test]
    fn unlink_frees_blocks_for_reuse() {
        let mut fs = fresh();
        // Warm the root directory file so its block allocation does not
        // perturb the before/after comparison.
        let fd = fs.create("/warm", 0o644).unwrap();
        fs.close(fd).unwrap();
        fs.unlink("/warm").unwrap();
        let before = fs.free_blocks();
        let fd = fs.create("/big", 0o644).unwrap();
        fs.write(fd, &vec![7u8; 256 << 10]).unwrap();
        fs.close(fd).unwrap();
        assert!(fs.free_blocks() < before);
        fs.unlink("/big").unwrap();
        assert_eq!(fs.free_blocks(), before);
        assert!(matches!(fs.stat("/big"), Err(FsError::NotFound(_))));
    }

    #[test]
    fn unlink_open_file_refused() {
        let mut fs = fresh();
        let fd = fs.create("/f", 0o644).unwrap();
        assert!(matches!(fs.unlink("/f"), Err(FsError::Invalid(_))));
        fs.close(fd).unwrap();
        fs.unlink("/f").unwrap();
    }

    #[test]
    fn truncate_on_reopen() {
        let mut fs = fresh();
        let fd = fs.create("/f", 0o644).unwrap();
        fs.write(fd, b"old contents").unwrap();
        fs.close(fd).unwrap();
        let fd = fs.open("/f", OpenFlags::CREATE_TRUNC, 0o644).unwrap();
        fs.write(fd, b"new").unwrap();
        fs.close(fd).unwrap();
        assert_eq!(fs.stat("/f").unwrap().size, 3);
        let fd = fs.open("/f", OpenFlags::RDONLY, 0).unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(fs.read(fd, &mut buf).unwrap(), 3);
        assert_eq!(&buf[..3], b"new");
    }

    #[test]
    fn append_mode() {
        let mut fs = fresh();
        let fd = fs.open("/log", OpenFlags::APPEND, 0o644).unwrap();
        fs.write(fd, b"one,").unwrap();
        fs.write(fd, b"two").unwrap();
        fs.close(fd).unwrap();
        assert_eq!(fs.stat("/log").unwrap().size, 7);
    }

    #[test]
    fn pwrite_pread_and_sparse_zeroes() {
        let mut fs = fresh();
        let fd = fs
            .open(
                "/sparse",
                OpenFlags {
                    read: true,
                    ..OpenFlags::CREATE_TRUNC
                },
                0o644,
            )
            .unwrap();
        // Write at 100 KiB, leaving a hole.
        fs.pwrite(fd, 100 << 10, b"tail").unwrap();
        assert_eq!(fs.stat("/sparse").unwrap().size, (100 << 10) + 4);
        let mut hole = vec![1u8; 64];
        fs.pread(fd, 50 << 10, &mut hole).unwrap();
        assert_eq!(hole, vec![0u8; 64], "hole must read zeros");
        let mut tail = [0u8; 4];
        fs.pread(fd, 100 << 10, &mut tail).unwrap();
        assert_eq!(&tail, b"tail");
        fs.close(fd).unwrap();
    }

    #[test]
    fn sequential_checkpoint_writes_coalesce() {
        let mut fs = fresh();
        let fd = fs.create("/ckpt", 0o644).unwrap();
        for _ in 0..100 {
            fs.write(fd, &[9u8; 4096]).unwrap();
        }
        fs.close(fd).unwrap();
        let s = fs.stats();
        assert_eq!(s.writes, 100);
        assert_eq!(s.wal.coalesced, 99, "sequential writes must coalesce");
    }

    #[test]
    fn telemetry_observes_wal_btree_io_snapshot_and_replay() {
        // Private registry: exact-value assertions stay isolated from other
        // tests running concurrently in this process.
        let t = Telemetry::new();
        let config = FsConfig {
            telemetry: t.clone(),
            ..FsConfig::default()
        };
        let mut fs = MicroFs::format(MemDevice::new(DEV_SIZE), config.clone()).unwrap();
        fs.mkdir("/d", 0o755).unwrap();
        let fd = fs
            .open(
                "/d/f",
                OpenFlags {
                    read: true,
                    ..OpenFlags::CREATE_TRUNC
                },
                0o644,
            )
            .unwrap();
        for _ in 0..10 {
            fs.write(fd, &[7u8; 4096]).unwrap();
        }
        let mut buf = [0u8; 4096];
        fs.pread(fd, 0, &mut buf).unwrap();
        fs.close(fd).unwrap();
        fs.snapshot_now().unwrap();

        let snap = t.snapshot();
        let wal = fs.stats().wal;
        assert_eq!(snap.counter("microfs.wal_appended"), wal.appended);
        assert_eq!(snap.counter("microfs.wal_coalesced"), wal.coalesced);
        assert!(wal.coalesced >= 9, "sequential writes should coalesce");
        // 12 log() calls: mkdir, create, 10 writes.
        assert_eq!(snap.histogram("microfs.wal_append_ns").unwrap().count, 12);
        assert_eq!(snap.histogram("microfs.write_ns").unwrap().count, 10);
        assert_eq!(snap.histogram("microfs.read_ns").unwrap().count, 1);
        assert_eq!(snap.histogram("microfs.snapshot_ns").unwrap().count, 1);
        // Lookups (mkdir/create existence checks, opens, stats) + inserts.
        assert!(snap.histogram("microfs.btree_op_ns").unwrap().count >= 4);

        // Crash + remount replays through the same registry.
        let dev = fs.into_device();
        let fs2 = MicroFs::mount(dev, config).unwrap();
        let snap = t.snapshot();
        assert_eq!(snap.histogram("microfs.replay_ns").unwrap().count, 1);
        assert_eq!(
            snap.counter("microfs.replay_records"),
            fs2.stats().replayed_records
        );
    }

    #[test]
    fn permission_checks() {
        let mut fs = fresh();
        let fd = fs.create("/mine", 0o600).unwrap();
        fs.close(fd).unwrap();
        // A different uid mounts... simulate by changing config uid through
        // a fresh open from another instance is complex; instead check the
        // read/write flag enforcement on fds.
        let fd = fs.open("/mine", OpenFlags::RDONLY, 0).unwrap();
        assert!(matches!(
            fs.write(fd, b"x"),
            Err(FsError::PermissionDenied(_))
        ));
        fs.close(fd).unwrap();
        let fd = fs
            .open(
                "/mine",
                OpenFlags {
                    read: false,
                    write: true,
                    create: false,
                    truncate: false,
                    append: false,
                    excl: false,
                },
                0,
            )
            .unwrap();
        assert!(matches!(
            fs.read(fd, &mut [0u8; 1]),
            Err(FsError::PermissionDenied(_))
        ));
        fs.close(fd).unwrap();
    }

    #[test]
    fn crash_recovery_preserves_everything() {
        // The core claim: mount() after a crash reproduces metadata AND
        // file bytes exactly, replaying parameters-only log records.
        let mut fs = fresh();
        fs.mkdir("/ckpt", 0o755).unwrap();
        let mut payloads = Vec::new();
        for i in 0..5 {
            let path = format!("/ckpt/rank_{i}.dat");
            let fd = fs.create(&path, 0o644).unwrap();
            let data: Vec<u8> = (0..50_000 + i * 1000)
                .map(|b| ((b * 31 + i) % 251) as u8)
                .collect();
            fs.write(fd, &data).unwrap();
            fs.close(fd).unwrap();
            payloads.push((path, data));
        }
        fs.unlink("/ckpt/rank_3.dat").unwrap();
        payloads.remove(3);
        // CRASH: drop all volatile state, keep the device.
        let dev = fs.into_device();
        let mut fs = MicroFs::mount(dev, FsConfig::default()).unwrap();
        assert!(fs.stats().replayed_records > 0);
        assert_eq!(fs.readdir("/ckpt").unwrap().len(), 4);
        for (path, data) in &payloads {
            assert_eq!(fs.stat(path).unwrap().size, data.len() as u64);
            let fd = fs.open(path, OpenFlags::RDONLY, 0).unwrap();
            let mut buf = vec![0u8; data.len()];
            fs.read(fd, &mut buf).unwrap();
            assert_eq!(&buf, data, "recovered bytes differ for {path}");
            fs.close(fd).unwrap();
        }
        assert!(matches!(
            fs.stat("/ckpt/rank_3.dat"),
            Err(FsError::NotFound(_))
        ));
    }

    #[test]
    fn recovery_after_snapshot_plus_tail_records() {
        let mut fs = fresh();
        let fd = fs.create("/before", 0o644).unwrap();
        fs.write(fd, &[1u8; 10_000]).unwrap();
        fs.close(fd).unwrap();
        fs.snapshot_now().unwrap();
        let fd = fs.create("/after", 0o644).unwrap();
        fs.write(fd, &[2u8; 20_000]).unwrap();
        fs.close(fd).unwrap();
        let dev = fs.into_device();
        let mut fs = MicroFs::mount(dev, FsConfig::default()).unwrap();
        assert_eq!(fs.stat("/before").unwrap().size, 10_000);
        assert_eq!(fs.stat("/after").unwrap().size, 20_000);
        let fd = fs.open("/after", OpenFlags::RDONLY, 0).unwrap();
        let mut buf = vec![0u8; 20_000];
        fs.read(fd, &mut buf).unwrap();
        assert_eq!(buf, vec![2u8; 20_000]);
    }

    #[test]
    fn background_snapshot_triggers_on_close_when_log_low() {
        let config = FsConfig {
            snapshot_threshold: 0.999,
            ..FsConfig::default()
        };
        let mut fs = MicroFs::format(MemDevice::new(DEV_SIZE), config.clone()).unwrap();
        let snaps0 = fs.stats().snapshots;
        // Hold one file open while filling the log past the threshold with
        // creates: no snapshot may fire while a file is open.
        let held = fs.create("/held", 0o644).unwrap();
        for i in 0..200 {
            let fd = fs.create(&format!("/f{i}"), 0o644).unwrap();
            fs.close(fd).unwrap();
        }
        assert_eq!(
            fs.stats().snapshots,
            snaps0,
            "snapshot must not fire while files are open"
        );
        fs.close(held).unwrap();
        assert!(
            fs.stats().snapshots > snaps0,
            "last close with a low log must trigger the background snapshot"
        );
        // Consistency after the snapshot-driven reset.
        let dev = fs.into_device();
        let fs = MicroFs::mount(dev, config).unwrap();
        assert_eq!(fs.readdir("/").unwrap().len(), 201);
    }

    #[test]
    fn log_full_triggers_inline_snapshot_and_continues() {
        // Tiny device -> tiny log; hammer metadata ops until the log wraps.
        let mut fs = MicroFs::format(MemDevice::new(16 << 20), FsConfig::default()).unwrap();
        for i in 0..3000 {
            let p = format!("/f{i}");
            let fd = fs.create(&p, 0o644).unwrap();
            fs.close(fd).unwrap();
            fs.unlink(&p).unwrap();
        }
        assert!(fs.stats().snapshots >= 1);
        // Still consistent after all that churn.
        let dev = fs.into_device();
        let fs = MicroFs::mount(dev, FsConfig::default()).unwrap();
        assert_eq!(fs.readdir("/").unwrap().len(), 0);
    }

    #[test]
    fn mount_rejects_mismatched_block_size() {
        let fs = fresh();
        let dev = fs.into_device();
        let bad = FsConfig {
            block_size: 64 << 10,
            ..FsConfig::default()
        };
        assert!(matches!(MicroFs::mount(dev, bad), Err(FsError::Invalid(_))));
    }

    #[test]
    fn rename_file_and_directory_with_recovery() {
        let mut fs = fresh();
        fs.mkdir("/a", 0o755).unwrap();
        fs.mkdir("/b", 0o755).unwrap();
        let fd = fs.create("/a/tmp.dat", 0o644).unwrap();
        fs.write(fd, b"payload").unwrap();
        fs.close(fd).unwrap();
        // File rename across directories.
        fs.rename("/a/tmp.dat", "/b/final.dat").unwrap();
        assert!(fs.stat("/a/tmp.dat").is_err());
        assert_eq!(fs.stat("/b/final.dat").unwrap().size, 7);
        // Directory rename re-keys descendants.
        let fd = fs.create("/b/deep.dat", 0o644).unwrap();
        fs.close(fd).unwrap();
        fs.rename("/b", "/c").unwrap();
        assert_eq!(fs.readdir("/c").unwrap(), vec!["deep.dat", "final.dat"]);
        assert!(fs.stat("/b/final.dat").is_err());
        // Device-resident directory files agree after the moves.
        assert_eq!(fs.readdir_from_device("/c").unwrap().len(), 2);
        assert_eq!(fs.readdir_from_device("/").unwrap().len(), 2); // a, c
                                                                   // All of it survives crash + replay.
        let dev = fs.into_device();
        let mut fs = MicroFs::mount(dev, FsConfig::default()).unwrap();
        assert_eq!(fs.readdir("/c").unwrap(), vec!["deep.dat", "final.dat"]);
        let fd = fs.open("/c/final.dat", OpenFlags::RDONLY, 0).unwrap();
        let mut buf = [0u8; 7];
        fs.read(fd, &mut buf).unwrap();
        assert_eq!(&buf, b"payload");
    }

    #[test]
    fn rename_error_cases() {
        let mut fs = fresh();
        fs.mkdir("/d", 0o755).unwrap();
        let fd = fs.create("/f1", 0o644).unwrap();
        fs.close(fd).unwrap();
        let fd = fs.create("/f2", 0o644).unwrap();
        fs.close(fd).unwrap();
        assert!(matches!(
            fs.rename("/nope", "/x"),
            Err(FsError::NotFound(_))
        ));
        assert!(matches!(
            fs.rename("/f1", "/f2"),
            Err(FsError::AlreadyExists(_))
        ));
        assert!(matches!(
            fs.rename("/d", "/d/sub"),
            Err(FsError::Invalid(_))
        ));
        assert!(matches!(fs.rename("/", "/r"), Err(FsError::Invalid(_))));
        // Self-rename is a no-op.
        fs.rename("/f1", "/f1").unwrap();
        assert!(fs.stat("/f1").is_ok());
    }

    #[test]
    fn truncate_shrink_extend_and_recovery() {
        let mut fs = fresh();
        let fd = fs.create("/t", 0o644).unwrap();
        fs.write(fd, &[7u8; 100_000]).unwrap();
        fs.close(fd).unwrap();
        let free_small = fs.free_blocks();
        // Shrink returns blocks to the pool.
        fs.truncate("/t", 10_000).unwrap();
        assert!(fs.free_blocks() > free_small);
        assert_eq!(fs.stat("/t").unwrap().size, 10_000);
        // Extension zero-fills.
        fs.truncate("/t", 50_000).unwrap();
        assert_eq!(fs.stat("/t").unwrap().size, 50_000);
        let fd = fs.open("/t", OpenFlags::RDONLY, 0).unwrap();
        let mut buf = vec![1u8; 50_000];
        assert_eq!(fs.read(fd, &mut buf).unwrap(), 50_000);
        assert!(buf[..10_000].iter().all(|&b| b == 7));
        assert!(
            buf[10_000..].iter().all(|&b| b == 0),
            "extension must read zeros"
        );
        fs.close(fd).unwrap();
        // Replay reproduces both directions.
        let dev = fs.into_device();
        let mut fs = MicroFs::mount(dev, FsConfig::default()).unwrap();
        assert_eq!(fs.stat("/t").unwrap().size, 50_000);
        let fd = fs.open("/t", OpenFlags::RDONLY, 0).unwrap();
        let mut buf = vec![1u8; 50_000];
        fs.read(fd, &mut buf).unwrap();
        assert!(buf[..10_000].iter().all(|&b| b == 7));
        assert!(buf[10_000..].iter().all(|&b| b == 0));
    }

    #[test]
    fn ftruncate_requires_writable_fd() {
        let mut fs = fresh();
        let fd = fs.create("/t", 0o644).unwrap();
        fs.write(fd, &[1u8; 1000]).unwrap();
        fs.ftruncate(fd, 10).unwrap();
        fs.close(fd).unwrap();
        assert_eq!(fs.stat("/t").unwrap().size, 10);
        let fd = fs.open("/t", OpenFlags::RDONLY, 0).unwrap();
        assert!(matches!(
            fs.ftruncate(fd, 0),
            Err(FsError::PermissionDenied(_))
        ));
        fs.close(fd).unwrap();
        assert!(matches!(
            fs.truncate("/missing", 0),
            Err(FsError::NotFound(_))
        ));
        fs.mkdir("/dir", 0o755).unwrap();
        assert!(matches!(
            fs.truncate("/dir", 0),
            Err(FsError::IsADirectory(_))
        ));
    }

    #[test]
    fn o_excl_rejects_existing() {
        let mut fs = fresh();
        let fd = fs.open("/x", OpenFlags::CREATE_EXCL, 0o644).unwrap();
        fs.close(fd).unwrap();
        assert!(matches!(
            fs.open("/x", OpenFlags::CREATE_EXCL, 0o644),
            Err(FsError::AlreadyExists(_))
        ));
        // Without excl, reopening is fine.
        let fd = fs.open("/x", OpenFlags::RDWR, 0).unwrap();
        fs.close(fd).unwrap();
    }

    #[test]
    fn statfs_reports_space_and_log() {
        let mut fs = fresh();
        let s0 = fs.statfs();
        assert_eq!(s0.block_size, 32 << 10);
        assert_eq!(s0.free_blocks, s0.total_blocks);
        assert_eq!(s0.live_inodes, 1); // root
        let fd = fs.create("/f", 0o644).unwrap();
        fs.write(fd, &[0u8; 128 << 10]).unwrap();
        fs.close(fd).unwrap();
        let s1 = fs.statfs();
        assert!(s1.free_blocks < s0.free_blocks);
        assert_eq!(s1.live_inodes, 2);
        assert!(s1.log_free_fraction < 1.0);
    }

    #[test]
    fn atomic_checkpoint_publish_pattern() {
        // The classic C/R idiom the paper's semantics enable: write to a
        // temp name, fsync, rename into place. A crash at any point leaves
        // either the old or the new checkpoint, never a torn one.
        let mut fs = fresh();
        let publish = |fs: &mut MicroFs<MemDevice>, gen: u8| {
            let fd = fs.create("/ckpt.tmp", 0o644).unwrap();
            fs.write(fd, &[gen; 64 << 10]).unwrap();
            fs.fsync(fd).unwrap();
            fs.close(fd).unwrap();
            if fs.stat("/ckpt.dat").is_ok() {
                fs.unlink("/ckpt.dat").unwrap();
            }
            fs.rename("/ckpt.tmp", "/ckpt.dat").unwrap();
        };
        publish(&mut fs, 1);
        publish(&mut fs, 2);
        // Crash immediately after the second publish.
        let dev = fs.into_device();
        let mut fs = MicroFs::mount(dev, FsConfig::default()).unwrap();
        let fd = fs.open("/ckpt.dat", OpenFlags::RDONLY, 0).unwrap();
        let mut buf = vec![0u8; 64 << 10];
        fs.read(fd, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 2));
        assert!(fs.stat("/ckpt.tmp").is_err());
    }

    #[test]
    fn chmod_persists_and_replays() {
        let mut fs = fresh();
        let fd = fs.create("/locked", 0o644).unwrap();
        fs.close(fd).unwrap();
        assert!(fs.access("/locked", true).unwrap());
        fs.chmod("/locked", 0o400).unwrap();
        assert_eq!(fs.stat("/locked").unwrap().mode, 0o400);
        // Owner still passes the uid short-circuit; bits recorded anyway.
        let dev = fs.into_device();
        let fs = MicroFs::mount(dev, FsConfig::default()).unwrap();
        assert_eq!(fs.stat("/locked").unwrap().mode, 0o400, "chmod must replay");
    }

    #[test]
    fn foreign_uid_cannot_chmod_or_write() {
        // Format as uid 1000, then remount the partition as uid 2000.
        let mut fs = fresh();
        let fd = fs.create("/private", 0o600).unwrap();
        fs.close(fd).unwrap();
        let fd = fs.create("/shared", 0o666).unwrap();
        fs.close(fd).unwrap();
        let dev = fs.into_device();
        let other = FsConfig {
            uid: 2000,
            ..FsConfig::default()
        };
        let mut fs = MicroFs::mount(dev, other).unwrap();
        assert!(matches!(
            fs.chmod("/private", 0o777),
            Err(FsError::PermissionDenied(_))
        ));
        assert!(!fs.access("/private", false).unwrap());
        assert!(fs.access("/shared", true).unwrap());
        assert!(matches!(
            fs.open("/private", OpenFlags::RDONLY, 0),
            Err(FsError::PermissionDenied(_))
        ));
        let fd = fs.open("/shared", OpenFlags::RDWR, 0).unwrap();
        fs.write(fd, b"ok").unwrap();
        fs.close(fd).unwrap();
    }

    #[test]
    fn stats_metadata_accounting() {
        let mut fs = fresh();
        let fd = fs.create("/f", 0o644).unwrap();
        fs.write(fd, &[0u8; 100_000]).unwrap();
        fs.close(fd).unwrap();
        let s = fs.stats();
        assert_eq!(s.creates, 1);
        assert!(s.bytes_written == 100_000);
        assert!(s.dirent_bytes > 0);
        assert!(s.metadata_device_bytes() > 0);
        assert!(fs.dram_footprint() > 0);
    }
}

#[cfg(test)]
mod fd_semantics_tests {
    use super::*;
    use crate::block::MemDevice;

    fn fresh() -> MicroFs<MemDevice> {
        MicroFs::format(MemDevice::new(64 << 20), FsConfig::default()).unwrap()
    }

    #[test]
    fn independent_fd_positions_on_one_file() {
        let mut fs = fresh();
        let w = fs.create("/f", 0o644).unwrap();
        fs.write(w, b"abcdefghij").unwrap();
        fs.close(w).unwrap();
        let a = fs.open("/f", OpenFlags::RDONLY, 0).unwrap();
        let b = fs.open("/f", OpenFlags::RDONLY, 0).unwrap();
        let mut b1 = [0u8; 4];
        let mut b2 = [0u8; 4];
        fs.read(a, &mut b1).unwrap();
        fs.read(b, &mut b2).unwrap();
        // Each descriptor carries its own position.
        assert_eq!(&b1, b"abcd");
        assert_eq!(&b2, b"abcd");
        fs.read(a, &mut b1).unwrap();
        assert_eq!(&b1, b"efgh");
        fs.seek(b, 8).unwrap();
        let mut tail = [0u8; 2];
        assert_eq!(fs.read(b, &mut tail).unwrap(), 2);
        assert_eq!(&tail, b"ij");
        fs.close(a).unwrap();
        fs.close(b).unwrap();
    }

    #[test]
    fn fd_numbers_are_reused_after_close() {
        let mut fs = fresh();
        let a = fs.create("/a", 0o644).unwrap();
        fs.close(a).unwrap();
        let b = fs.create("/b", 0o644).unwrap();
        assert_eq!(a, b, "lowest free descriptor is reused, like POSIX");
        // The old descriptor no longer reaches /a.
        fs.write(b, b"b-data").unwrap();
        fs.close(b).unwrap();
        assert_eq!(fs.stat("/a").unwrap().size, 0);
        assert_eq!(fs.stat("/b").unwrap().size, 6);
    }

    #[test]
    fn writes_via_two_fds_interleave_correctly() {
        let mut fs = fresh();
        let a = fs.open("/f", OpenFlags::CREATE_TRUNC, 0o644).unwrap();
        let b = fs
            .open(
                "/f",
                OpenFlags {
                    read: true,
                    ..OpenFlags::RDWR
                },
                0,
            )
            .unwrap();
        fs.write(a, b"XXXX").unwrap();
        fs.pwrite(b, 2, b"yy").unwrap();
        fs.close(a).unwrap();
        let mut buf = [0u8; 4];
        fs.pread(b, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"XXyy");
        fs.close(b).unwrap();
    }

    #[test]
    fn readdir_lists_dirs_and_files_sorted() {
        let mut fs = fresh();
        fs.mkdir("/z", 0o755).unwrap();
        fs.mkdir("/a", 0o755).unwrap();
        let fd = fs.create("/m.dat", 0o644).unwrap();
        fs.close(fd).unwrap();
        assert_eq!(fs.readdir("/").unwrap(), vec!["a", "m.dat", "z"]);
        // Prefix collisions don't leak: "/a0" is not a child of "/a".
        let fd = fs.create("/a0", 0o644).unwrap();
        fs.close(fd).unwrap();
        assert_eq!(fs.readdir("/a").unwrap(), Vec::<String>::new());
    }
}
