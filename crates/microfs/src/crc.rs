//! CRC-32 (IEEE 802.3) — integrity check for log records, snapshots, and
//! the superblock. Implemented in-tree (table-driven, reflected polynomial
//! 0xEDB88320) to keep the workspace within the approved dependency set.

/// Lazily built 256-entry lookup table.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    })
}

/// CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Streaming update: feed `state` (start from `0xFFFF_FFFF`, finish by
/// XOR-ing with `0xFFFF_FFFF`).
pub fn crc32_update(state: u32, data: &[u8]) -> u32 {
    let t = table();
    let mut c = state;
    for &b in data {
        c = t[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

/// Multiply the GF(2) matrix `mat` by the bit-vector `vec`.
fn gf2_matrix_times(mat: &[u32; 32], mut vec: u32) -> u32 {
    let mut sum = 0;
    let mut i = 0;
    while vec != 0 {
        if vec & 1 != 0 {
            sum ^= mat[i];
        }
        vec >>= 1;
        i += 1;
    }
    sum
}

/// Square the GF(2) operator `mat` into `sq` (applies `mat` twice).
fn gf2_matrix_square(sq: &mut [u32; 32], mat: &[u32; 32]) {
    for n in 0..32 {
        sq[n] = gf2_matrix_times(mat, mat[n]);
    }
}

/// Advance a CRC `state` (the streaming form of [`crc32_update`]) through
/// `len` zero bytes in O(log len) — the zlib `crc32_combine` trick: the
/// per-zero-byte update is linear over GF(2), so it is applied as a 32×32
/// bit-matrix raised to the `len`-th power by repeated squaring.
pub fn crc32_shift(state: u32, mut len: u64) -> u32 {
    if len == 0 || state == 0 {
        return state;
    }
    // Operator for one zero *bit* of the reflected polynomial.
    let mut odd = [0u32; 32];
    odd[0] = 0xEDB8_8320;
    for (n, row) in odd.iter_mut().enumerate().skip(1) {
        *row = 1 << (n - 1);
    }
    let mut even = [0u32; 32];
    gf2_matrix_square(&mut even, &odd); // 2 bits
    gf2_matrix_square(&mut odd, &even); // 4 bits
    let mut crc = state;
    // Each squaring doubles the zero-run the operator applies, starting at
    // one byte; consume `len` a bit at a time.
    loop {
        gf2_matrix_square(&mut even, &odd);
        if len & 1 != 0 {
            crc = gf2_matrix_times(&even, crc);
        }
        len >>= 1;
        if len == 0 {
            break;
        }
        gf2_matrix_square(&mut odd, &even);
        if len & 1 != 0 {
            crc = gf2_matrix_times(&odd, crc);
        }
        len >>= 1;
        if len == 0 {
            break;
        }
    }
    crc
}

/// CRC-32 of the concatenation `a ‖ b` from the two pieces' checksums:
/// `crc32(a ‖ b) = crc32_shift(crc32(a), len_b) ^ crc32(b)`. Lets callers
/// checksum each payload once and still derive checksums of merged
/// extents without re-reading the bytes.
pub fn crc32_concat(crc_a: u32, crc_b: u32, len_b: u64) -> u32 {
    crc32_shift(crc_a, len_b) ^ crc_b
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 check values.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"metadata provenance log record";
        let split = 10;
        let mut st = 0xFFFF_FFFFu32;
        st = crc32_update(st, &data[..split]);
        st = crc32_update(st, &data[split..]);
        assert_eq!(st ^ 0xFFFF_FFFF, crc32(data));
    }

    #[test]
    fn shift_matches_feeding_zero_bytes() {
        for len in [0u64, 1, 2, 7, 8, 63, 64, 255, 4096] {
            let state = crc32_update(0xFFFF_FFFF, b"seed bytes");
            let zeros = vec![0u8; len as usize];
            assert_eq!(
                crc32_shift(state, len),
                crc32_update(state, &zeros),
                "len {len}"
            );
        }
    }

    #[test]
    fn concat_matches_one_shot() {
        let a = b"first extent contents";
        let b = b"and the adjacent one";
        let mut joined = a.to_vec();
        joined.extend_from_slice(b);
        assert_eq!(
            crc32_concat(crc32(a), crc32(b), b.len() as u64),
            crc32(&joined)
        );
    }

    proptest! {
        /// Shifting a state through `n` zero bytes equals feeding them.
        #[test]
        fn prop_shift_equals_zero_feed(
            seed in proptest::collection::vec(any::<u8>(), 0..64),
            len in 0u64..2048,
        ) {
            let state = crc32_update(0xFFFF_FFFF, &seed);
            let zeros = vec![0u8; len as usize];
            prop_assert_eq!(crc32_shift(state, len), crc32_update(state, &zeros));
        }

        /// Concatenation identity over arbitrary splits.
        #[test]
        fn prop_concat_equals_one_shot(
            a in proptest::collection::vec(any::<u8>(), 0..512),
            b in proptest::collection::vec(any::<u8>(), 0..512),
        ) {
            let mut joined = a.clone();
            joined.extend_from_slice(&b);
            prop_assert_eq!(
                crc32_concat(crc32(&a), crc32(&b), b.len() as u64),
                crc32(&joined)
            );
        }

        /// Any single-bit flip changes the checksum.
        #[test]
        fn prop_detects_bit_flips(
            mut data in proptest::collection::vec(any::<u8>(), 1..256),
            bit in 0usize..8,
            idx_seed in any::<u64>(),
        ) {
            let original = crc32(&data);
            let idx = (idx_seed as usize) % data.len();
            data[idx] ^= 1 << bit;
            prop_assert_ne!(crc32(&data), original);
        }
    }
}
