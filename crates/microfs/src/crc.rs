//! CRC-32 (IEEE 802.3) — integrity check for log records, snapshots, and
//! the superblock. Implemented in-tree (table-driven, reflected polynomial
//! 0xEDB88320) to keep the workspace within the approved dependency set.

/// Lazily built 256-entry lookup table.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    })
}

/// CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Streaming update: feed `state` (start from `0xFFFF_FFFF`, finish by
/// XOR-ing with `0xFFFF_FFFF`).
pub fn crc32_update(state: u32, data: &[u8]) -> u32 {
    let t = table();
    let mut c = state;
    for &b in data {
        c = t[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 check values.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"metadata provenance log record";
        let split = 10;
        let mut st = 0xFFFF_FFFFu32;
        st = crc32_update(st, &data[..split]);
        st = crc32_update(st, &data[split..]);
        assert_eq!(st ^ 0xFFFF_FFFF, crc32(data));
    }

    proptest! {
        /// Any single-bit flip changes the checksum.
        #[test]
        fn prop_detects_bit_flips(
            mut data in proptest::collection::vec(any::<u8>(), 1..256),
            bit in 0usize..8,
            idx_seed in any::<u64>(),
        ) {
            let original = crc32(&data);
            let idx = (idx_seed as usize) % data.len();
            data[idx] ^= 1 << bit;
            prop_assert_ne!(crc32(&data), original);
        }
    }
}
