//! Exhaustive crash-point sweep.
//!
//! A recording device journals every device write a workload performs.
//! For each prefix of that write sequence we materialize "the media at the
//! moment of the crash" and require that the partition (a) mounts and (b)
//! passes the independent `fsck` witness. This is the strongest form of
//! the paper's §III-E claim — "metadata will always be consistent, even
//! with unexpected failures" — checked not just at operation boundaries
//! but **between every two device writes**.

use microfs::block::{BlockDevice, DevError, IoCounters};
use microfs::{FsConfig, MemDevice, MicroFs, OpenFlags};

/// Records every write so any crash prefix can be replayed onto fresh
/// media.
struct RecordingDevice {
    inner: MemDevice,
    log: Vec<(u64, Vec<u8>)>,
}

impl RecordingDevice {
    fn new(size: u64) -> Self {
        RecordingDevice {
            inner: MemDevice::new(size),
            log: Vec::new(),
        }
    }

    /// Media contents as of write `k` (exclusive).
    fn media_at(&self, k: usize, size: u64) -> MemDevice {
        let mut m = MemDevice::new(size);
        for (off, data) in &self.log[..k] {
            m.write_at(*off, data).unwrap();
        }
        m
    }
}

impl BlockDevice for RecordingDevice {
    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<(), DevError> {
        self.log.push((offset, data.to_vec()));
        self.inner.write_at(offset, data)
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<(), DevError> {
        self.inner.read_at(offset, buf)
    }

    fn flush(&mut self) -> Result<(), DevError> {
        self.inner.flush()
    }

    fn size(&self) -> u64 {
        self.inner.size()
    }

    fn counters(&self) -> IoCounters {
        self.inner.counters()
    }
}

const DEV_SIZE: u64 = 48 << 20;

/// Drive a representative workload and return the recording.
fn run_workload() -> RecordingDevice {
    let dev = RecordingDevice::new(DEV_SIZE);
    let mut fs = MicroFs::format(dev, FsConfig::default()).unwrap();
    fs.mkdir("/ckpt", 0o755).unwrap();
    for i in 0..3 {
        let path = format!("/ckpt/rank_{i}.dat");
        let fd = fs.create(&path, 0o644).unwrap();
        for chunk in 0..4 {
            fs.write(fd, &vec![(i * 16 + chunk) as u8; 24 << 10])
                .unwrap();
        }
        fs.close(fd).unwrap();
    }
    fs.unlink("/ckpt/rank_1.dat").unwrap();
    fs.rename("/ckpt/rank_2.dat", "/ckpt/final.dat").unwrap();
    fs.truncate("/ckpt/final.dat", 30 << 10).unwrap();
    fs.snapshot_now().unwrap();
    let fd = fs.create("/ckpt/post_snap.dat", 0o644).unwrap();
    fs.write(fd, &[0xEE; 50 << 10]).unwrap();
    fs.close(fd).unwrap();
    fs.into_device()
}

#[test]
fn every_crash_point_mounts_and_fscks_clean() {
    let rec = run_workload();
    let total = rec.log.len();
    assert!(
        total > 50,
        "workload should produce many device writes, got {total}"
    );
    // The partition is mountable only once the initial snapshot header is
    // on media; find that point (first prefix that mounts) and require
    // every later prefix to be clean too.
    let mut first_mountable = None;
    for k in 0..=total {
        let media = rec.media_at(k, DEV_SIZE);
        let mut for_fsck = media.clone();
        match MicroFs::mount(media, FsConfig::default()) {
            Ok(_) => {
                if first_mountable.is_none() {
                    first_mountable = Some(k);
                }
                let report = microfs::fsck(&mut for_fsck);
                assert!(
                    report.is_clean(),
                    "crash after write {k}/{total}: {:?}",
                    report.issues
                );
            }
            Err(e) => {
                assert!(
                    first_mountable.is_none(),
                    "crash after write {k}/{total}: partition regressed to unmountable: {e}"
                );
            }
        }
    }
    let first = first_mountable.expect("the completed partition must mount");
    assert!(
        first <= 10,
        "format should make the partition mountable within its first writes, got {first}"
    );
}

#[test]
fn completed_data_survives_at_every_later_crash_point() {
    // Stronger than consistency: once a file's final write has hit the
    // device AND its log record is durable, every later crash point must
    // serve its exact bytes.
    let rec = run_workload();
    let total = rec.log.len();
    let expect: Vec<u8> = vec![0xEE; 50 << 10];
    // Find the first crash point where /ckpt/post_snap.dat is fully
    // present, then verify it at every later point.
    let mut seen_at = None;
    for k in 0..=total {
        let media = rec.media_at(k, DEV_SIZE);
        let Ok(mut fs) = MicroFs::mount(media, FsConfig::default()) else {
            continue;
        };
        let Ok(st) = fs.stat("/ckpt/post_snap.dat") else {
            assert!(seen_at.is_none(), "file vanished at crash point {k}");
            continue;
        };
        if st.size == expect.len() as u64 {
            let fd = fs
                .open("/ckpt/post_snap.dat", OpenFlags::RDONLY, 0)
                .unwrap();
            let mut buf = vec![0u8; expect.len()];
            let mut got = 0;
            while got < buf.len() {
                let n = fs.read(fd, &mut buf[got..]).unwrap();
                if n == 0 {
                    break;
                }
                got += n;
            }
            assert_eq!(buf, expect, "bytes wrong at crash point {k}");
            if seen_at.is_none() {
                seen_at = Some(k);
            }
        }
    }
    // Durability lands exactly when the write's log record hits the
    // device — which for this workload's final file is its last append.
    let seen = seen_at.expect("the file must become durable by the end");
    assert!(seen <= total);
    // And from that point on it never regressed (checked in the loop).
}
