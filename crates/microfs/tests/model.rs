//! Model-based property test: arbitrary operation sequences against a
//! reference model, with crash/remount injected between operations.
//!
//! The model is the obvious thing — a map of paths to byte vectors plus a
//! set of directories. After every operation the two must agree on
//! existence, sizes, and contents; after every injected crash+mount
//! (dropping all volatile state and replaying the log) they must *still*
//! agree, which is the paper's §III-E consistency claim exercised under
//! adversarial schedules.

use std::collections::{BTreeMap, BTreeSet};

use microfs::{FsConfig, FsError, MemDevice, MicroFs, OpenFlags};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Mkdir(u8),
    Create(u8),
    /// (dir index, file index, seed, length)
    Write(u8, u8, u8, u16),
    Truncate(u8, u16),
    Unlink(u8),
    Rename(u8, u8),
    Snapshot,
    CrashAndMount,
}

fn dir_name(i: u8) -> String {
    format!("/d{}", i % 4)
}

fn file_name(d: u8, f: u8) -> String {
    format!("{}/f{}", dir_name(d), f % 4)
}

#[derive(Default)]
struct Model {
    dirs: BTreeSet<String>,
    files: BTreeMap<String, Vec<u8>>,
}

impl Model {
    fn parent_exists(&self, path: &str) -> bool {
        let idx = path.rfind('/').unwrap();
        idx == 0 || self.dirs.contains(&path[..idx])
    }
}

fn payload(seed: u8, len: u16) -> Vec<u8> {
    (0..len)
        .map(|i| (u16::from(seed).wrapping_mul(31).wrapping_add(i) % 251) as u8)
        .collect()
}

fn apply(
    fs: &mut Option<MicroFs<MemDevice>>,
    model: &mut Model,
    op: &Op,
) -> Result<(), TestCaseError> {
    let f = fs.as_mut().expect("mounted");
    match op {
        Op::Mkdir(d) => {
            let path = dir_name(*d);
            let ours = f.mkdir(&path, 0o755);
            if model.dirs.contains(&path) {
                prop_assert!(matches!(ours, Err(FsError::AlreadyExists(_))));
            } else {
                prop_assert!(ours.is_ok(), "mkdir {path}: {ours:?}");
                model.dirs.insert(path);
            }
        }
        #[allow(clippy::map_entry)] // three-way branch, not an entry() shape
        Op::Create(df) => {
            let path = file_name(*df, df.wrapping_mul(7));
            let ours = f.open(&path, OpenFlags::CREATE_EXCL, 0o644);
            if !model.parent_exists(&path) {
                prop_assert!(
                    matches!(ours, Err(FsError::NotFound(_))),
                    "{path}: {ours:?}"
                );
            } else if model.files.contains_key(&path) {
                prop_assert!(matches!(ours, Err(FsError::AlreadyExists(_))));
            } else {
                let fd = ours.unwrap();
                f.close(fd).unwrap();
                model.files.insert(path, Vec::new());
            }
        }
        Op::Write(d, fi, seed, len) => {
            let path = file_name(*d, *fi);
            match model.files.get_mut(&path) {
                None => {
                    prop_assert!(f.open(&path, OpenFlags::RDWR, 0).is_err());
                }
                Some(content) => {
                    let data = payload(*seed, *len);
                    // Append-style write at current EOF (checkpoint shape).
                    let fd = f.open(&path, OpenFlags::RDWR, 0).unwrap();
                    let off = content.len() as u64;
                    f.pwrite(fd, off, &data).unwrap();
                    f.close(fd).unwrap();
                    content.extend_from_slice(&data);
                }
            }
        }
        Op::Truncate(df, size) => {
            let path = file_name(*df, df.wrapping_add(1));
            let size = u64::from(*size);
            match model.files.get_mut(&path) {
                None => {
                    prop_assert!(f.truncate(&path, size).is_err());
                }
                Some(content) => {
                    f.truncate(&path, size).unwrap();
                    content.resize(size as usize, 0);
                }
            }
        }
        Op::Unlink(df) => {
            let path = file_name(*df, df.wrapping_mul(3));
            let ours = f.unlink(&path);
            if model.files.remove(&path).is_some() {
                prop_assert!(ours.is_ok(), "unlink {path}: {ours:?}");
            } else {
                prop_assert!(ours.is_err());
            }
        }
        Op::Rename(a, b) => {
            let from = file_name(*a, a.wrapping_mul(5));
            let to = file_name(*b, b.wrapping_mul(5).wrapping_add(1));
            let ours = f.rename(&from, &to);
            let can = model.files.contains_key(&from)
                && !model.files.contains_key(&to)
                && !model.dirs.contains(&to)
                && model.parent_exists(&to)
                && from != to;
            if can {
                prop_assert!(ours.is_ok(), "rename {from} -> {to}: {ours:?}");
                let v = model.files.remove(&from).unwrap();
                model.files.insert(to, v);
            } else {
                prop_assert!(ours.is_err() || from == to);
            }
        }
        Op::Snapshot => {
            f.snapshot_now().unwrap();
        }
        Op::CrashAndMount => {
            let dev = fs.take().unwrap().into_device();
            *fs = Some(MicroFs::mount(dev, FsConfig::default()).unwrap());
        }
    }
    Ok(())
}

fn check_agreement(fs: &mut MicroFs<MemDevice>, model: &Model) -> Result<(), TestCaseError> {
    for d in &model.dirs {
        prop_assert!(fs.stat(d).is_ok(), "missing dir {d}");
    }
    for (path, content) in &model.files {
        let st = fs.stat(path);
        prop_assert!(st.is_ok(), "missing file {path}");
        prop_assert_eq!(st.unwrap().size, content.len() as u64, "size of {}", path);
        let fd = fs.open(path, OpenFlags::RDONLY, 0).unwrap();
        let mut buf = vec![0u8; content.len()];
        let mut got = 0;
        while got < buf.len() {
            let n = fs.read(fd, &mut buf[got..]).unwrap();
            if n == 0 {
                break;
            }
            got += n;
        }
        fs.close(fd).unwrap();
        prop_assert_eq!(&buf, content, "content of {}", path);
    }
    Ok(())
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => any::<u8>().prop_map(Op::Mkdir),
        4 => any::<u8>().prop_map(Op::Create),
        6 => (any::<u8>(), any::<u8>(), any::<u8>(), 0u16..20_000).prop_map(|(a, b, c, d)| Op::Write(a, b, c, d)),
        2 => (any::<u8>(), 0u16..40_000).prop_map(|(a, b)| Op::Truncate(a, b)),
        2 => any::<u8>().prop_map(Op::Unlink),
        2 => (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Rename(a, b)),
        1 => Just(Op::Snapshot),
        2 => Just(Op::CrashAndMount),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        max_shrink_iters: 2000,
        ..ProptestConfig::default()
    })]

    #[test]
    fn microfs_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let dev = MemDevice::new(64 << 20);
        let mut fs = Some(MicroFs::format(dev, FsConfig::default()).unwrap());
        let mut model = Model::default();
        for op in &ops {
            apply(&mut fs, &mut model, op)?;
            check_agreement(fs.as_mut().unwrap(), &model)?;
        }
        // Final adversarial crash: everything must still agree, and the
        // independent fsck witness must declare the partition clean.
        let dev = fs.take().unwrap().into_device();
        let mut dev_for_fsck = dev.clone();
        let report = microfs::fsck(&mut dev_for_fsck);
        prop_assert!(report.is_clean(), "fsck issues: {:?}", report.issues);
        let mut fs = MicroFs::mount(dev, FsConfig::default()).unwrap();
        check_agreement(&mut fs, &model)?;
    }
}
