//! Property tests for the dependency-free JSON codec: any `Value` tree
//! the serializer can emit parses back to an identical tree, and the
//! parser rejects trailing garbage appended to valid documents.

use std::collections::BTreeMap;

use proptest::prelude::*;
use telemetry::json::{self, Value};

/// Deterministically grow a `Value` tree from a seed. Plain code instead
/// of nested strategies: the tree shape (depth, fan-out, variant mix)
/// all derive from one drawn `u64`, which keeps cases reproducible under
/// the sampling runner.
/// SplitMix64 step: decorrelates successive draws from one seed.
fn next(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn build_value(seed: &mut u64, depth: u32) -> Value {
    let pick = if depth == 0 {
        next(seed) % 4
    } else {
        next(seed) % 6
    };
    match pick {
        0 => Value::Null,
        1 => Value::Bool(next(seed).is_multiple_of(2)),
        2 => {
            // Finite floats only: the serializer maps NaN/inf to null by
            // design, which cannot round-trip. Mix integers, fractions,
            // negatives, and large magnitudes.
            let raw = next(seed);
            let n = match raw % 4 {
                0 => (raw >> 8) as f64,
                1 => -((raw >> 40) as f64),
                2 => (raw >> 12) as f64 / 1024.0,
                _ => (raw >> 1) as f64 * 1e3,
            };
            Value::Num(n)
        }
        3 => {
            let len = (next(seed) % 12) as usize;
            let s: String = (0..len)
                .map(|_| {
                    // Cover escapes, control chars, and multibyte UTF-8.
                    const ALPHABET: [char; 16] = [
                        'a', 'Z', '0', ' ', '"', '\\', '\n', '\t', '\r', '\u{1}', '\u{1f}', 'é',
                        '仮', '🦀', '/', '{',
                    ];
                    ALPHABET[(next(seed) % ALPHABET.len() as u64) as usize]
                })
                .collect();
            Value::Str(s)
        }
        4 => {
            let len = (next(seed) % 5) as usize;
            Value::Arr((0..len).map(|_| build_value(seed, depth - 1)).collect())
        }
        _ => {
            let len = (next(seed) % 5) as usize;
            let mut m = BTreeMap::new();
            for i in 0..len {
                let key = format!("k{}_{}", i, next(seed) % 100);
                m.insert(key, build_value(seed, depth - 1));
            }
            Value::Obj(m)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn serialize_parse_round_trips(seed in any::<u64>()) {
        let mut s = seed;
        let tree = build_value(&mut s, 3);
        let text = tree.to_json();
        let back = json::parse(&text)
            .map_err(|e| TestCaseError::fail(format!("{text:?}: {e}")))?;
        prop_assert_eq!(&back, &tree, "document was {}", text);
        // A second round proves the emitted form is a fixed point.
        prop_assert_eq!(back.to_json(), text);
    }

    #[test]
    fn trailing_garbage_is_rejected(seed in any::<u64>()) {
        let mut s = seed;
        let tree = build_value(&mut s, 2);
        let mut text = tree.to_json();
        text.push_str(" x");
        prop_assert!(json::parse(&text).is_err(), "accepted {:?}", text);
    }
}
