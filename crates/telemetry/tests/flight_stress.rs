//! Concurrency stress for the flight recorder: many writer threads
//! hammering the per-shard rings while readers snapshot and dump
//! concurrently. The seqlock protocol must never surface a torn event —
//! every event read back must be one some thread actually recorded —
//! and a trip mid-storm must produce a parseable dump.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use telemetry::{json, FlightKind, FlightRecorder};

/// Writers encode (thread, op) into (cid, a) so readers can verify that
/// any event they observe is byte-consistent: b must always equal
/// cid ^ a, a relation a torn read would break.
fn spawn_writer(
    rec: Arc<FlightRecorder>,
    stop: Arc<AtomicBool>,
    tid: u64,
) -> thread::JoinHandle<u64> {
    thread::spawn(move || {
        let _rank = telemetry::context::with_rank(tid);
        let mut ops = 0u64;
        while !stop.load(Ordering::Relaxed) {
            // Keep every word under 2^53: the dump path round-trips
            // through f64-backed JSON numbers.
            let cid = (tid << 32) | (ops & 0xFFFF_FFFF);
            let a = ops.wrapping_mul(0x9E37_79B9) & 0xFFFF_FFFF;
            rec.record(FlightKind::Submit, cid, ops % 8, a, cid ^ a);
            ops += 1;
        }
        ops
    })
}

#[test]
fn concurrent_writers_never_produce_torn_events() {
    let rec = Arc::new(FlightRecorder::new());
    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..8)
        .map(|tid| spawn_writer(Arc::clone(&rec), Arc::clone(&stop), tid))
        .collect();

    // Read under fire: each snapshot must be internally consistent.
    let mut reads = 0u64;
    for _ in 0..60 {
        for e in rec.events() {
            if e.kind == FlightKind::Submit {
                assert_eq!(
                    e.b,
                    e.cid ^ e.a,
                    "torn event surfaced: cid={} a={} b={}",
                    e.cid,
                    e.a,
                    e.b
                );
                reads += 1;
            }
        }
    }
    stop.store(true, Ordering::Relaxed);
    let total: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
    assert!(total > 0, "writers made no progress");
    assert!(reads > 0, "reader never observed a published event");
}

#[test]
fn trip_and_dump_under_concurrent_writes_stays_parseable() {
    let rec = Arc::new(FlightRecorder::new());
    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..4)
        .map(|tid| spawn_writer(Arc::clone(&rec), Arc::clone(&stop), tid))
        .collect();

    // Trip repeatedly mid-storm and parse every dump produced.
    for round in 0..20 {
        rec.trip(FlightKind::CrcError, round);
        let dump = rec.dump_jsonl(FlightKind::CrcError);
        let mut lines = dump.lines();
        let header = json::parse(lines.next().expect("header line"))
            .unwrap_or_else(|e| panic!("round {round}: bad header: {e}"));
        assert_eq!(
            header.get("schema").and_then(json::Value::as_str),
            Some("nvmecr-flight-v1")
        );
        for (i, line) in lines.enumerate() {
            let v = json::parse(line)
                .unwrap_or_else(|e| panic!("round {round} line {}: {e}: {line}", i + 2));
            if let Some(b) = v.get("b").and_then(json::Value::as_num) {
                // Same torn-read oracle as above, through the JSON path.
                if v.get("ev").and_then(json::Value::as_str) == Some("submit") {
                    let cid = v.get("cid").and_then(json::Value::as_num).unwrap() as u64;
                    let a = v.get("a").and_then(json::Value::as_num).unwrap() as u64;
                    assert_eq!(b as u64, cid ^ a, "torn event in dump");
                }
            }
        }
    }
    assert_eq!(rec.trip_count(), 20);
    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }
}

#[test]
fn disabled_recorder_records_nothing() {
    let rec = FlightRecorder::new();
    rec.set_enabled(false);
    for i in 0..100 {
        rec.record(FlightKind::Submit, i, 0, i, 0);
    }
    assert!(rec.events().is_empty());
    rec.set_enabled(true);
    rec.record(FlightKind::Submit, 1, 0, 2, 3);
    assert_eq!(rec.events().len(), 1);
}
