//! Span tracing under concurrent rayon rank driving: every thread's spans
//! nest correctly (parent links and temporal containment), buffers don't
//! interleave across threads, and the Chrome export is valid JSON.

use rayon::prelude::*;
use std::collections::HashMap;
use telemetry::trace::{self, EventKind};

const RANKS: u64 = 32;
const OPS_PER_RANK: u64 = 8;

#[test]
fn nested_spans_survive_concurrent_rank_driving() {
    let ((), tr) = trace::capture(|| {
        (0..RANKS).into_par_iter().for_each(|rank| {
            let _ckpt = trace::span("driver", "checkpoint_rank").arg("rank", rank);
            for op in 0..OPS_PER_RANK {
                let _io = trace::span("fabric", "submit").arg("op", op);
                trace::instant("ssd", "drain", &[("rank", rank)]);
            }
        });
    });

    let events = tr.events();
    let spans: Vec<_> = events
        .iter()
        .filter(|e| e.kind == EventKind::Span)
        .collect();
    let by_id: HashMap<u64, &telemetry::TraceEvent> = spans.iter().map(|e| (e.id, *e)).collect();

    // One checkpoint span per rank, OPS_PER_RANK submits per rank, one
    // drain instant per submit.
    let ckpts: Vec<_> = spans
        .iter()
        .filter(|e| e.name == "checkpoint_rank")
        .collect();
    let submits: Vec<_> = spans.iter().filter(|e| e.name == "submit").collect();
    assert_eq!(ckpts.len(), RANKS as usize);
    assert_eq!(submits.len(), (RANKS * OPS_PER_RANK) as usize);
    assert_eq!(
        events
            .iter()
            .filter(|e| e.kind == EventKind::Instant)
            .count(),
        (RANKS * OPS_PER_RANK) as usize
    );

    // All span ids are unique (no cross-thread buffer corruption).
    assert_eq!(by_id.len(), spans.len());

    // Every submit's parent is a checkpoint span on the SAME thread, and
    // the child is temporally contained in its parent.
    for s in &submits {
        let parent = by_id[&s.parent.expect("submit must have a parent")];
        assert_eq!(parent.name, "checkpoint_rank");
        assert_eq!(parent.tid, s.tid, "parent must be on the recording thread");
        assert!(s.ts_ns >= parent.ts_ns);
        assert!(s.ts_ns + s.dur_ns <= parent.ts_ns + parent.dur_ns);
    }
    // Checkpoint spans are roots.
    for c in &ckpts {
        assert_eq!(c.parent, None);
    }

    // The Chrome export is valid JSON with one entry per event.
    let doc = telemetry::json::parse(&tr.to_chrome_json()).expect("valid Chrome trace JSON");
    let arr = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    assert_eq!(arr.len(), events.len());
    for ev in arr {
        let ph = ev.get("ph").and_then(|v| v.as_str()).unwrap();
        assert!(ph == "X" || ph == "i");
        assert!(ev.get("ts").and_then(|v| v.as_num()).is_some());
        assert!(ev.get("args").and_then(|v| v.as_obj()).is_some());
    }

    // JSONL: every line parses on its own.
    let jsonl = tr.to_jsonl();
    assert_eq!(jsonl.lines().count(), events.len());
    for line in jsonl.lines() {
        telemetry::json::parse(line).expect("each JSONL line is valid JSON");
    }
}
