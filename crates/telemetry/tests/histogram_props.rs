//! Property tests for the log2-bucketed histogram: bucket bounds contain
//! their samples, merge preserves counts and sums, percentiles are
//! monotone and bracket the true quantiles within bucket resolution.

use proptest::prelude::*;
use telemetry::{Histogram, HistogramSnapshot};

/// Samples spanning many octaves: mostly small, sometimes huge.
fn sample_strategy() -> impl proptest::strategy::Strategy<Value = u64> {
    prop_oneof![
        4 => 0u64..1024,
        2 => 1024u64..1_000_000,
        1 => 1_000_000u64..u64::MAX,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn recorded_values_fall_within_reported_bucket_bounds(v in sample_strategy()) {
        let idx = HistogramSnapshot::bucket_index(v);
        let (lo, hi) = HistogramSnapshot::bucket_bounds(idx);
        prop_assert!(lo <= v && v <= hi, "v={} idx={} bounds=({},{})", v, idx, lo, hi);
        // Bucket width bounds the relative error at 2^-SUB_BITS = 12.5%.
        if lo > 0 {
            prop_assert!((hi - lo) as f64 <= lo as f64 * 0.125 + 1.0,
                "bucket ({lo},{hi}) too wide for its magnitude");
        }
    }

    #[test]
    fn merge_preserves_counts_and_sums(
        a in proptest::collection::vec(sample_strategy(), 1..200),
        b in proptest::collection::vec(sample_strategy(), 1..200),
    ) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        for &v in &a { ha.record(v); }
        for &v in &b { hb.record(v); }
        let mut merged = ha.snapshot();
        merged.merge(&hb.snapshot());

        prop_assert_eq!(merged.count, (a.len() + b.len()) as u64);
        let expect_sum = a.iter().fold(0u64, |s, &v| s.wrapping_add(v))
            .wrapping_add(b.iter().fold(0u64, |s, &v| s.wrapping_add(v)));
        prop_assert_eq!(merged.sum, expect_sum);
        let expect_max = a.iter().chain(&b).copied().max().unwrap();
        let expect_min = a.iter().chain(&b).copied().min().unwrap();
        prop_assert_eq!(merged.max, expect_max);
        prop_assert_eq!(merged.min, expect_min);

        // Merging is the same as recording everything into one histogram.
        let hc = Histogram::new();
        for &v in a.iter().chain(&b) { hc.record(v); }
        prop_assert_eq!(merged, hc.snapshot());
    }

    #[test]
    fn percentiles_are_monotone_and_bracket_true_quantiles(
        mut vs in proptest::collection::vec(sample_strategy(), 1..300),
    ) {
        let h = Histogram::new();
        for &v in &vs { h.record(v); }
        let s = h.snapshot();
        vs.sort_unstable();

        let ps = [1.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0];
        let mut prev = 0u64;
        for &p in &ps {
            let got = s.percentile(p);
            prop_assert!(got >= prev, "p{p} = {got} < previous {prev}");
            prev = got;

            // The reported value is the containing bucket's upper bound:
            // never below the true quantile, and at most one bucket above.
            let rank = ((p / 100.0) * vs.len() as f64).ceil().max(1.0) as usize;
            let truth = vs[rank.min(vs.len()) - 1];
            prop_assert!(got >= truth, "p{p} report {got} below true value {truth}");
            let (_, hi) = HistogramSnapshot::bucket_bounds(
                HistogramSnapshot::bucket_index(truth));
            prop_assert!(got <= hi.min(s.max), "p{p} report {got} above bucket cap {hi}");
        }
        prop_assert_eq!(s.percentile(100.0), *vs.last().unwrap());
    }
}
