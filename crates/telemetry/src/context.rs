//! Causal trace context: the rank and checkpoint epoch a thread is
//! currently working on behalf of.
//!
//! The runtime drives ranks with rayon closures and every layer below the
//! driver (initiator, target poll, ssd shard, microfs WAL, replication
//! mirror) runs inline on the same worker thread, so a thread-local pair
//! of cells is enough to propagate the (rank, epoch) half of a command's
//! trace identity end to end. The fabric layer supplies the other half
//! (CID, retry generation) explicitly. The flight recorder stamps every
//! event with the current context automatically.
//!
//! Guards nest and restore the previous value on drop, so re-entrant
//! paths (a failover that re-drives another rank's restore) stay correct.

use std::cell::Cell;

/// Sentinel for "no value set" (also the wire encoding in dumps).
pub const UNSET: u64 = u64::MAX;

thread_local! {
    static RANK: Cell<u64> = const { Cell::new(UNSET) };
    static EPOCH: Cell<u64> = const { Cell::new(UNSET) };
}

/// The rank the current thread is working for, if any.
#[inline]
pub fn current_rank() -> Option<u64> {
    let r = RANK.with(Cell::get);
    (r != UNSET).then_some(r)
}

/// The checkpoint epoch the current thread is working on, if any.
#[inline]
pub fn current_epoch() -> Option<u64> {
    let e = EPOCH.with(Cell::get);
    (e != UNSET).then_some(e)
}

/// Raw rank cell value (`UNSET` when no guard is active).
#[inline]
pub fn raw_rank() -> u64 {
    RANK.with(Cell::get)
}

/// Raw epoch cell value (`UNSET` when no guard is active).
#[inline]
pub fn raw_epoch() -> u64 {
    EPOCH.with(Cell::get)
}

/// RAII guard restoring the previous rank on drop.
pub struct RankGuard {
    prev: u64,
}

/// RAII guard restoring the previous epoch on drop.
pub struct EpochGuard {
    prev: u64,
}

/// Set the current thread's rank for the guard's lifetime.
pub fn with_rank(rank: u64) -> RankGuard {
    let prev = RANK.with(|c| c.replace(rank));
    RankGuard { prev }
}

/// Set the current thread's epoch for the guard's lifetime.
pub fn with_epoch(epoch: u64) -> EpochGuard {
    let prev = EPOCH.with(|c| c.replace(epoch));
    EpochGuard { prev }
}

impl Drop for RankGuard {
    fn drop(&mut self) {
        RANK.with(|c| c.set(self.prev));
    }
}

impl Drop for EpochGuard {
    fn drop(&mut self) {
        EPOCH.with(|c| c.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guards_nest_and_restore() {
        assert_eq!(current_rank(), None);
        {
            let _a = with_rank(3);
            assert_eq!(current_rank(), Some(3));
            {
                let _b = with_rank(7);
                assert_eq!(current_rank(), Some(7));
            }
            assert_eq!(current_rank(), Some(3));
        }
        assert_eq!(current_rank(), None);
    }

    #[test]
    fn rank_and_epoch_are_independent() {
        let _r = with_rank(1);
        assert_eq!(current_epoch(), None);
        let _e = with_epoch(9);
        assert_eq!(current_rank(), Some(1));
        assert_eq!(current_epoch(), Some(9));
    }
}
