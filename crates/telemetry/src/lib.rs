//! Cross-layer observability for the NVMe-CR runtime.
//!
//! The paper's argument is a *breakdown* argument: checkpoint time is
//! attributed to specific layers (kernel trap vs. polled userspace, WAL
//! append vs. coalescing, queueing vs. media). This crate is the single
//! observability surface that makes those breakdowns measurable:
//!
//! - [`metrics`] — sharded [`Counter`]s/[`Gauge`]s and log2-bucketed
//!   latency [`Histogram`]s (record in ns; query p50/p90/p99/p999; merge
//!   across rank threads without contention).
//! - [`registry`] — named metrics, snapshotted into an immutable
//!   [`MetricsSnapshot`] that rides in `FunctionalReport`.
//! - [`trace`] — scoped spans with parent/child nesting, exportable as
//!   Chrome `trace_event` JSON and JSONL. Off by default; enabled only
//!   inside [`trace::capture`].
//! - [`recorder`] — the always-on black-box flight recorder: lock-free
//!   per-shard event rings capturing the last few thousand causal events
//!   (trace-identified by rank/epoch/CID/retry-generation), auto-dumped
//!   to JSONL when a fault, CRC error, retry exhaustion, or rollback
//!   trips it.
//! - [`context`] — thread-local (rank, epoch) trace context propagated
//!   from the driver's rank fan-out into every event recorded below it.
//! - [`json`] — a minimal parser so emitted reports can self-validate in
//!   an offline build.
//!
//! Each subsystem takes a [`Telemetry`] handle at construction
//! (`Ssd::with_telemetry`, `Initiator::with_telemetry`, the `telemetry`
//! field on `FsConfig`/`RuntimeConfig`). Production paths share
//! [`Telemetry::global`]; tests that assert exact counter values create a
//! private [`Telemetry::new`] so parallel tests never share counters.

#![warn(missing_docs)]

pub mod context;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod registry;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use recorder::{FlightEvent, FlightKind, FlightRecorder};
pub use registry::{GaugeSnapshot, MetricsSnapshot, Registry};
pub use trace::{capture, instant, span, Span, Trace, TraceEvent};

use std::sync::{Arc, OnceLock};

/// A cheap, cloneable handle to a metrics registry. Clones share the same
/// underlying registry.
#[derive(Clone)]
pub struct Telemetry {
    registry: Arc<Registry>,
}

impl Telemetry {
    /// A fresh, private registry — use in tests that assert exact counts.
    pub fn new() -> Self {
        Self {
            registry: Self::linked_registry(),
        }
    }

    /// The process-wide default registry.
    pub fn global() -> Self {
        static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
        Self {
            registry: Arc::clone(GLOBAL.get_or_init(Self::linked_registry)),
        }
    }

    /// A registry whose flight recorder holds a backref to it, so trip
    /// dumps can embed the registry's metrics snapshot.
    fn linked_registry() -> Arc<Registry> {
        let registry = Arc::new(Registry::new());
        registry.recorder().set_registry(Arc::downgrade(&registry));
        registry
    }

    /// The underlying registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.registry.counter(name)
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.registry.gauge(name)
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.registry.histogram(name)
    }

    /// Snapshot every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// This registry's flight recorder. Hot-path callers resolve the
    /// `Arc` once at construction, like metric handles.
    pub fn recorder(&self) -> Arc<FlightRecorder> {
        Arc::clone(self.registry.recorder())
    }

    /// Do two handles share a registry?
    pub fn same_registry(&self, other: &Telemetry) -> bool {
        Arc::ptr_eq(&self.registry, &other.registry)
    }
}

impl Default for Telemetry {
    /// The default handle is the process-global registry, so plain
    /// `Config::default()` construction wires every layer to one surface.
    fn default() -> Self {
        Self::global()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let global = self.same_registry(&Telemetry::global());
        f.debug_struct("Telemetry")
            .field("global", &global)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_a_registry() {
        let t = Telemetry::new();
        let u = t.clone();
        t.counter("a.x").add(2);
        u.counter("a.x").add(3);
        assert_eq!(t.snapshot().counter("a.x"), 5);
        assert!(t.same_registry(&u));
    }

    #[test]
    fn new_registries_are_isolated() {
        let t = Telemetry::new();
        let u = Telemetry::new();
        t.counter("a.x").add(2);
        assert_eq!(u.snapshot().counter("a.x"), 0);
        assert!(!t.same_registry(&u));
    }

    #[test]
    fn global_is_shared_and_default() {
        assert!(Telemetry::global().same_registry(&Telemetry::default()));
    }
}
