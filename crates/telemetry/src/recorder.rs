//! The black-box flight recorder: an always-on, lock-free, fixed-capacity
//! ring of recent events, dumped to JSONL when something goes wrong.
//!
//! Aggregate metrics say *how often* commands retried; the flight recorder
//! says *which* command, in *what order*, around the failure. Every layer
//! records small fixed-size events (a [`FlightKind`] plus the thread's
//! rank/epoch context, the fabric CID and retry generation, and two
//! free-form arguments) into one of [`crate::metrics::SHARDS`] per-thread
//! rings. Writers never block: a shard claims a sequence number with one
//! `fetch_add` and publishes the slot seqlock-style (stamp cleared, payload
//! stored, stamp set with `Release`), so a reader that races a writer
//! simply discards the torn slot. The ring keeps the last `capacity`
//! events per shard and overwrites the oldest.
//!
//! A *trip* is the "eject the tape" moment: chaos injected a fault, a
//! retry budget exhausted, a CRC mismatch surfaced, or recovery/rollback
//! began. The first trip atomically wins and — when a dump path has been
//! set — writes the whole ring (plus a [`crate::MetricsSnapshot`] of the
//! owning registry) to a self-contained JSONL file for `nvmecr-doctor`.

use crate::metrics::{slot, SHARDS};
use crate::{context, Registry};
use parking_lot::Mutex;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Weak;
use std::time::Instant;

/// Events kept per shard (power of two). 16 shards x 4096 events covers
/// the "last few thousand commands" window the post-mortem needs.
pub const RING_CAPACITY: usize = 4096;

/// Schema tag written into every dump header.
pub const DUMP_SCHEMA: &str = "nvmecr-flight-v1";

/// What happened. Codes are stable wire values (dumps must be readable by
/// a doctor built from a different commit).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u64)]
pub enum FlightKind {
    /// Fabric: a command capsule was posted (initial or re-post).
    Submit = 1,
    /// Fabric: a completion matched its pending command.
    Complete = 2,
    /// Fabric: a failed command was queued for another attempt.
    Retry = 3,
    /// Fabric: a pending command exceeded its completion deadline.
    Timeout = 4,
    /// Fabric: a completion's payload CRC disagreed with the capsule.
    CrcError = 5,
    /// Fabric: a command ran out of retry budget (trip).
    RetryExhausted = 6,
    /// Fabric: the initiator tore down and re-posted in-flight commands.
    Reconnect = 7,
    /// Chaos: the armed plan injected a fault (trip).
    FaultInjected = 8,
    /// SSD: a shard refused an op with a transient busy.
    ShardBusy = 9,
    /// SSD: a fault killed the shard permanently.
    ShardKill = 10,
    /// SSD: an op hit a shard that is already dead.
    ShardDead = 11,
    /// MicroFs: a WAL record (or coalesced batch) was appended.
    WalAppend = 12,
    /// Replication: an epoch manifest was sealed on the copies.
    EpochCommit = 13,
    /// Replication: a mirrored write batch landed on both copies.
    MirrorWrite = 14,
    /// Replication: the mirror degraded (replica-side error).
    MirrorDegraded = 15,
    /// Replication: a restore rolled back to the last complete epoch
    /// (trip).
    RollbackRestore = 16,
    /// Driver: a rank's storage failed over to a partner domain (trip).
    Failover = 17,
    /// Recorder: a trip fired (argument `a` holds the cause kind's code).
    Trip = 18,
    /// Chaos: the crash-universe mode killed the stack at an exact global
    /// durability-op index (trip; `a` holds the op kind's code, `b` the
    /// global op index).
    CrashPoint = 19,
    /// Chaos: the nested crash plane killed a recovery attempt at an
    /// exact recovery-op index (trip; `a` holds the recovery-op kind's
    /// code, `b` the nested op index).
    RecoveryCrashPoint = 20,
    /// Supervisor: a rank exhausted its recovery budget and was
    /// quarantined (trip; `a` holds the rank, `b` the failure count).
    RecoveryQuarantine = 21,
    /// Supervisor: a quarantined rank began degraded read-only serving
    /// from its replica (`a` holds the rank, `b` the served epoch).
    DegradedServe = 22,
}

impl FlightKind {
    /// Stable wire code.
    pub fn code(self) -> u64 {
        self as u64
    }

    /// Decode a wire code.
    pub fn from_code(code: u64) -> Option<FlightKind> {
        use FlightKind::*;
        Some(match code {
            1 => Submit,
            2 => Complete,
            3 => Retry,
            4 => Timeout,
            5 => CrcError,
            6 => RetryExhausted,
            7 => Reconnect,
            8 => FaultInjected,
            9 => ShardBusy,
            10 => ShardKill,
            11 => ShardDead,
            12 => WalAppend,
            13 => EpochCommit,
            14 => MirrorWrite,
            15 => MirrorDegraded,
            16 => RollbackRestore,
            17 => Failover,
            18 => Trip,
            19 => CrashPoint,
            20 => RecoveryCrashPoint,
            21 => RecoveryQuarantine,
            22 => DegradedServe,
            _ => return None,
        })
    }

    /// Snake-case name used in dumps and reports.
    pub fn name(self) -> &'static str {
        match self {
            FlightKind::Submit => "submit",
            FlightKind::Complete => "complete",
            FlightKind::Retry => "retry",
            FlightKind::Timeout => "timeout",
            FlightKind::CrcError => "crc_error",
            FlightKind::RetryExhausted => "retry_exhausted",
            FlightKind::Reconnect => "reconnect",
            FlightKind::FaultInjected => "fault_injected",
            FlightKind::ShardBusy => "shard_busy",
            FlightKind::ShardKill => "shard_kill",
            FlightKind::ShardDead => "shard_dead",
            FlightKind::WalAppend => "wal_append",
            FlightKind::EpochCommit => "epoch_commit",
            FlightKind::MirrorWrite => "mirror_write",
            FlightKind::MirrorDegraded => "mirror_degraded",
            FlightKind::RollbackRestore => "rollback_restore",
            FlightKind::Failover => "failover",
            FlightKind::Trip => "trip",
            FlightKind::CrashPoint => "crash_point",
            FlightKind::RecoveryCrashPoint => "recovery_crash_point",
            FlightKind::RecoveryQuarantine => "recovery_quarantine",
            FlightKind::DegradedServe => "degraded_serve",
        }
    }
}

/// One decoded flight-recorder event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Global publication order (per-shard sequence; unique within a
    /// shard, used with `ts_ns` to order the merged stream).
    pub seq: u64,
    /// Nanoseconds since the recorder was created.
    pub ts_ns: u64,
    /// What happened.
    pub kind: FlightKind,
    /// Rank context at record time ([`context::UNSET`] when absent).
    pub rank: u64,
    /// Epoch context at record time ([`context::UNSET`] when absent).
    pub epoch: u64,
    /// Fabric command id (0 for non-command events).
    pub cid: u64,
    /// Retry generation / attempt number (0 for non-command events).
    pub gen: u64,
    /// Kind-specific argument (bytes, site code, epoch, latency...).
    pub a: u64,
    /// Second kind-specific argument.
    pub b: u64,
}

impl FlightEvent {
    /// One JSONL line for dumps (`rank`/`epoch` omitted when unset).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"ev\":\"{}\",\"seq\":{},\"ts_ns\":{}",
            self.kind.name(),
            self.seq,
            self.ts_ns
        );
        if self.rank != context::UNSET {
            out.push_str(&format!(",\"rank\":{}", self.rank));
        }
        if self.epoch != context::UNSET {
            out.push_str(&format!(",\"epoch\":{}", self.epoch));
        }
        out.push_str(&format!(
            ",\"cid\":{},\"gen\":{},\"a\":{},\"b\":{}}}",
            self.cid, self.gen, self.a, self.b
        ));
        out
    }
}

/// Words per slot: [stamp, ts, kind, rank, epoch, cid|gen<<48, a, b].
const SLOT_WORDS: usize = 8;
/// CID occupies the low 48 bits of word 5; the generation the high 16.
const GEN_SHIFT: u32 = 48;

struct Shard {
    /// Next sequence number to claim; slot = seq % capacity. Starts at 1
    /// so stamp 0 always means "never written".
    seq: AtomicU64,
    slots: Vec<[AtomicU64; SLOT_WORDS]>,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            seq: AtomicU64::new(1),
            slots: (0..capacity)
                .map(|_| std::array::from_fn(|_| AtomicU64::new(0)))
                .collect(),
        }
    }
}

/// The always-on event ring. One per [`Registry`]; resolve with
/// [`crate::Telemetry::recorder`] and keep the `Arc` on the hot path.
pub struct FlightRecorder {
    shards: Vec<Shard>,
    origin: Instant,
    /// Recording gate — only ever cleared for A/B overhead measurement.
    enabled: AtomicBool,
    trips: AtomicU64,
    tripped: AtomicBool,
    dump_path: Mutex<Option<PathBuf>>,
    /// Backref to the owning registry so a dump can embed its metrics.
    registry: Mutex<Weak<Registry>>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl FlightRecorder {
    /// A recorder with the default per-shard capacity.
    pub fn new() -> Self {
        Self::with_capacity(RING_CAPACITY)
    }

    /// A recorder keeping `capacity` events per shard (rounded up to a
    /// power of two, minimum 8).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(8).next_power_of_two();
        FlightRecorder {
            shards: (0..SHARDS).map(|_| Shard::new(capacity)).collect(),
            origin: Instant::now(),
            enabled: AtomicBool::new(true),
            trips: AtomicU64::new(0),
            tripped: AtomicBool::new(false),
            dump_path: Mutex::new(None),
            registry: Mutex::new(Weak::new()),
        }
    }

    pub(crate) fn set_registry(&self, registry: Weak<Registry>) {
        *self.registry.lock() = registry;
    }

    /// Turn recording on or off (off exists for overhead A/B runs).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Is recording on?
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Where the first trip dumps to. Unset (the default) means trips
    /// count but never touch the filesystem — tests stay quiet.
    pub fn set_dump_path<P: Into<PathBuf>>(&self, path: P) {
        *self.dump_path.lock() = Some(path.into());
    }

    /// Trips seen so far.
    pub fn trip_count(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }

    /// Record one event, stamping the thread's (rank, epoch) context.
    #[inline]
    pub fn record(&self, kind: FlightKind, cid: u64, gen: u64, a: u64, b: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let ts = self.origin.elapsed().as_nanos() as u64;
        let shard = &self.shards[slot()];
        let seq = shard.seq.fetch_add(1, Ordering::Relaxed);
        let s = &shard.slots[(seq as usize) & (shard.slots.len() - 1)];
        // Seqlock publish: clear the stamp, store the payload, then set
        // the stamp to this sequence with Release. A reader seeing the
        // same non-zero stamp before and after its payload loads knows
        // the slot was stable.
        s[0].store(0, Ordering::Release);
        s[1].store(ts, Ordering::Relaxed);
        s[2].store(kind.code(), Ordering::Relaxed);
        s[3].store(context::raw_rank(), Ordering::Relaxed);
        s[4].store(context::raw_epoch(), Ordering::Relaxed);
        s[5].store(
            (cid & ((1 << GEN_SHIFT) - 1)) | (gen << GEN_SHIFT),
            Ordering::Relaxed,
        );
        s[6].store(a, Ordering::Relaxed);
        s[7].store(b, Ordering::Relaxed);
        s[0].store(seq, Ordering::Release);
    }

    /// Register an anomaly that justifies ejecting the tape. The event
    /// itself must already have been recorded by the caller; `cause` only
    /// labels the dump. The first trip wins and writes the dump (when a
    /// path is set); later trips just count.
    pub fn trip(&self, cause: FlightKind, site: u64) {
        self.trips.fetch_add(1, Ordering::Relaxed);
        self.record(FlightKind::Trip, 0, 0, cause.code(), site);
        if self.tripped.swap(true, Ordering::AcqRel) {
            return;
        }
        let path = self.dump_path.lock().clone();
        if let Some(path) = path {
            // Best-effort: a failing dump must never take down the data
            // path it is trying to diagnose.
            let _ = self.dump_to(&path, cause);
        }
    }

    /// Drain a consistent-enough view of every shard's ring, oldest
    /// first. Slots being overwritten concurrently are skipped.
    pub fn events(&self) -> Vec<FlightEvent> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for s in &shard.slots {
                let stamp = s[0].load(Ordering::Acquire);
                if stamp == 0 {
                    continue;
                }
                let ts = s[1].load(Ordering::Relaxed);
                let kind = s[2].load(Ordering::Relaxed);
                let rank = s[3].load(Ordering::Relaxed);
                let epoch = s[4].load(Ordering::Relaxed);
                let cg = s[5].load(Ordering::Relaxed);
                let a = s[6].load(Ordering::Relaxed);
                let b = s[7].load(Ordering::Relaxed);
                if s[0].load(Ordering::Acquire) != stamp {
                    continue; // torn: a writer overtook us mid-read
                }
                let Some(kind) = FlightKind::from_code(kind) else {
                    continue;
                };
                out.push(FlightEvent {
                    seq: stamp,
                    ts_ns: ts,
                    kind,
                    rank,
                    epoch,
                    cid: cg & ((1 << GEN_SHIFT) - 1),
                    gen: cg >> GEN_SHIFT,
                    a,
                    b,
                });
            }
        }
        out.sort_by_key(|e| (e.ts_ns, e.seq));
        out
    }

    /// Serialize the ring (and the owning registry's metrics, when
    /// reachable) as a self-contained JSONL dump.
    pub fn dump_jsonl(&self, cause: FlightKind) -> String {
        let events = self.events();
        let mut out = format!(
            "{{\"schema\":\"{}\",\"cause\":\"{}\",\"trips\":{},\"events\":{}}}\n",
            DUMP_SCHEMA,
            cause.name(),
            self.trip_count(),
            events.len()
        );
        for e in &events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        if let Some(registry) = self.registry.lock().upgrade() {
            let snap = registry.snapshot();
            for (name, v) in &snap.counters {
                out.push_str(&format!("{{\"counter\":\"{name}\",\"value\":{v}}}\n"));
            }
            for (name, g) in &snap.gauges {
                out.push_str(&format!(
                    "{{\"gauge\":\"{name}\",\"value\":{},\"peak\":{}}}\n",
                    g.value, g.peak
                ));
            }
            for (name, h) in &snap.histograms {
                out.push_str(&format!(
                    "{{\"histogram\":\"{name}\",\"count\":{},\"p50\":{},\"p99\":{},\"max\":{}}}\n",
                    h.count,
                    h.percentile(50.0),
                    h.percentile(99.0),
                    if h.count == 0 { 0 } else { h.max }
                ));
            }
        }
        out
    }

    /// Write [`dump_jsonl`](Self::dump_jsonl) to `path`.
    pub fn dump_to(&self, path: &Path, cause: FlightKind) -> std::io::Result<()> {
        std::fs::write(path, self.dump_jsonl(cause))
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("enabled", &self.is_enabled())
            .field("trips", &self.trip_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reads_back_in_order() {
        let r = FlightRecorder::with_capacity(64);
        r.record(FlightKind::Submit, 7, 1, 4096, 0);
        r.record(FlightKind::Complete, 7, 1, 1200, 0);
        let ev = r.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].kind, FlightKind::Submit);
        assert_eq!(ev[0].cid, 7);
        assert_eq!(ev[0].gen, 1);
        assert_eq!(ev[0].a, 4096);
        assert_eq!(ev[1].kind, FlightKind::Complete);
        assert!(ev[0].ts_ns <= ev[1].ts_ns);
    }

    #[test]
    fn context_is_stamped_on_events() {
        let r = FlightRecorder::with_capacity(8);
        {
            let _rank = context::with_rank(5);
            let _epoch = context::with_epoch(2);
            r.record(FlightKind::WalAppend, 0, 0, 128, 1);
        }
        r.record(FlightKind::Reconnect, 0, 0, 0, 0);
        let ev = r.events();
        assert_eq!((ev[0].rank, ev[0].epoch), (5, 2));
        assert_eq!((ev[1].rank, ev[1].epoch), (context::UNSET, context::UNSET));
        let line = ev[0].to_json();
        assert!(line.contains("\"rank\":5"), "{line}");
        assert!(line.contains("\"epoch\":2"), "{line}");
        assert!(!ev[1].to_json().contains("\"rank\""));
    }

    #[test]
    fn ring_overwrites_oldest() {
        let r = FlightRecorder::with_capacity(8);
        for i in 0..100u64 {
            r.record(FlightKind::Submit, i, 0, 0, 0);
        }
        let ev = r.events();
        // One thread -> one shard -> at most 8 survivors, the newest.
        assert_eq!(ev.len(), 8);
        assert!(ev.iter().all(|e| e.cid >= 92));
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = FlightRecorder::with_capacity(8);
        r.set_enabled(false);
        r.record(FlightKind::Submit, 1, 0, 0, 0);
        assert!(r.events().is_empty());
        r.set_enabled(true);
        r.record(FlightKind::Submit, 2, 0, 0, 0);
        assert_eq!(r.events().len(), 1);
    }

    #[test]
    fn trip_counts_and_dump_parses() {
        let r = FlightRecorder::with_capacity(16);
        r.record(FlightKind::CrcError, 9, 2, 0, 0);
        r.trip(FlightKind::CrcError, 0);
        r.trip(FlightKind::CrcError, 0);
        assert_eq!(r.trip_count(), 2);
        let dump = r.dump_jsonl(FlightKind::CrcError);
        let mut lines = dump.lines();
        let header = crate::json::parse(lines.next().unwrap()).unwrap();
        assert_eq!(header.get("schema").unwrap().as_str(), Some(DUMP_SCHEMA));
        assert_eq!(header.get("cause").unwrap().as_str(), Some("crc_error"));
        for line in lines {
            crate::json::parse(line).unwrap();
        }
        assert!(dump.contains("\"ev\":\"crc_error\""));
        assert!(dump.contains("\"ev\":\"trip\""));
    }

    #[test]
    fn kind_codes_roundtrip() {
        for code in 1..=22u64 {
            let k = FlightKind::from_code(code).unwrap();
            assert_eq!(k.code(), code);
            assert!(!k.name().is_empty());
        }
        assert_eq!(FlightKind::from_code(0), None);
        assert_eq!(FlightKind::from_code(99), None);
    }
}
