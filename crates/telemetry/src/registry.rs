//! The metrics registry: named counters/gauges/histograms, get-or-create
//! by name, snapshot into an immutable [`MetricsSnapshot`].
//!
//! Metric names are dot-separated with the owning layer as the first
//! segment (`ssd.drain_ns`, `fabric.submit_ns`, ...). The layer prefix is
//! what `nvmecr-trace` groups on when it emits per-layer percentiles.

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use crate::recorder::FlightRecorder;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A named collection of metrics. Lookup is a read-locked BTreeMap hit;
/// instrument-once-then-record callers should resolve their `Arc` handles
/// up front and bypass the map on the hot path. Every registry also owns
/// one [`FlightRecorder`], so private test registries get private rings.
#[derive(Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    recorder: Arc<FlightRecorder>,
}

macro_rules! get_or_create {
    ($map:expr, $name:expr, $ty:ty) => {{
        if let Some(m) = $map.read().get($name) {
            return Arc::clone(m);
        }
        let mut w = $map.write();
        Arc::clone(
            w.entry($name.to_string())
                .or_insert_with(|| Arc::new(<$ty>::new())),
        )
    }};
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_create!(self.counters, name, Counter)
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_create!(self.gauges, name, Gauge)
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_create!(self.histograms, name, Histogram)
    }

    /// This registry's flight recorder.
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// Capture every metric's current value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        GaugeSnapshot {
                            value: v.get(),
                            peak: v.peak(),
                        },
                    )
                })
                .collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("counters", &self.counters.read().len())
            .field("gauges", &self.gauges.read().len())
            .field("histograms", &self.histograms.read().len())
            .finish()
    }
}

/// Point-in-time value of a gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Level at snapshot time.
    pub value: i64,
    /// High-water mark since creation.
    pub peak: i64,
}

/// An immutable capture of every metric in a registry.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels/peaks by name.
    pub gauges: BTreeMap<String, GaugeSnapshot>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter total, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge snapshot, zeroed when absent.
    pub fn gauge(&self, name: &str) -> GaugeSnapshot {
        self.gauges
            .get(name)
            .copied()
            .unwrap_or(GaugeSnapshot { value: 0, peak: 0 })
    }

    /// Histogram snapshot, `None` when absent.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Sum of all counters whose name starts with `prefix`.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Distinct layer prefixes (first dot-separated segment) present in
    /// any metric kind.
    pub fn layers(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        let mut push = |name: &str| {
            let layer = name.split('.').next().unwrap_or(name).to_string();
            if !out.contains(&layer) {
                out.push(layer);
            }
        };
        self.counters.keys().for_each(|k| push(k));
        self.gauges.keys().for_each(|k| push(k));
        self.histograms.keys().for_each(|k| push(k));
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_instance() {
        let r = Registry::new();
        let a = r.counter("x.hits");
        let b = r.counter("x.hits");
        a.add(3);
        b.add(4);
        assert_eq!(r.snapshot().counter("x.hits"), 7);
    }

    #[test]
    fn snapshot_captures_all_kinds() {
        let r = Registry::new();
        r.counter("ssd.bytes").add(100);
        r.gauge("ssd.depth").add(5);
        r.histogram("fabric.lat_ns").record(42);
        let s = r.snapshot();
        assert_eq!(s.counter("ssd.bytes"), 100);
        assert_eq!(s.gauge("ssd.depth").value, 5);
        assert_eq!(s.histogram("fabric.lat_ns").unwrap().count, 1);
        assert_eq!(s.layers(), vec!["fabric".to_string(), "ssd".to_string()]);
    }

    #[test]
    fn counter_sum_by_prefix() {
        let r = Registry::new();
        r.counter("ssd.a").add(1);
        r.counter("ssd.b").add(2);
        r.counter("fs.c").add(4);
        assert_eq!(r.snapshot().counter_sum("ssd."), 3);
    }
}
