//! Metric primitives: sharded counters, gauges with peak tracking, and
//! log2-bucketed latency histograms.
//!
//! All three are designed for the hot path of a rayon-driven rank fan-out:
//! writers touch a per-thread shard (cache-line padded) with relaxed
//! atomics, so concurrent ranks never contend on a shared line. Readers
//! (`get` / `snapshot`) sum across shards; they are approximate only in
//! the sense that a concurrent writer may or may not be included, which
//! is the standard contract for monitoring counters.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Number of independent shards per metric. Threads hash onto shards via a
/// process-wide round-robin slot, so up to this many writers proceed with
/// zero line sharing.
pub const SHARDS: usize = 16;

/// Process-wide thread slot allocator: each thread gets a stable small id
/// on first use, round-robin over [`SHARDS`].
static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SLOT: usize = NEXT_SLOT.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

#[inline]
pub(crate) fn slot() -> usize {
    THREAD_SLOT.with(|s| *s)
}

/// One cache line of counter state, padded so adjacent shards never share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// A monotonically increasing counter, sharded across threads.
#[derive(Default)]
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    /// Create a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to the counter (relaxed, per-thread shard).
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[slot()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total across all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

/// A signed gauge tracking a current level plus the peak level observed.
///
/// `add`/`sub` move the level; `peak` remembers the high-water mark, which
/// is what queue-depth and RAM-occupancy instrumentation cares about.
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
    peak: AtomicI64,
}

impl Gauge {
    /// Create a zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Move the level by `delta` (may be negative) and fold into the peak.
    #[inline]
    pub fn add(&self, delta: i64) {
        let now = self.value.fetch_add(delta, Ordering::Relaxed) + delta;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Set the level to `v` outright.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
        self.peak.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// High-water mark since creation.
    pub fn peak(&self) -> i64 {
        self.peak.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gauge")
            .field("value", &self.get())
            .field("peak", &self.peak())
            .finish()
    }
}

/// Sub-bucket resolution bits: each power-of-two octave is split into
/// `2^SUB_BITS` linear sub-buckets, bounding relative quantile error at
/// `2^-SUB_BITS` (12.5%).
pub const SUB_BITS: u32 = 3;
const SUB: usize = 1 << SUB_BITS; // 8 sub-buckets per octave
/// Total bucket count: values 0..SUB map 1:1, then (64 - SUB_BITS) octaves
/// of SUB sub-buckets each cover the rest of the u64 range.
pub const BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// Map a value to its bucket index.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let top = 63 - v.leading_zeros(); // position of the highest set bit
        let shift = top - SUB_BITS;
        let sub = ((v >> shift) as usize) - SUB;
        SUB + (shift as usize) * SUB + sub
    }
}

/// Inclusive `(lo, hi)` value bounds of bucket `idx`.
#[inline]
fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < SUB {
        (idx as u64, idx as u64)
    } else {
        let shift = ((idx - SUB) / SUB) as u32;
        let sub = ((idx - SUB) % SUB) as u64;
        let lo = (SUB as u64 + sub) << shift;
        // Compute the width first: for the topmost bucket `lo + 2^shift`
        // alone would overflow even though `hi` is exactly u64::MAX.
        let hi = lo + ((1u64 << shift) - 1);
        (lo, hi)
    }
}

/// One shard of histogram state. Buckets are plain (unpadded) atomics —
/// the shard itself is what isolates writer threads.
struct HistShard {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: Vec<AtomicU64>,
}

impl HistShard {
    fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// A log2-bucketed histogram of u64 samples (typically nanoseconds).
///
/// Recording is lock-free and sharded; querying percentiles goes through
/// [`Histogram::snapshot`], which merges shards into an immutable
/// [`HistogramSnapshot`].
pub struct Histogram {
    shards: Vec<HistShard>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| HistShard::new()).collect(),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let sh = &self.shards[slot()];
        sh.count.fetch_add(1, Ordering::Relaxed);
        sh.sum.fetch_add(v, Ordering::Relaxed);
        sh.min.fetch_min(v, Ordering::Relaxed);
        sh.max.fetch_max(v, Ordering::Relaxed);
        sh.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Start a timer whose elapsed nanoseconds are recorded on drop.
    #[inline]
    pub fn time(&self) -> HistTimer<'_> {
        HistTimer {
            hist: self,
            start: Instant::now(),
        }
    }

    /// Merge all shards into an immutable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::empty();
        for sh in &self.shards {
            let count = sh.count.load(Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            out.count += count;
            // Sums wrap like the atomics they mirror; ns-scale workloads
            // never get near the edge, but extreme samples must not panic.
            out.sum = out.sum.wrapping_add(sh.sum.load(Ordering::Relaxed));
            out.min = out.min.min(sh.min.load(Ordering::Relaxed));
            out.max = out.max.max(sh.max.load(Ordering::Relaxed));
            for (i, b) in sh.buckets.iter().enumerate() {
                out.buckets[i] += b.load(Ordering::Relaxed);
            }
        }
        out
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("p50", &s.percentile(50.0))
            .field("p99", &s.percentile(99.0))
            .finish()
    }
}

/// RAII timer: records elapsed ns into its histogram on drop.
pub struct HistTimer<'a> {
    hist: &'a Histogram,
    start: Instant,
}

impl Drop for HistTimer<'_> {
    fn drop(&mut self) {
        self.hist.record(self.start.elapsed().as_nanos() as u64);
    }
}

/// An immutable, mergeable view of a histogram's samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (u64::MAX when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Per-bucket sample counts (see [`HistogramSnapshot::bucket_bounds`]).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; BUCKETS],
        }
    }

    /// Inclusive value bounds of bucket `idx`.
    pub fn bucket_bounds(idx: usize) -> (u64, u64) {
        bucket_bounds(idx)
    }

    /// Bucket index a value would land in.
    pub fn bucket_index(v: u64) -> usize {
        bucket_index(v)
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The `p`-th percentile (0 < p <= 100), reported as the upper bound of
    /// the bucket containing that rank — so the true value is never above
    /// the report by more than the bucket's width (<= 12.5% relative).
    /// Returns 0 for an empty snapshot.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Rank of the sample we want, 1-based, clamped into range.
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let rank = rank.min(self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (_, hi) = bucket_bounds(i);
                return hi.min(self.max);
            }
        }
        self.max
    }

    /// Fold another snapshot's samples into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_shards() {
        let c = Counter::new();
        c.add(5);
        c.inc();
        assert_eq!(c.get(), 6);
    }

    #[test]
    fn gauge_tracks_peak() {
        let g = Gauge::new();
        g.add(10);
        g.add(25);
        g.add(-30);
        assert_eq!(g.get(), 5);
        assert_eq!(g.peak(), 35);
    }

    #[test]
    fn bucket_index_and_bounds_agree() {
        for v in [0u64, 1, 7, 8, 9, 100, 1024, 4095, 1 << 40, u64::MAX] {
            let idx = bucket_index(v);
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v && v <= hi, "v={v} idx={idx} lo={lo} hi={hi}");
        }
    }

    #[test]
    fn bucket_bounds_tile_the_range() {
        // Consecutive buckets must be adjacent: hi(i) + 1 == lo(i+1).
        for i in 0..BUCKETS - 1 {
            let (_, hi) = bucket_bounds(i);
            let (lo, _) = bucket_bounds(i + 1);
            assert_eq!(hi + 1, lo, "gap between bucket {i} and {}", i + 1);
        }
        assert_eq!(bucket_bounds(BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn percentiles_bound_relative_error() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10_000);
        let p50 = s.percentile(50.0);
        assert!((4500..=5700).contains(&p50), "p50={p50}");
        let p99 = s.percentile(99.0);
        assert!((9_900..=11_200).contains(&p99), "p99={p99}");
        assert_eq!(s.percentile(100.0), 10_000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 10_000);
    }

    #[test]
    fn timer_records_something() {
        let h = Histogram::new();
        {
            let _t = h.time();
            std::hint::black_box(0u64);
        }
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn merge_preserves_count_and_sum() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..100u64 {
            a.record(v);
            b.record(v * 1000);
        }
        let mut sa = a.snapshot();
        let sb = b.snapshot();
        let (ca, cb) = (sa.count, sb.count);
        let (su_a, su_b) = (sa.sum, sb.sum);
        sa.merge(&sb);
        assert_eq!(sa.count, ca + cb);
        assert_eq!(sa.sum, su_a + su_b);
        assert_eq!(sa.max, 99_000);
        assert_eq!(sa.min, 0);
    }
}
