//! Span tracing: scoped spans with parent/child nesting and typed
//! arguments, recorded into per-thread buffers and exportable as Chrome
//! `trace_event` JSON (loadable in `chrome://tracing` / Perfetto) and
//! JSONL.
//!
//! Tracing is globally gated by an atomic flag and OFF by default: a span
//! constructed while disabled costs one relaxed load and takes no
//! timestamp. The only way to turn tracing on is [`capture`], which holds
//! a process-wide session lock for its duration — so concurrent tests (or
//! concurrent captures) serialize instead of corrupting each other's
//! buffers. Spans themselves are recorded lock-free with respect to each
//! other: every thread appends to its own buffer.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static SESSION: Mutex<()> = Mutex::new(());
static EPOCH: Mutex<Option<Instant>> = Mutex::new(None);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicUsize = AtomicUsize::new(1);

/// Every thread's event buffer, so `capture` can clear and drain them all.
static BUFFERS: Mutex<Vec<Arc<Mutex<Vec<TraceEvent>>>>> = Mutex::new(Vec::new());

thread_local! {
    /// This thread's event buffer, registered globally on first use.
    static LOCAL_BUF: Arc<Mutex<Vec<TraceEvent>>> = {
        let buf = Arc::new(Mutex::new(Vec::new()));
        BUFFERS.lock().push(Arc::clone(&buf));
        buf
    };
    /// Stable small id for this thread in trace output.
    static LOCAL_TID: usize = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    /// Stack of open span ids on this thread (for parent linking).
    static SPAN_STACK: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Is a capture session currently running?
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Kind of recorded event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A scoped span with a duration (Chrome phase `X`).
    Span,
    /// A point-in-time marker (Chrome phase `i`).
    Instant,
}

/// One recorded trace event.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Event name (code-site static).
    pub name: &'static str,
    /// Category — by convention the owning layer (`ssd`, `fabric`, ...).
    pub cat: &'static str,
    /// Span or instant.
    pub kind: EventKind,
    /// Recording thread's stable trace id.
    pub tid: usize,
    /// Start time in ns since the capture epoch.
    pub ts_ns: u64,
    /// Duration in ns (0 for instants).
    pub dur_ns: u64,
    /// Unique span id.
    pub id: u64,
    /// Enclosing span's id on the same thread, if any.
    pub parent: Option<u64>,
    /// Typed arguments attached via [`Span::arg`].
    pub args: Vec<(&'static str, u64)>,
}

fn now_ns() -> u64 {
    let epoch = EPOCH.lock();
    match *epoch {
        Some(e) => e.elapsed().as_nanos() as u64,
        None => 0,
    }
}

/// An open span; records a [`TraceEvent`] when dropped. Construct via
/// [`span`]. When tracing is disabled the guard is inert.
pub struct Span {
    name: &'static str,
    cat: &'static str,
    id: u64,
    parent: Option<u64>,
    start_ns: u64,
    args: Vec<(&'static str, u64)>,
    active: bool,
}

impl Span {
    /// Attach a typed argument (recorded into the event on drop).
    pub fn arg(mut self, key: &'static str, value: u64) -> Self {
        if self.active {
            self.args.push((key, value));
        }
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            if s.last() == Some(&self.id) {
                s.pop();
            }
        });
        // The session may have ended while this span was open; still pop
        // the stack (above) but only record when enabled.
        if !enabled() {
            return;
        }
        let end_ns = now_ns();
        let ev = TraceEvent {
            name: self.name,
            cat: self.cat,
            kind: EventKind::Span,
            tid: LOCAL_TID.with(|t| *t),
            ts_ns: self.start_ns,
            dur_ns: end_ns.saturating_sub(self.start_ns),
            id: self.id,
            parent: self.parent,
            args: std::mem::take(&mut self.args),
        };
        LOCAL_BUF.with(|b| b.lock().push(ev));
    }
}

/// Open a span. Near-free when no capture session is active.
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> Span {
    if !enabled() {
        return Span {
            name,
            cat,
            id: 0,
            parent: None,
            start_ns: 0,
            args: Vec::new(),
            active: false,
        };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied();
        s.push(id);
        parent
    });
    Span {
        name,
        cat,
        id,
        parent,
        start_ns: now_ns(),
        args: Vec::new(),
        active: true,
    }
}

/// Record a point-in-time marker with optional arguments.
pub fn instant(cat: &'static str, name: &'static str, args: &[(&'static str, u64)]) {
    if !enabled() {
        return;
    }
    let ev = TraceEvent {
        name,
        cat,
        kind: EventKind::Instant,
        tid: LOCAL_TID.with(|t| *t),
        ts_ns: now_ns(),
        dur_ns: 0,
        id: NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed),
        parent: SPAN_STACK.with(|s| s.borrow().last().copied()),
        args: args.to_vec(),
    };
    LOCAL_BUF.with(|b| b.lock().push(ev));
}

/// Run `f` with tracing enabled and return its result plus the captured
/// trace. Captures serialize process-wide: a second concurrent `capture`
/// blocks until the first finishes.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Trace) {
    let _session = SESSION.lock();
    // Reset buffers from any prior session, then open the epoch.
    for buf in BUFFERS.lock().iter() {
        buf.lock().clear();
    }
    *EPOCH.lock() = Some(Instant::now());
    ENABLED.store(true, Ordering::SeqCst);
    let out = f();
    ENABLED.store(false, Ordering::SeqCst);
    let mut events = Vec::new();
    for buf in BUFFERS.lock().iter() {
        events.extend(buf.lock().drain(..));
    }
    events.sort_by_key(|e| (e.ts_ns, e.id));
    (out, Trace { events })
}

/// A completed capture session's events, sorted by start time.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Trace {
    /// The recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    fn event_json(e: &TraceEvent) -> String {
        let mut args = format!("\"span_id\":{}", e.id);
        if let Some(p) = e.parent {
            args.push_str(&format!(",\"parent_id\":{p}"));
        }
        for (k, v) in &e.args {
            args.push_str(&format!(",\"{}\":{v}", escape(k)));
        }
        match e.kind {
            EventKind::Span => format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
                 \"ts\":{:.3},\"dur\":{:.3},\"args\":{{{args}}}}}",
                escape(e.name),
                escape(e.cat),
                e.tid,
                e.ts_ns as f64 / 1000.0,
                e.dur_ns as f64 / 1000.0,
            ),
            EventKind::Instant => format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\
                 \"tid\":{},\"ts\":{:.3},\"args\":{{{args}}}}}",
                escape(e.name),
                escape(e.cat),
                e.tid,
                e.ts_ns as f64 / 1000.0,
            ),
        }
    }

    /// Export as Chrome `trace_event` JSON (object format, `traceEvents`
    /// array) — loadable in `chrome://tracing` and Perfetto.
    pub fn to_chrome_json(&self) -> String {
        let events: Vec<String> = self.events.iter().map(Self::event_json).collect();
        format!(
            "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ns\"}}",
            events.join(",")
        )
    }

    /// Export as JSONL: one Chrome-format event object per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&Self::event_json(e));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_records_nothing() {
        let s = span("test", "outside_capture");
        drop(s);
        let ((), trace) = capture(|| {});
        assert!(trace.events().is_empty());
    }

    #[test]
    fn nesting_links_parents() {
        let ((), trace) = capture(|| {
            let _a = span("test", "outer");
            {
                let _b = span("test", "inner").arg("bytes", 42);
            }
        });
        let events = trace.events();
        assert_eq!(events.len(), 2);
        let inner = events.iter().find(|e| e.name == "inner").unwrap();
        let outer = events.iter().find(|e| e.name == "outer").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert_eq!(inner.args, vec![("bytes", 42)]);
        // inner nests temporally inside outer
        assert!(inner.ts_ns >= outer.ts_ns);
        assert!(inner.ts_ns + inner.dur_ns <= outer.ts_ns + outer.dur_ns);
    }

    #[test]
    fn instants_attach_to_open_span() {
        let ((), trace) = capture(|| {
            let _a = span("test", "phase");
            instant("test", "marker", &[("k", 7)]);
        });
        let marker = trace.events().iter().find(|e| e.name == "marker").unwrap();
        assert_eq!(marker.kind, EventKind::Instant);
        assert!(marker.parent.is_some());
    }

    #[test]
    fn chrome_json_has_expected_shape() {
        let ((), trace) = capture(|| {
            let _a = span("ssd", "drain").arg("bytes", 4096);
        });
        let json = trace.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"cat\":\"ssd\""));
        let jsonl = trace.to_jsonl();
        assert_eq!(jsonl.lines().count(), 1);
    }
}
