//! A minimal JSON parser, used to validate the JSON this crate and the
//! bench binaries emit (the workspace builds offline, so there is no
//! serde). Supports the full value grammar; numbers parse as f64.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field access (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serialize back to a JSON document that [`parse`] round-trips.
    /// Non-finite numbers (which JSON cannot express) render as `null`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_json_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_json(out);
                }
                out.push(']');
            }
            Value::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, String> {
        let b = self.peek().ok_or("unexpected end of input")?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        let got = self.bump()?;
        if got != b {
            return Err(format!(
                "expected '{}' at byte {}, got '{}'",
                b as char,
                self.pos - 1,
                got as char
            ));
        }
        Ok(())
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek().ok_or("unexpected end of input")? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::Str(self.string()?)),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Value::Obj(map)),
                c => return Err(format!("expected ',' or '}}', got '{}'", c as char)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Value::Arr(items)),
                c => return Err(format!("expected ',' or ']', got '{}'", c as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump()?;
                            code =
                                code * 16 + (d as char).to_digit(16).ok_or("invalid \\u escape")?;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    c => return Err(format!("invalid escape '\\{}'", c as char)),
                },
                c if c < 0x20 => return Err("unescaped control character".into()),
                c => {
                    // Re-assemble UTF-8 multibyte sequences byte-for-byte.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let len = if c >= 0xf0 {
                            4
                        } else if c >= 0xe0 {
                            3
                        } else {
                            2
                        };
                        let end = start + len;
                        let s = self
                            .bytes
                            .get(start..end)
                            .and_then(|b| std::str::from_utf8(b).ok())
                            .ok_or("invalid UTF-8 in string")?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid UTF-8 in number at byte {start}"))?;
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number '{s}'"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(
            r#"{"layers":{"ssd":{"drain_ns":{"p50":120.5,"p99":900}},"ok":true},
               "events":[1,2,3],"name":"a\"b","none":null}"#,
        )
        .unwrap();
        assert_eq!(v.get("layers").unwrap().get("ok"), Some(&Value::Bool(true)));
        assert_eq!(
            v.get("layers")
                .unwrap()
                .get("ssd")
                .unwrap()
                .get("drain_ns")
                .unwrap()
                .get("p50")
                .unwrap()
                .as_num(),
            Some(120.5)
        );
        assert_eq!(v.get("events").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("name").unwrap().as_str(), Some("a\"b"));
        assert_eq!(v.get("none"), Some(&Value::Null));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2,").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn serializer_round_trips() {
        let doc = r#"{"a":[1,2.5,-3],"b":{"nested":"x\"y\n"},"c":null,"d":true}"#;
        let v = parse(doc).unwrap();
        let out = v.to_json();
        assert_eq!(parse(&out).unwrap(), v);
    }

    #[test]
    fn serializer_renders_non_finite_as_null() {
        assert_eq!(Value::Num(f64::NAN).to_json(), "null");
        assert_eq!(Value::Num(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn parses_negative_and_exponent_numbers() {
        let v = parse("[-1.5, 2e3, 0.001]").unwrap();
        let a = v.as_arr().unwrap();
        assert_eq!(a[0].as_num(), Some(-1.5));
        assert_eq!(a[1].as_num(), Some(2000.0));
        assert_eq!(a[2].as_num(), Some(0.001));
    }
}
